#include "util/check.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sgp::util {
namespace {

TEST(CheckTest, RequirePassesWhenTrue) {
  EXPECT_NO_THROW(require(true, "never thrown"));
}

TEST(CheckTest, RequireThrowsInvalidArgument) {
  EXPECT_THROW(require(false, "bad arg"), std::invalid_argument);
}

TEST(CheckTest, RequireMessagePropagates) {
  try {
    require(false, "epsilon must be positive");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "epsilon must be positive");
  }
}

TEST(CheckTest, EnsurePassesWhenTrue) {
  EXPECT_NO_THROW(ensure(true, "never thrown"));
}

TEST(CheckTest, EnsureThrowsRuntimeError) {
  EXPECT_THROW(ensure(false, "invariant broken"), std::runtime_error);
}

TEST(CheckTest, EnsureMessagePropagates) {
  try {
    ensure(false, "lanczos failed to converge");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "lanczos failed to converge");
  }
}

}  // namespace
}  // namespace sgp::util
