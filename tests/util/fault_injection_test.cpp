// Deterministic fault injection: arming semantics, spec grammar, error-type
// mapping, and exact replayability of seeded failure sequences.
#include "util/fault_injection.hpp"

#include <gtest/gtest.h>

#include <new>
#include <vector>

#include "util/errors.hpp"

namespace sgp::util {
namespace {

class FaultInjectionTest : public testing::Test {
 protected:
  void SetUp() override { disarm_all_faults(); }
  void TearDown() override { disarm_all_faults(); }
};

TEST_F(FaultInjectionTest, UnarmedPointIsNoop) {
  for (int i = 0; i < 100; ++i) fault_point("io.read");
  EXPECT_EQ(fault_fires("io.read"), 0u);
}

TEST_F(FaultInjectionTest, ArmedPointFiresAndCounts) {
  arm_fault("io.read");
  EXPECT_THROW(fault_point("io.read"), IoError);
  EXPECT_EQ(fault_hits("io.read"), 1u);
  EXPECT_EQ(fault_fires("io.read"), 1u);
  // Other points stay clean.
  fault_point("io.write");
  EXPECT_EQ(fault_fires("io.write"), 0u);
}

TEST_F(FaultInjectionTest, AfterSkipsInitialHits) {
  FaultConfig cfg;
  cfg.after = 2;
  arm_fault("ledger.append", cfg);
  fault_point("ledger.append");
  fault_point("ledger.append");
  EXPECT_THROW(fault_point("ledger.append"), IoError);
}

TEST_F(FaultInjectionTest, CountLimitsTotalFires) {
  FaultConfig cfg;
  cfg.max_fires = 1;
  arm_fault("io.write", cfg);
  EXPECT_THROW(fault_point("io.write"), IoError);
  for (int i = 0; i < 10; ++i) fault_point("io.write");  // spent: no throw
  EXPECT_EQ(fault_fires("io.write"), 1u);
}

TEST_F(FaultInjectionTest, DisarmStopsFiring) {
  arm_fault("io.read");
  EXPECT_THROW(fault_point("io.read"), IoError);
  disarm_fault("io.read");
  fault_point("io.read");  // no throw
  EXPECT_EQ(fault_fires("io.read"), 1u);
}

TEST_F(FaultInjectionTest, ErrorTypeMapping) {
  arm_fault("solver.iteration");
  EXPECT_THROW(fault_point("solver.iteration"), ConvergenceError);
  arm_fault("alloc");
  EXPECT_THROW(fault_point("alloc"), std::bad_alloc);
  arm_fault("ledger.append");
  EXPECT_THROW(fault_point("ledger.append"), IoError);
  arm_fault("io.write");
  EXPECT_THROW(fault_point("io.write"), IoError);
}

TEST_F(FaultInjectionTest, ProbabilisticFiringReplaysExactly) {
  FaultConfig cfg;
  cfg.probability = 0.3;
  cfg.seed = 12345;

  auto run = [&] {
    arm_fault("io.read", cfg);  // re-arming resets the hit counter
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      try {
        fault_point("io.read");
        fired.push_back(false);
      } catch (const IoError&) {
        fired.push_back(true);
      }
    }
    return fired;
  };

  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second) << "same seed must replay the same failures";
  std::size_t fires = 0;
  for (const bool f : first) fires += f ? 1 : 0;
  EXPECT_GT(fires, 5u);   // ~19 expected at p=0.3
  EXPECT_LT(fires, 40u);

  cfg.seed = 999;
  arm_fault("io.read", cfg);
  const auto other_seed = run();
  // A different seed draws a different pattern (same re-arm inside run()).
  (void)other_seed;
}

TEST_F(FaultInjectionTest, SpecGrammarArmsPoints) {
  EXPECT_EQ(arm_faults_from_spec("io.read:after=1,solver.iteration"), 2u);
  fault_point("io.read");  // skipped by after=1
  EXPECT_THROW(fault_point("io.read"), IoError);
  EXPECT_THROW(fault_point("solver.iteration"), ConvergenceError);
}

TEST_F(FaultInjectionTest, SpecGrammarFullEntry) {
  EXPECT_EQ(
      arm_faults_from_spec("ledger.append:after=0:prob=1.0:seed=7:count=2"),
      1u);
  EXPECT_THROW(fault_point("ledger.append"), IoError);
  EXPECT_THROW(fault_point("ledger.append"), IoError);
  fault_point("ledger.append");  // count exhausted
  EXPECT_EQ(fault_fires("ledger.append"), 2u);
}

TEST_F(FaultInjectionTest, MalformedSpecRejected) {
  EXPECT_THROW(arm_faults_from_spec(":after=1"), ParseError);
  EXPECT_THROW(arm_faults_from_spec("io.read:after"), ParseError);
  EXPECT_THROW(arm_faults_from_spec("io.read:after=xyz"), ParseError);
  EXPECT_THROW(arm_faults_from_spec("io.read:bogus=1"), ParseError);
  EXPECT_THROW(arm_faults_from_spec("io.read:prob=1.5"), ParseError);
  EXPECT_THROW(arm_faults_from_spec("io.read:after=1junk"), ParseError);
}

TEST_F(FaultInjectionTest, EmptySpecArmsNothing) {
  EXPECT_EQ(arm_faults_from_spec(""), 0u);
  EXPECT_EQ(arm_faults_from_spec(",,"), 0u);
}

}  // namespace
}  // namespace sgp::util
