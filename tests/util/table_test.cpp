#include "util/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sgp::util {
namespace {

TEST(TableTest, EmptyHeadersRejected) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TableTest, RendersHeaderAndRule) {
  TextTable t({"a", "bb"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("a  bb"), std::string::npos);
  EXPECT_NE(s.find("-  --"), std::string::npos);
}

TEST(TableTest, AddBeforeNewRowThrows) {
  TextTable t({"a"});
  EXPECT_THROW(t.add("x"), std::runtime_error);
}

TEST(TableTest, TooManyCellsThrows) {
  TextTable t({"a"});
  t.new_row().add("x");
  EXPECT_THROW(t.add("y"), std::runtime_error);
}

TEST(TableTest, NumericFormatting) {
  TextTable t({"eps", "nmi", "n"});
  t.new_row().add(0.5, 2).add(0.98765, 3).add(std::int64_t{42});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("0.50"), std::string::npos);
  EXPECT_NE(s.find("0.988"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(TableTest, ColumnsAlignToWidestCell) {
  TextTable t({"x", "y"});
  t.new_row().add("longcell").add("1");
  t.new_row().add("s").add("2");
  const std::string s = t.to_string();
  // Every line should place column y at the same offset.
  const auto first_nl = s.find('\n');
  const std::string header = s.substr(0, first_nl);
  EXPECT_EQ(header.find('y'), std::string("longcell  ").size());
}

TEST(TableTest, CsvOutput) {
  TextTable t({"a", "b"});
  t.new_row().add("1").add("2");
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TableTest, NumRows) {
  TextTable t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.new_row().add("1");
  t.new_row().add("2");
  EXPECT_EQ(t.num_rows(), 2u);
}

}  // namespace
}  // namespace sgp::util
