#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace sgp::util {
namespace {

CliArgs make(std::vector<const char*> argv) {
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliTest, ProgramNameCaptured) {
  const auto args = make({"prog"});
  EXPECT_EQ(args.program(), "prog");
}

TEST(CliTest, EqualsSyntax) {
  const auto args = make({"prog", "--epsilon=0.5"});
  EXPECT_DOUBLE_EQ(args.get_double("epsilon", 1.0), 0.5);
}

TEST(CliTest, SpaceSyntax) {
  const auto args = make({"prog", "--dim", "128"});
  EXPECT_EQ(args.get_int("dim", 0), 128);
}

TEST(CliTest, BareFlagIsTrue) {
  const auto args = make({"prog", "--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(CliTest, MissingFlagUsesDefault) {
  const auto args = make({"prog"});
  EXPECT_EQ(args.get_int("dim", 42), 42);
  EXPECT_EQ(args.get_string("name", "fallback"), "fallback");
  EXPECT_FALSE(args.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(args.get_double("epsilon", 2.5), 2.5);
}

TEST(CliTest, PositionalCollectedInOrder) {
  const auto args = make({"prog", "input.txt", "--k=3", "output.txt"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "output.txt");
}

TEST(CliTest, HasReportsPresence) {
  const auto args = make({"prog", "--seed=7"});
  EXPECT_TRUE(args.has("seed"));
  EXPECT_FALSE(args.has("epsilon"));
}

TEST(CliTest, MalformedIntThrows) {
  const auto args = make({"prog", "--dim=abc"});
  EXPECT_THROW((void)args.get_int("dim", 0), std::invalid_argument);
}

TEST(CliTest, MalformedDoubleThrows) {
  const auto args = make({"prog", "--epsilon=xyz"});
  EXPECT_THROW((void)args.get_double("epsilon", 0.0), std::invalid_argument);
}

TEST(CliTest, MalformedBoolThrows) {
  const auto args = make({"prog", "--verbose=maybe"});
  EXPECT_THROW((void)args.get_bool("verbose", false), std::invalid_argument);
}

TEST(CliTest, BoolSpellings) {
  for (const char* yes : {"1", "true", "yes", "on"}) {
    const auto args = make({"prog", "--f", yes});
    EXPECT_TRUE(args.get_bool("f", false)) << yes;
  }
  for (const char* no : {"0", "false", "no", "off"}) {
    const auto args = make({"prog", "--f", no});
    EXPECT_FALSE(args.get_bool("f", true)) << no;
  }
}

TEST(CliTest, LaterValueWins) {
  const auto args = make({"prog", "--k=1", "--k=2"});
  EXPECT_EQ(args.get_int("k", 0), 2);
}

}  // namespace
}  // namespace sgp::util
