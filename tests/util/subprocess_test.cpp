// util/subprocess.hpp: the fork/exec/reap lifecycle the lease coordinator
// depends on — clean and unclean exits decode correctly, environment
// overrides reach the child, kill_hard registers as a signal, and the
// proc.spawn fault point makes process creation fail deterministically.
#include <gtest/gtest.h>

#include <string>

#include "util/errors.hpp"
#include "util/fault_injection.hpp"
#include "util/subprocess.hpp"

namespace sgp::util {
namespace {

class SubprocessTest : public testing::Test {
 protected:
  void SetUp() override { disarm_all_faults(); }
  void TearDown() override { disarm_all_faults(); }

  static Subprocess::Options shell(const std::string& script) {
    Subprocess::Options opt;
    opt.argv = {"/bin/sh", "-c", script};
    return opt;
  }
};

TEST_F(SubprocessTest, CleanExitDecodes) {
  Subprocess child = Subprocess::spawn(shell("exit 0"));
  const auto status = child.wait();
  EXPECT_FALSE(status.signaled);
  EXPECT_EQ(status.code, 0);
  EXPECT_TRUE(status.clean());
  EXPECT_FALSE(child.running());
}

TEST_F(SubprocessTest, NonZeroExitCodeDecodes) {
  Subprocess child = Subprocess::spawn(shell("exit 7"));
  const auto status = child.wait();
  EXPECT_FALSE(status.signaled);
  EXPECT_EQ(status.code, 7);
  EXPECT_FALSE(status.clean());
}

TEST_F(SubprocessTest, EnvOverrideReachesChild) {
  auto opt = shell("[ \"$SGP_TEST_VAR\" = hello ]");
  opt.env = {{"SGP_TEST_VAR", "hello"}};
  EXPECT_TRUE(Subprocess::spawn(opt).wait().clean());

  // Without the override the variable is absent and the test fails.
  EXPECT_FALSE(
      Subprocess::spawn(shell("[ \"$SGP_TEST_VAR\" = hello ]")).wait().clean());
}

TEST_F(SubprocessTest, EmptyOverrideStillSetsTheVariable) {
  // The disarm idiom: SGP_FAULT_SPEC="" must reach the child as set-but-
  // empty, overriding anything inherited.
  auto opt = shell("[ \"${SGP_TEST_VAR+set}\" = set ]");
  opt.env = {{"SGP_TEST_VAR", ""}};
  EXPECT_TRUE(Subprocess::spawn(opt).wait().clean());
}

TEST_F(SubprocessTest, TryWaitIsNonBlockingThenCaches) {
  Subprocess child = Subprocess::spawn(shell("sleep 30"));
  EXPECT_TRUE(child.running());
  EXPECT_FALSE(child.try_wait().has_value());
  child.kill_hard();
  const auto status = child.wait();
  EXPECT_TRUE(status.signaled);
  EXPECT_EQ(status.code, 9);  // SIGKILL
  // Status is cached; repeated polls agree.
  const auto again = child.try_wait();
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->signaled);
  EXPECT_EQ(again->code, 9);
}

TEST_F(SubprocessTest, ExecFailureSurfacesAsExit127) {
  Subprocess::Options opt;
  opt.argv = {"/no/such/binary/sgp_worker"};
  Subprocess child = Subprocess::spawn(opt);  // fork succeeds
  const auto status = child.wait();
  EXPECT_FALSE(status.signaled);
  EXPECT_EQ(status.code, 127);
}

TEST_F(SubprocessTest, EmptyArgvIsRejected) {
  EXPECT_THROW(Subprocess::spawn(Subprocess::Options{}), PreconditionError);
}

TEST_F(SubprocessTest, SpawnFaultPointFiresAsIoError) {
  arm_fault("proc.spawn");
  EXPECT_THROW(Subprocess::spawn(shell("exit 0")), IoError);
  disarm_all_faults();
  EXPECT_TRUE(Subprocess::spawn(shell("exit 0")).wait().clean());
}

TEST_F(SubprocessTest, MoveTransfersOwnership) {
  Subprocess a = Subprocess::spawn(shell("exit 3"));
  const std::int64_t pid = a.pid();
  Subprocess b = std::move(a);
  EXPECT_EQ(b.pid(), pid);
  EXPECT_EQ(b.wait().code, 3);
}

}  // namespace
}  // namespace sgp::util
