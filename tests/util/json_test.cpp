// Tests for the minimal JSON writer/parser behind the obs exporters.
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "util/errors.hpp"

namespace {

TEST(JsonNumberTest, IntegralDoublesHaveNoFraction) {
  EXPECT_EQ(sgp::util::json_number(3.0), "3");
  EXPECT_EQ(sgp::util::json_number(-17.0), "-17");
  EXPECT_EQ(sgp::util::json_number(0.0), "0");
  EXPECT_EQ(sgp::util::json_number(std::uint64_t{42}), "42");
}

TEST(JsonNumberTest, NonFiniteBecomesNull) {
  EXPECT_EQ(sgp::util::json_number(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(sgp::util::json_number(std::nan("")), "null");
}

TEST(JsonNumberTest, FractionsRoundTripThroughParse) {
  const double v = 0.524288;
  const auto doc = sgp::util::parse_json(sgp::util::json_number(v));
  EXPECT_DOUBLE_EQ(doc.as_number(), v);
}

TEST(JsonStringTest, EscapesSpecials) {
  std::string out;
  sgp::util::append_json_string(out, "a\"b\\c\n\t");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\n\\t\"");
  const auto doc = sgp::util::parse_json(out);
  EXPECT_EQ(doc.as_string(), "a\"b\\c\n\t");
}

TEST(JsonParseTest, ParsesNestedDocument) {
  const auto doc = sgp::util::parse_json(
      R"({"a": 1, "b": [true, null, "x"], "c": {"d": -2.5}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.find("a")->as_number(), 1.0);
  const auto& arr = doc.find("b")->as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr[0].as_bool());
  EXPECT_TRUE(arr[1].is_null());
  EXPECT_EQ(arr[2].as_string(), "x");
  EXPECT_DOUBLE_EQ(doc.find("c")->find("d")->as_number(), -2.5);
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_THROW(sgp::util::parse_json(""), sgp::util::ParseError);
  EXPECT_THROW(sgp::util::parse_json("{"), sgp::util::ParseError);
  EXPECT_THROW(sgp::util::parse_json("[1,]"), sgp::util::ParseError);
  EXPECT_THROW(sgp::util::parse_json("{\"a\": 1} trailing"),
               sgp::util::ParseError);
  EXPECT_THROW(sgp::util::parse_json("nul"), sgp::util::ParseError);
}

TEST(JsonParseTest, RejectsDuplicateKeys) {
  EXPECT_THROW(sgp::util::parse_json(R"({"a": 1, "a": 2})"),
               sgp::util::ParseError);
}

TEST(JsonParseTest, WrongAccessorThrowsInternalError) {
  const auto doc = sgp::util::parse_json("[1]");
  EXPECT_THROW(static_cast<void>(doc.as_object()), sgp::util::InternalError);
  EXPECT_THROW(static_cast<void>(doc.as_number()), sgp::util::InternalError);
}

}  // namespace
