#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sgp::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] { counter.fetch_add(1); }).get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, RunsManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SizeIsAtLeastOne) {
  ThreadPool pool(0);  // 0 -> hardware concurrency, clamped to >= 1
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversWholeRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(10000);
  parallel_for(
      0, hits.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      64);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SmallRangeRunsInline) {
  std::vector<int> hits(10, 0);
  parallel_for(
      0, hits.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) hits[i] += 1;
      },
      1024);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ParallelForTest, ExceptionRethrownOnCaller) {
  EXPECT_THROW(parallel_for(
                   0, 100000,
                   [](std::size_t lo, std::size_t) {
                     if (lo == 0) throw std::runtime_error("chunk failed");
                   },
                   16),
               std::runtime_error);
}

}  // namespace
}  // namespace sgp::util
