#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sgp::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] { counter.fetch_add(1); }).get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, RunsManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SizeIsAtLeastOne) {
  ThreadPool pool(0);  // 0 -> hardware concurrency, clamped to >= 1
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversWholeRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(10000);
  parallel_for(
      0, hits.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      64);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SmallRangeRunsInline) {
  std::vector<int> hits(10, 0);
  parallel_for(
      0, hits.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) hits[i] += 1;
      },
      1024);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ParallelForTest, ExceptionRethrownOnCaller) {
  EXPECT_THROW(parallel_for(
                   0, 100000,
                   [](std::size_t lo, std::size_t) {
                     if (lo == 0) throw std::runtime_error("chunk failed");
                   },
                   16),
               std::runtime_error);
}

TEST(ParallelForTest, ExplicitPoolCoversWholeRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(5000);
  parallel_for(
      pool, 0, hits.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      64);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, InPoolWorkerFlagSetOnlyOnWorkers) {
  EXPECT_FALSE(in_pool_worker());
  ThreadPool pool(1);
  bool on_worker = false;
  pool.submit([&] { on_worker = in_pool_worker(); }).get();
  EXPECT_TRUE(on_worker);
  EXPECT_FALSE(in_pool_worker());  // flag never leaks to the caller
}

// Regression: a parallel_for body that itself calls parallel_for used to
// block the worker on futures that only the already-occupied workers could
// run — a deterministic deadlock once every worker nests. The fix detects
// worker context (in_pool_worker) and executes nested bodies inline. Here
// both nested parallel_for calls run on the 1-thread pool's only worker via
// submit(); without the fix this test would hang.
TEST(ParallelForTest, NestedCallsOnOneThreadPoolComplete) {
  ThreadPool pool(1);
  std::vector<std::atomic<int>> hits(4096);
  pool.submit([&] {
        ASSERT_TRUE(in_pool_worker());
        parallel_for(
            pool, 0, 2,
            [&](std::size_t outer_lo, std::size_t outer_hi) {
              for (std::size_t half = outer_lo; half < outer_hi; ++half) {
                const std::size_t base = half * 2048;
                parallel_for(
                    pool, 0, 2048,
                    [&](std::size_t lo, std::size_t hi) {
                      for (std::size_t i = lo; i < hi; ++i) {
                        hits[base + i].fetch_add(1);
                      }
                    },
                    16);
              }
            },
            1);
      })
      .get();
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

// The saturated multi-thread variant of the same bug: every worker of the
// pool runs a task that fans out on that same pool. Before the fix, both
// workers block in future::get() while their chunks sit queued behind them.
TEST(ParallelForTest, SaturatedPoolNestedFanOutCompletes) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(2 * 4096);
  std::vector<std::future<void>> tasks;
  for (std::size_t t = 0; t < 2; ++t) {
    tasks.push_back(pool.submit([&, t] {
      const std::size_t base = t * 4096;
      parallel_for(
          pool, 0, 4096,
          [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) hits[base + i].fetch_add(1);
          },
          16);
    }));
  }
  for (auto& f : tasks) f.get();
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

// Same shape against the global pool: whatever its thread count, nesting
// must complete (and each index be visited exactly once).
TEST(ParallelForTest, NestedCallOnGlobalPoolCompletes) {
  std::vector<std::atomic<int>> hits(8192);
  parallel_for(
      0, 4,
      [&](std::size_t outer_lo, std::size_t outer_hi) {
        for (std::size_t q = outer_lo; q < outer_hi; ++q) {
          const std::size_t base = q * 2048;
          parallel_for(
              0, 2048,
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) {
                  hits[base + i].fetch_add(1);
                }
              },
              16);
        }
      },
      1);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

}  // namespace
}  // namespace sgp::util
