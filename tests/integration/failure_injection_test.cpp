// Failure injection: malformed inputs, corrupted artifacts, and adversarial
// parameter combinations must produce clean exceptions — never UB, hangs, or
// silent wrong results.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>

#include "core/serialization.hpp"
#include "graph/io.hpp"
#include "linalg/lanczos.hpp"
#include "random/rng.hpp"
#include "util/errors.hpp"

namespace sgp {
namespace {

// --------------------------------------------------------------------------
// Edge-list parser vs garbage — under both id policies: whatever parses
// must be internally consistent and must never have triggered an absurd
// allocation; everything else must be rejected with a clean exception.
class EdgeListFuzz : public testing::TestWithParam<std::string> {};

TEST_P(EdgeListFuzz, ThrowsOrParsesNeverCrashes) {
  for (const auto policy :
       {graph::IdPolicy::kCompact, graph::IdPolicy::kPreserve}) {
    std::istringstream in(GetParam());
    try {
      const auto g = graph::read_edge_list(in, policy);
      // If it parsed, the result must be internally consistent.
      ASSERT_LE(g.num_nodes(), graph::kDefaultMaxPreservedNodeId + 1);
      for (std::size_t u = 0; u < g.num_nodes(); ++u) {
        for (auto v : g.neighbors(u)) {
          ASSERT_LT(v, g.num_nodes());
          ASSERT_TRUE(g.has_edge(v, u));
        }
      }
    } catch (const std::exception&) {
      // Clean rejection is acceptable.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Garbage, EdgeListFuzz,
    testing::Values("", "\n\n\n", "0", "0 1 2", "a b", "0 a",
                    "99999999999999999999999 1",
                    "-1 2", "0 1\n1", "0 1\nxyzzy", "# only\n# comments",
                    "0 0\n0 0\n0 0", "1 2 # ok\n3", "\t \t", "0\t1\n2\t3"));

INSTANTIATE_TEST_SUITE_P(
    HostileInputs, EdgeListFuzz,
    testing::Values(
        // One hostile line asking for a multi-GB node array.
        std::string("4294967295 1"),            // 2^32 - 1 (max uint32)
        std::string("4294967296 1"),            // 2^32 (overflows uint32)
        std::string("2147483648 0"),            // 2^31 (above preserve cap)
        std::string("18446744073709551615 1"),  // uint64 max
        std::string("0 99999999999999999999"),  // overflows uint64 itself
        // Embedded NUL bytes (mid-line and a NUL-only line).
        std::string("0 1\0 2\n3 4\n", 12),
        std::string("\0\0\n0 1\n", 7),
        // CRLF line endings from a Windows-exported edge list.
        std::string("0 1\r\n2 3\r\n"),
        std::string("0 1\r\r\n"),
        // Headers that lie about the node count (kPreserve trusts them).
        std::string("# sgp edge list: 99999999999 nodes, 1 edges\n0 1\n"),
        std::string("# sgp edge list: 4294967297 nodes, 1 edges\n0 1\n"),
        std::string("# sgp edge list: -7 nodes, 1 edges\n0 1\n"),
        std::string("# sgp edge list: twelve nodes, 1 edges\n0 1\n"),
        std::string("0 1\n# sgp edge list: 2147483650 nodes, 0 edges\n")));

TEST(EdgeListHardeningTest, PreservePolicyRejectsAbsurdIdWithParseError) {
  std::istringstream in("3000000000 1\n");  // > 2^31 default cap
  EXPECT_THROW((void)graph::read_edge_list(in, graph::IdPolicy::kPreserve),
               util::ParseError);
}

TEST(EdgeListHardeningTest, PreservePolicyRejectsLyingHeader) {
  std::istringstream in("# sgp edge list: 99999999999 nodes, 1 edges\n0 1\n");
  EXPECT_THROW((void)graph::read_edge_list(in, graph::IdPolicy::kPreserve),
               util::ParseError);
}

TEST(EdgeListHardeningTest, PreserveCapIsConfigurable) {
  {
    std::istringstream in("5000 1\n");
    EXPECT_THROW(
        (void)graph::read_edge_list(in, graph::IdPolicy::kPreserve, 4096),
        util::ParseError);
  }
  {
    std::istringstream in("5000 1\n");
    const auto g =
        graph::read_edge_list(in, graph::IdPolicy::kPreserve, 8192);
    EXPECT_EQ(g.num_nodes(), 5001u);
  }
}

TEST(EdgeListHardeningTest, CompactPolicyStillAcceptsHugeSparseIds) {
  // kCompact remaps, so huge ids cost nothing and must keep working.
  std::istringstream in("18446744073709551615 7\n");
  const auto g = graph::read_edge_list(in, graph::IdPolicy::kCompact);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(EdgeListHardeningTest, TrailingGarbageAfterIdsRejected) {
  std::istringstream in(std::string("0 1\0garbage\n", 12));
  EXPECT_THROW((void)graph::read_edge_list(in), util::ParseError);
}

// --------------------------------------------------------------------------
// Release loader vs corrupted artifacts.
class ReleaseFuzz : public testing::TestWithParam<const char*> {};

TEST_P(ReleaseFuzz, CorruptedHeaderRejected) {
  std::istringstream in(GetParam());
  EXPECT_THROW((void)core::load_published(in), std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(
    Corrupted, ReleaseFuzz,
    testing::Values(
        "",                                   // empty
        "garbage",                            // wrong magic
        "sgp-published-graph v2\n",           // wrong version
        "sgp-published-graph v1\n",           // truncated after magic
        "sgp-published-graph v1\nnodes x dim 5\n",  // non-numeric n
        "sgp-published-graph v1\nnodes 0 dim 5\n",  // zero nodes
        "sgp-published-graph v1\nnodes 5 dim 0\n",  // zero dim
        "sgp-published-graph v1\nnodes 4 dim 2\nepsilon 1\n",  // short line
        "sgp-published-graph v1\nnodes 4 dim 2\n"
        "epsilon 1 delta 1e-6 sigma 2 sensitivity 1\nprojection dense\n"
        "data\n",  // unknown kind
        "sgp-published-graph v1\nnodes 4 dim 2\n"
        "epsilon 1 delta 1e-6 sigma 2 sensitivity 1\n"
        "projection gaussian\nDATA\n",  // wrong marker
        "sgp-published-graph v1\nnodes 4 dim 2\n"
        "epsilon 1 delta 1e-6 sigma 2 sensitivity 1\n"
        "projection gaussian\ndata\nshort"));  // truncated payload

// --------------------------------------------------------------------------
// Numerically hostile operators through Lanczos.
TEST(NumericalHostilityTest, LanczosOnHugeMagnitudeOperator) {
  // Entries around 1e12: must converge without overflow.
  const std::size_t n = 30;
  linalg::SymmetricOperator op{
      n, [](std::span<const double> x, std::span<double> y) {
        for (std::size_t i = 0; i < x.size(); ++i) {
          y[i] = 1e12 * static_cast<double>(i + 1) * x[i];
        }
      }};
  linalg::LanczosOptions opt;
  opt.k = 2;
  opt.max_iterations = 30;
  const auto res = linalg::lanczos_topk(op, opt);
  EXPECT_NEAR(res.values[0], 3e13, 1e7);
}

TEST(NumericalHostilityTest, LanczosOnTinyMagnitudeOperator) {
  const std::size_t n = 30;
  linalg::SymmetricOperator op{
      n, [](std::span<const double> x, std::span<double> y) {
        for (std::size_t i = 0; i < x.size(); ++i) {
          y[i] = 1e-12 * static_cast<double>(i + 1) * x[i];
        }
      }};
  linalg::LanczosOptions opt;
  opt.k = 2;
  opt.max_iterations = 30;
  const auto res = linalg::lanczos_topk(op, opt);
  EXPECT_NEAR(res.values[0], 3e-11, 1e-15);
}

TEST(NumericalHostilityTest, ZeroOperatorConverges) {
  const std::size_t n = 20;
  linalg::SymmetricOperator op{
      n, [](std::span<const double>, std::span<double> y) {
        std::fill(y.begin(), y.end(), 0.0);
      }};
  linalg::LanczosOptions opt;
  opt.k = 3;
  opt.max_iterations = 20;
  const auto res = linalg::lanczos_topk(op, opt);
  for (double v : res.values) EXPECT_NEAR(v, 0.0, 1e-12);
}

}  // namespace
}  // namespace sgp
