// Failure injection: malformed inputs, corrupted artifacts, and adversarial
// parameter combinations must produce clean exceptions — never UB, hangs, or
// silent wrong results.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>

#include "core/serialization.hpp"
#include "graph/io.hpp"
#include "linalg/lanczos.hpp"
#include "random/rng.hpp"

namespace sgp {
namespace {

// --------------------------------------------------------------------------
// Edge-list parser vs garbage.
class EdgeListFuzz : public testing::TestWithParam<const char*> {};

TEST_P(EdgeListFuzz, ThrowsOrParsesNeverCrashes) {
  std::istringstream in(GetParam());
  try {
    const auto g = graph::read_edge_list(in);
    // If it parsed, the result must be internally consistent.
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
      for (auto v : g.neighbors(u)) {
        ASSERT_LT(v, g.num_nodes());
        ASSERT_TRUE(g.has_edge(v, u));
      }
    }
  } catch (const std::exception&) {
    // Clean rejection is acceptable.
  }
}

INSTANTIATE_TEST_SUITE_P(
    Garbage, EdgeListFuzz,
    testing::Values("", "\n\n\n", "0", "0 1 2", "a b", "0 a",
                    "99999999999999999999999 1",
                    "-1 2", "0 1\n1", "0 1\nxyzzy", "# only\n# comments",
                    "0 0\n0 0\n0 0", "1 2 # ok\n3", "\t \t", "0\t1\n2\t3"));

// --------------------------------------------------------------------------
// Release loader vs corrupted artifacts.
class ReleaseFuzz : public testing::TestWithParam<const char*> {};

TEST_P(ReleaseFuzz, CorruptedHeaderRejected) {
  std::istringstream in(GetParam());
  EXPECT_THROW((void)core::load_published(in), std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(
    Corrupted, ReleaseFuzz,
    testing::Values(
        "",                                   // empty
        "garbage",                            // wrong magic
        "sgp-published-graph v2\n",           // wrong version
        "sgp-published-graph v1\n",           // truncated after magic
        "sgp-published-graph v1\nnodes x dim 5\n",  // non-numeric n
        "sgp-published-graph v1\nnodes 0 dim 5\n",  // zero nodes
        "sgp-published-graph v1\nnodes 5 dim 0\n",  // zero dim
        "sgp-published-graph v1\nnodes 4 dim 2\nepsilon 1\n",  // short line
        "sgp-published-graph v1\nnodes 4 dim 2\n"
        "epsilon 1 delta 1e-6 sigma 2 sensitivity 1\nprojection dense\n"
        "data\n",  // unknown kind
        "sgp-published-graph v1\nnodes 4 dim 2\n"
        "epsilon 1 delta 1e-6 sigma 2 sensitivity 1\n"
        "projection gaussian\nDATA\n",  // wrong marker
        "sgp-published-graph v1\nnodes 4 dim 2\n"
        "epsilon 1 delta 1e-6 sigma 2 sensitivity 1\n"
        "projection gaussian\ndata\nshort"));  // truncated payload

// --------------------------------------------------------------------------
// Numerically hostile operators through Lanczos.
TEST(NumericalHostilityTest, LanczosOnHugeMagnitudeOperator) {
  // Entries around 1e12: must converge without overflow.
  const std::size_t n = 30;
  linalg::SymmetricOperator op{
      n, [](std::span<const double> x, std::span<double> y) {
        for (std::size_t i = 0; i < x.size(); ++i) {
          y[i] = 1e12 * static_cast<double>(i + 1) * x[i];
        }
      }};
  linalg::LanczosOptions opt;
  opt.k = 2;
  opt.max_iterations = 30;
  const auto res = linalg::lanczos_topk(op, opt);
  EXPECT_NEAR(res.values[0], 3e13, 1e7);
}

TEST(NumericalHostilityTest, LanczosOnTinyMagnitudeOperator) {
  const std::size_t n = 30;
  linalg::SymmetricOperator op{
      n, [](std::span<const double> x, std::span<double> y) {
        for (std::size_t i = 0; i < x.size(); ++i) {
          y[i] = 1e-12 * static_cast<double>(i + 1) * x[i];
        }
      }};
  linalg::LanczosOptions opt;
  opt.k = 2;
  opt.max_iterations = 30;
  const auto res = linalg::lanczos_topk(op, opt);
  EXPECT_NEAR(res.values[0], 3e-11, 1e-15);
}

TEST(NumericalHostilityTest, ZeroOperatorConverges) {
  const std::size_t n = 20;
  linalg::SymmetricOperator op{
      n, [](std::span<const double>, std::span<double> y) {
        std::fill(y.begin(), y.end(), 0.0);
      }};
  linalg::LanczosOptions opt;
  opt.k = 3;
  opt.max_iterations = 20;
  const auto res = linalg::lanczos_topk(op, opt);
  for (double v : res.values) EXPECT_NEAR(v, 0.0, 1e-12);
}

}  // namespace
}  // namespace sgp
