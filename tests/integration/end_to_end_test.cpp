// End-to-end integration tests: full provider → artifact → analyst
// pipelines crossing every module boundary, exactly as the tools drive them.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cluster/louvain.hpp"
#include "cluster/metrics.hpp"
#include "core/reconstruction.hpp"
#include "core/serialization.hpp"
#include "core/session.hpp"
#include "core/stats_publisher.hpp"
#include "core/surrogate.hpp"
#include "graph/datasets.hpp"
#include "graph/io.hpp"
#include "graph/metrics.hpp"
#include "ranking/centrality.hpp"
#include "ranking/metrics.hpp"

namespace sgp {
namespace {

// Strong-signal planted graph: community eigenvalues (~73) sit well above
// the noise spectral norm at the ε used below, so utility assertions test
// the pipeline rather than the utility transition itself.
graph::PlantedGraph strong_sbm(std::uint64_t seed) {
  random::Rng rng(seed);
  return graph::stochastic_block_model({150, 150, 150}, 0.5, 0.01, rng);
}

TEST(EndToEndTest, ProviderToAnalystRoundTripThroughFiles) {
  // Provider: synthesize graph, write edge list, publish, write release.
  const auto planted = strong_sbm(11);
  const std::string edges_path = testing::TempDir() + "/e2e_edges.txt";
  const std::string release_path = testing::TempDir() + "/e2e_release.bin";
  graph::write_edge_list_file(planted.graph, edges_path);

  // kPreserve keeps node identity, so the planted labels stay aligned.
  const auto reloaded_graph =
      graph::read_edge_list_file(edges_path, graph::IdPolicy::kPreserve);
  ASSERT_EQ(reloaded_graph.num_nodes(), planted.graph.num_nodes());
  ASSERT_EQ(reloaded_graph.num_edges(), planted.graph.num_edges());

  core::RandomProjectionPublisher::Options opt;
  opt.projection_dim = 64;
  opt.params = {8.0, 1e-6};
  opt.seed = 99;
  const auto release =
      core::RandomProjectionPublisher(opt).publish(reloaded_graph);
  core::save_published_file(release, release_path);

  // Analyst: load release, cluster — never touching the graph.
  const auto loaded = core::load_published_file(release_path);
  const auto clusters = core::cluster_published(loaded, 3, 5);
  const double nmi = cluster::normalized_mutual_information(
      clusters.assignments, planted.labels);
  EXPECT_GT(nmi, 0.8) << "clustering utility lost across the file boundary";

  std::remove(edges_path.c_str());
  std::remove(release_path.c_str());
}

TEST(EndToEndTest, RankingSurvivesFileBoundaryOnHubGraph) {
  random::Rng rng(43);
  const auto g = graph::barabasi_albert(1500, 5, rng);
  const std::string release_path = testing::TempDir() + "/e2e_rank.bin";
  core::RandomProjectionPublisher::Options opt;
  opt.projection_dim = 100;
  opt.params = {10.0, 1e-6};
  core::save_published_file(core::RandomProjectionPublisher(opt).publish(g),
                            release_path);
  const auto loaded = core::load_published_file(release_path);
  const auto truth = ranking::degree_centrality(g);
  const auto estimated = core::degree_scores(loaded);
  EXPECT_GT(ranking::spearman_rho(truth, estimated), 0.3);
  EXPECT_GT(ranking::top_k_overlap(truth, estimated, 75), 0.3);
  std::remove(release_path.c_str());
}

TEST(EndToEndTest, StreamingAndInMemoryReleasesAnalyzeIdentically) {
  const auto dataset = graph::facebook_sim_small(13);
  core::RandomProjectionPublisher::Options opt;
  opt.projection_dim = 48;
  opt.params = {6.0, 1e-6};
  opt.seed = 7;

  std::stringstream streamed;
  core::publish_to_stream(dataset.planted.graph, opt, streamed);
  const auto from_stream = core::load_published(streamed);
  const auto direct =
      core::RandomProjectionPublisher(opt).publish(dataset.planted.graph);

  const auto c1 = core::cluster_published(from_stream, 8, 3);
  const auto c2 = core::cluster_published(direct, 8, 3);
  EXPECT_EQ(c1.assignments, c2.assignments);
}

TEST(EndToEndTest, SessionReleasesRemainIndividuallyUseful) {
  core::PublishingSession::Options opt;
  opt.publisher.projection_dim = 64;
  opt.publisher.params = {8.0, 1e-7};
  opt.publisher.seed = 21;
  opt.total_budget = {32.0, 1e-5};
  core::PublishingSession session(opt);

  const auto planted = strong_sbm(17);
  for (int release_idx = 0; release_idx < 3; ++release_idx) {
    const auto release = session.publish(planted.graph);
    const auto clusters = core::cluster_published(release, 3, 3);
    EXPECT_GT(cluster::normalized_mutual_information(clusters.assignments,
                                                     planted.labels),
              0.7)
        << "release " << release_idx;
  }
  EXPECT_EQ(session.num_releases(), 3u);
  EXPECT_LE(session.spent().epsilon, 32.0);
}

TEST(EndToEndTest, SurrogateGraphFeedsGraphNativeTools) {
  // Release → surrogate graph → Louvain + graph metrics, all analyst-side.
  random::Rng rng(23);
  const auto planted = graph::stochastic_block_model({80, 80}, 0.5, 0.02, rng);
  core::RandomProjectionPublisher::Options opt;
  opt.projection_dim = 60;
  opt.params = {30.0, 1e-6};
  const auto release =
      core::RandomProjectionPublisher(opt).publish(planted.graph);

  core::SurrogateOptions sopt;
  sopt.rank = 2;
  const auto surrogate = core::sample_surrogate_graph(release, sopt);
  const auto louvain = cluster::louvain_cluster(surrogate);
  EXPECT_GT(cluster::normalized_mutual_information(louvain.assignments,
                                                   planted.labels),
            0.6);
  EXPECT_GT(graph::modularity(surrogate, louvain.assignments), 0.2);
}

TEST(EndToEndTest, CompanionStatsComposeWithMatrixRelease) {
  const auto dataset = graph::facebook_sim_small(29);
  const auto& g = dataset.planted.graph;
  random::Rng rng(31);

  dp::PrivacyAccountant accountant;
  // Matrix release.
  core::RandomProjectionPublisher::Options opt;
  opt.projection_dim = 32;
  opt.params = {2.0, 1e-6};
  (void)core::RandomProjectionPublisher(opt).publish(g);
  accountant.record(opt.params);
  // Companion stats.
  const auto edges = core::dp_edge_count(g, 0.5, rng);
  accountant.record({0.5, 0.0});
  const auto hist = core::dp_degree_histogram(g, 0.5, 60, rng);
  accountant.record({0.5, 0.0});

  EXPECT_NEAR(edges.value, static_cast<double>(g.num_edges()),
              30.0);  // Laplace(2) tail
  EXPECT_EQ(hist.size(), 61u);
  const auto total = accountant.basic_composition();
  EXPECT_NEAR(total.epsilon, 3.0, 1e-12);
  EXPECT_NEAR(total.delta, 1e-6, 1e-15);
}

TEST(EndToEndTest, EdgeProbingNeedsTheProjectionSeed) {
  // Sanity: with the right seed edge scores separate; with a wrong seed the
  // regenerated projection is useless (scores carry no signal).
  random::Rng rng(37);
  const auto g = graph::erdos_renyi(200, 0.1, rng);
  core::RandomProjectionPublisher::Options opt;
  opt.projection_dim = 96;
  opt.params = {50.0, 1e-6};
  opt.seed = 41;
  const auto pub = core::RandomProjectionPublisher(opt).publish(g);

  const auto right = core::regenerate_projection(pub, 41);
  const auto wrong = core::regenerate_projection(pub, 42);
  double right_gap = 0, wrong_gap = 0;
  int pairs = 0;
  for (const auto& e : g.edges()) {
    right_gap += core::edge_score(pub, right, e.u, e.v);
    wrong_gap += core::edge_score(pub, wrong, e.u, e.v);
    if (++pairs == 200) break;
  }
  right_gap /= pairs;
  wrong_gap /= pairs;
  EXPECT_GT(right_gap, 0.5);
  EXPECT_NEAR(wrong_gap, 0.0, 0.2);
}

}  // namespace
}  // namespace sgp
