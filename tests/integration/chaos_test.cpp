// Chaos suite: every named fault point armed against live publish sessions.
//
// The invariants under test are the ones that make the privacy guarantee
// crash-safe (see docs/robustness.md):
//   1. A session never returns a published artifact that is not recorded in
//      its ledger — budget can be over-counted by a failure, never
//      under-counted.
//   2. A fresh session reloading the ledger after a simulated kill reports
//      spent() >= the pre-crash value and keeps enforcing the cap.
//   3. Solver faults degrade gracefully: spectral clustering falls back to
//      the dense eigensolver and still returns valid labels.
//   4. Armed IO/alloc faults surface as the mapped taxonomy errors — never
//      crashes, hangs, or silent wrong results.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <new>
#include <sstream>
#include <string>

#include "cluster/spectral.hpp"
#include "core/ledger.hpp"
#include "core/serialization.hpp"
#include "core/session.hpp"
#include "core/sharded_publish.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/shard_loader.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"

namespace sgp {
namespace {

class ChaosTest : public testing::Test {
 protected:
  void SetUp() override {
    util::disarm_all_faults();
    ledger_path_ = testing::TempDir() + "/sgp_chaos_" +
                   testing::UnitTest::GetInstance()->current_test_info()->name() +
                   ".ledger";
    std::remove(ledger_path_.c_str());
  }
  void TearDown() override {
    util::disarm_all_faults();
    std::remove(ledger_path_.c_str());
    std::remove((ledger_path_ + ".tmp").c_str());
  }

  static graph::Graph test_graph(std::uint64_t seed = 1) {
    random::Rng rng(seed);
    return graph::erdos_renyi(80, 0.1, rng);
  }

  static core::PublishingSession::Options session_options() {
    core::PublishingSession::Options opt;
    opt.publisher.projection_dim = 16;
    opt.publisher.params = {0.5, 1e-7};
    opt.publisher.seed = 5;
    opt.total_budget = {20.0, 1e-5};
    return opt;
  }

  std::string ledger_path_;
};

// --------------------------------------------------------------------------
// Invariant 1: with ledger.append faults firing intermittently, every
// artifact the session hands out is already on disk.
TEST_F(ChaosTest, LedgerFaultsNeverUndercountBudget) {
  const auto g = test_graph();
  core::PublishingSession session(session_options(), ledger_path_);

  util::FaultConfig cfg;
  cfg.probability = 0.4;
  cfg.seed = 2024;
  util::arm_fault("ledger.append", cfg);

  std::size_t artifacts = 0;
  std::size_t io_failures = 0;
  for (int i = 0; i < 12; ++i) {
    try {
      const auto release = session.publish(g);
      ++artifacts;
      // Every returned artifact must already be durably recorded.
      util::disarm_all_faults();
      EXPECT_GE(core::BudgetLedger(ledger_path_).size(), artifacts);
      util::arm_fault("ledger.append", cfg);
      cfg.seed += 1;  // vary the remaining pattern across iterations
    } catch (const util::IoError&) {
      ++io_failures;
    }
  }
  util::disarm_all_faults();
  EXPECT_GT(artifacts, 0u) << "fault probability 0.4 should let some through";
  EXPECT_GT(io_failures, 0u) << "fault probability 0.4 should block some";

  // In-memory count and durable count agree after the dust settles.
  EXPECT_EQ(core::BudgetLedger(ledger_path_).size(), session.num_releases());
  EXPECT_EQ(session.num_releases(), artifacts);
}

// --------------------------------------------------------------------------
// Invariant 2: recovery after a simulated kill.
TEST_F(ChaosTest, RecoveryAfterSimulatedKill) {
  const auto g = test_graph();
  double pre_crash_spent = 0.0;
  std::size_t pre_crash_releases = 0;
  {
    core::PublishingSession session(session_options(), ledger_path_);
    for (int i = 0; i < 3; ++i) (void)session.publish(g);
    pre_crash_spent = session.spent().epsilon;
    pre_crash_releases = session.num_releases();
    // The session object is dropped without any shutdown handshake — the
    // moral equivalent of SIGKILL between releases.
  }

  core::PublishingSession recovered(session_options(), ledger_path_);
  EXPECT_EQ(recovered.num_releases(), pre_crash_releases);
  EXPECT_GE(recovered.spent().epsilon, pre_crash_spent - 1e-12);
  EXPECT_DOUBLE_EQ(recovered.spent().epsilon, pre_crash_spent);

  // The recovered session keeps charging from where the crash left off.
  (void)recovered.publish(g);
  EXPECT_EQ(recovered.num_releases(), pre_crash_releases + 1);
  EXPECT_GT(recovered.spent().epsilon, pre_crash_spent);
}

// A crash *after* the ledger append but *before* the artifact went out
// (here: an allocation failure mid-publish) may only over-count.
TEST_F(ChaosTest, FailureAfterAppendOvercountsNeverUndercounts) {
  const auto g = test_graph();
  core::PublishingSession session(session_options(), ledger_path_);
  (void)session.publish(g);
  const double spent_before = session.spent().epsilon;

  util::arm_fault("alloc");
  // The armed fault raises std::bad_alloc at the fault point; the publisher
  // surfaces it as the typed ResourceError of the error taxonomy.
  EXPECT_THROW((void)session.publish(g), util::ResourceError);
  util::disarm_all_faults();

  // The charge is on disk even though no artifact was returned.
  EXPECT_EQ(core::BudgetLedger(ledger_path_).size(), 2u);
  core::PublishingSession recovered(session_options(), ledger_path_);
  EXPECT_EQ(recovered.num_releases(), 2u);
  EXPECT_GE(recovered.spent().epsilon, spent_before);
}

// --------------------------------------------------------------------------
// A ledger written under different per-release parameters must be refused,
// not silently reinterpreted.
TEST_F(ChaosTest, RecoveryRefusesMismatchedConfiguration) {
  {
    core::PublishingSession session(session_options(), ledger_path_);
    (void)session.publish(test_graph());
  }
  auto opt = session_options();
  opt.publisher.params.epsilon = 0.9;  // not what the ledger was written with
  EXPECT_THROW(core::PublishingSession(opt, ledger_path_),
               util::LedgerCorruptError);
}

// --------------------------------------------------------------------------
// Budget-exhaustion refusal is typed, uncharged, and unrecorded.
TEST_F(ChaosTest, ExhaustionRefusalLeavesLedgerUntouched) {
  auto opt = session_options();
  opt.publisher.params = {1.0, 1e-7};
  opt.total_budget = {2.0, 1e-5};
  core::PublishingSession session(opt, ledger_path_);
  const auto g = test_graph();

  std::size_t published = 0;
  for (int i = 0; i < 50; ++i) {
    try {
      (void)session.publish(g);
      ++published;
    } catch (const util::BudgetExhaustedError&) {
      break;
    }
  }
  EXPECT_GE(published, 2u);
  EXPECT_LE(session.spent().epsilon, 2.0 + 1e-9);
  EXPECT_EQ(core::BudgetLedger(ledger_path_).size(), published)
      << "a refused release must not be recorded";
}

// --------------------------------------------------------------------------
// Invariant 3: solver fault injection triggers the dense-eigensolver
// fallback and spectral clustering still returns valid labels.
TEST_F(ChaosTest, SolverFaultFallsBackToDenseEigensolver) {
  random::Rng rng(3);
  const auto planted = graph::stochastic_block_model(
      std::vector<std::size_t>(4, 30), 0.5, 0.02, rng);

  util::arm_fault("solver.iteration");  // every Lanczos attempt dies

  cluster::SpectralOptions opt;
  opt.num_clusters = 4;
  opt.seed = 11;
  const auto result = cluster::spectral_cluster_graph(planted.graph, opt);

  EXPECT_GT(util::fault_fires("solver.iteration"), 0u)
      << "the fault must actually have hit the Lanczos path";
  util::disarm_all_faults();

  ASSERT_EQ(result.assignments.size(), planted.graph.num_nodes());
  for (const auto label : result.assignments) {
    EXPECT_LT(label, 4u);
  }
  // The dense fallback sees the exact spectrum, so the planted communities
  // should still be recovered almost perfectly on this easy instance: check
  // that clusters are non-degenerate.
  std::vector<std::size_t> sizes(4, 0);
  for (const auto label : result.assignments) ++sizes[label];
  for (const std::size_t s : sizes) EXPECT_GT(s, 0u);
}

// --------------------------------------------------------------------------
// Invariant 4: every fault point armed at once — the pipeline fails only
// with typed errors, and works again the moment faults are disarmed.
TEST_F(ChaosTest, AllFaultPointsArmedFailCleanlyThenRecover) {
  const auto g = test_graph();
  const std::string edges = testing::TempDir() + "/sgp_chaos_all.edges";
  const std::string release = testing::TempDir() + "/sgp_chaos_all.release";

  util::arm_faults_from_spec(
      "io.read,io.write,ledger.append,solver.iteration,alloc");

  EXPECT_THROW(graph::write_edge_list_file(g, edges), util::IoError);
  EXPECT_THROW((void)graph::read_edge_list_file(edges, graph::IdPolicy::kCompact),
               util::IoError);
  {
    core::PublishingSession session(session_options(), ledger_path_);
    EXPECT_THROW((void)session.publish(g), util::IoError);  // ledger.append
    EXPECT_EQ(session.num_releases(), 0u);
  }
  {
    std::istringstream in("");
    EXPECT_THROW((void)core::load_published(in), util::IoError);  // io.read
  }

  util::disarm_all_faults();

  // Same pipeline, no faults: everything works end to end.
  graph::write_edge_list_file(g, edges);
  const auto reloaded = graph::read_edge_list_file(edges);
  EXPECT_EQ(reloaded.num_edges(), g.num_edges());
  core::PublishingSession session(session_options(), ledger_path_);
  const auto out = session.publish(reloaded);
  core::save_published_file(out, release);
  const auto loaded = core::load_published_file(release);
  EXPECT_EQ(loaded.num_nodes, reloaded.num_nodes());
  EXPECT_EQ(core::BudgetLedger(ledger_path_).size(), 1u);

  std::remove(edges.c_str());
  std::remove(release.c_str());
}

// --------------------------------------------------------------------------
// SGP_FAULT_SPEC-style intermittent IO faults replay identically: the same
// spec + seed produces the same sequence of publish outcomes.
TEST_F(ChaosTest, SeededFaultSequencesReplayExactly) {
  const auto g = test_graph();

  auto run = [&]() {
    std::remove(ledger_path_.c_str());
    util::arm_faults_from_spec("ledger.append:prob=0.5:seed=77");
    core::PublishingSession session(session_options(), ledger_path_);
    std::string outcome;
    for (int i = 0; i < 10; ++i) {
      try {
        (void)session.publish(g);
        outcome += 'P';
      } catch (const util::IoError&) {
        outcome += 'F';
      }
    }
    util::disarm_all_faults();
    return outcome;
  };

  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find('P'), std::string::npos);
  EXPECT_NE(first.find('F'), std::string::npos);
}

// --------------------------------------------------------------------------
// The out-of-core path under the same crash discipline: a ledger-charged
// sharded release killed mid-shard (spec-driven, like SGP_FAULT_SPEC in the
// CLI) is finished after recovery via release_options() — resuming from the
// shard checkpoint, charging no second release, and producing a file
// byte-identical to an uninterrupted run of the same charged release.
TEST_F(ChaosTest, ShardedReleaseCrashResumesFromLedgerWithoutSecondCharge) {
  const auto g = test_graph(9);
  const std::string edges = testing::TempDir() + "/sgp_chaos_shard.edges";
  const std::string out = testing::TempDir() + "/sgp_chaos_shard.bin";
  graph::write_edge_list_file(g, edges);
  graph::EdgeListShardReader reader(edges, graph::IdPolicy::kPreserve);

  // Charge release 1 into the ledger, then die on the 3rd shard write.
  {
    core::PublishingSession session(session_options(), ledger_path_);
    core::ShardedPublishOptions sopt;
    sopt.publish = session.begin_release();
    sopt.shard_rows = 10;
    util::arm_faults_from_spec("io.shard.write:after=2:count=1");
    EXPECT_THROW((void)core::publish_sharded(reader, sopt, out),
                 util::IoError);
    util::disarm_all_faults();
  }

  // Simulated restart: the ledger says release 1 is spent; finish it with
  // its recorded per-release options instead of charging release 2.
  core::PublishingSession recovered(session_options(), ledger_path_);
  ASSERT_EQ(recovered.num_releases(), 1u);
  core::ShardedPublishOptions sopt;
  sopt.publish = recovered.release_options(recovered.num_releases());
  sopt.shard_rows = 10;
  const auto result = core::publish_sharded(reader, sopt, out);
  EXPECT_GT(result.shards_resumed, 0u) << "checkpoint should have been used";
  EXPECT_EQ(recovered.num_releases(), 1u) << "finishing must not re-charge";
  EXPECT_EQ(core::BudgetLedger(ledger_path_).size(), 1u);

  // Byte-identical to an uninterrupted run of the same charged release.
  std::ostringstream reference(std::ios::binary);
  core::publish_to_stream(g, sopt.publish, reference);
  std::ifstream in(out, std::ios::binary);
  std::ostringstream produced;
  produced << in.rdbuf();
  EXPECT_EQ(produced.str(), reference.str());

  std::remove(edges.c_str());
  std::remove(out.c_str());
  std::remove((out + ".ckpt").c_str());
}

}  // namespace
}  // namespace sgp
