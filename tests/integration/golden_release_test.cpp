// End-to-end golden pin: a fixed-seed graph published through BOTH paths
// (in-memory publish_to_stream and out-of-core publish_sharded) must equal
// the byte-for-byte pinned release checked in under integration/golden/.
// This freezes the whole chain — generator stream, counter RNG, calibration
// constants, header encoding, payload endianness — as one artifact; any
// drift anywhere shows up as a byte diff here before it can silently change
// what data owners release.
//
// To regenerate after a *deliberate* format or RNG change:
//   SGP_UPDATE_GOLDEN=1 ./integration_test --gtest_filter='GoldenRelease.*'
// and commit the rewritten files under tests/integration/golden/.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/serialization.hpp"
#include "core/sharded_publish.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "random/rng.hpp"

namespace sgp::core {
namespace {

const std::string kEdgesPath =
    std::string(SGP_GOLDEN_DIR) + "/graph_n24.edges";
const std::string kReleasePath =
    std::string(SGP_GOLDEN_DIR) + "/release_n24_m8.bin";

RandomProjectionPublisher::Options golden_options() {
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 8;
  opt.seed = 4321;
  return opt;
}

graph::Graph golden_graph() {
  random::Rng rng(2026);
  return graph::barabasi_albert(24, 3, rng);
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    ADD_FAILURE() << "missing golden file " << path
                  << " (run with SGP_UPDATE_GOLDEN=1 to create)";
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool update_mode() { return std::getenv("SGP_UPDATE_GOLDEN") != nullptr; }

TEST(GoldenRelease, GeneratorStreamMatchesPinnedEdgeList) {
  std::ostringstream edges;
  graph::write_edge_list(golden_graph(), edges);
  if (update_mode()) {
    std::ofstream out(kEdgesPath, std::ios::binary);
    out << edges.str();
    GTEST_SKIP() << "rewrote " << kEdgesPath;
  }
  EXPECT_EQ(edges.str(), file_bytes(kEdgesPath))
      << "generator or edge-list format drift";
}

TEST(GoldenRelease, InMemoryPathMatchesPinnedRelease) {
  const graph::Graph g =
      graph::read_edge_list_file(kEdgesPath, graph::IdPolicy::kPreserve);
  std::ostringstream out(std::ios::binary);
  publish_to_stream(g, golden_options(), out);
  if (update_mode()) {
    std::ofstream f(kReleasePath, std::ios::binary);
    f << out.str();
    GTEST_SKIP() << "rewrote " << kReleasePath;
  }
  EXPECT_EQ(out.str(), file_bytes(kReleasePath))
      << "publish pipeline byte drift (RNG, calibration, or format)";
}

TEST(GoldenRelease, ShardedPathMatchesPinnedRelease) {
  if (update_mode()) {
    GTEST_SKIP() << "golden files are authored by the in-memory path";
  }
  const std::string pinned = file_bytes(kReleasePath);
  graph::EdgeListShardReader reader(kEdgesPath, graph::IdPolicy::kPreserve);
  for (const std::size_t shard_rows :
       {std::size_t{1}, std::size_t{5}, std::size_t{24}}) {
    const std::string out_path = testing::TempDir() + "/sgp_golden_s" +
                                 std::to_string(shard_rows) + ".bin";
    ShardedPublishOptions opt;
    opt.publish = golden_options();
    opt.shard_rows = shard_rows;
    opt.threads = 2;
    publish_sharded(reader, opt, out_path);
    std::ifstream in(out_path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), pinned) << "sharded drift at shard_rows="
                                 << shard_rows;
    std::remove(out_path.c_str());
  }
}

TEST(GoldenRelease, PinnedReleaseLoadsAndMatchesMetadata) {
  if (update_mode()) GTEST_SKIP();
  const PublishedGraph pub = load_published_file(kReleasePath);
  EXPECT_EQ(pub.num_nodes, 24u);
  EXPECT_EQ(pub.projection_dim, 8u);
  EXPECT_EQ(pub.projection_rng, ProjectionRngKind::kCounterV1);
  EXPECT_DOUBLE_EQ(pub.params.epsilon, 1.0);
  EXPECT_DOUBLE_EQ(pub.params.delta, 1e-6);
}

}  // namespace
}  // namespace sgp::core
