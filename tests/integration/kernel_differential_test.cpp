// Kernel-variant differential suite (ctest label: simd).
//
// The dispatch contract, end to end: for every kernel variant this machine
// supports, every publish path (in-memory, streaming, sharded at several
// shard×thread points) must produce the same release bytes as every other
// path under the same variant — and the polynomial variants must all produce
// the same bytes as each other, tagged "counter-v1-simd" so reconstruction
// regenerates the identical projection anywhere. The scalar variant must
// keep producing the byte-pinned "counter-v1" releases the golden suite
// checks. tests/slow/differential_matrix_test.cpp runs the deep version of
// the shard×thread sweep; this file keeps a representative slice in tier 1.
//
// The variant and shard×thread axes are SGP_PARAMETERIZE declarations in
// tests/scenario/test_axes.hpp; tests/scenario/migration_pin_test.cpp pins
// their cell counts to the hand-rolled loops this file used to carry.
// Variants the build/CPU lacks skip at runtime inside each SGP_PICK sweep.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/distributed_publish.hpp"
#include "core/publisher.hpp"
#include "core/reconstruction.hpp"
#include "core/serialization.hpp"
#include "core/sharded_publish.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "random/kernel_variant.hpp"
#include "random/rng.hpp"

#include "../scenario/test_axes.hpp"

namespace sgp::core {
namespace {

using namespace sgp::test_axes;  // NOLINT: axis accessors for SGP_PICK

class KernelDifferentialTest : public testing::Test {
 protected:
  void SetUp() override {
    const std::string stem =
        testing::TempDir() + "/sgp_kernel_diff_" +
        testing::UnitTest::GetInstance()->current_test_info()->name();
    edges_path_ = stem + ".edges";
    out_path_ = stem + ".bin";
    random::Rng rng(77);
    graph_ = graph::erdos_renyi(72, 0.09, rng);
    graph::write_edge_list_file(graph_, edges_path_);
  }
  void TearDown() override {
    std::remove(edges_path_.c_str());
    std::remove(out_path_.c_str());
    std::remove((out_path_ + ".ckpt").c_str());
  }

  RandomProjectionPublisher::Options options(random::KernelVariant kernel,
                                             ProjectionKind projection =
                                                 ProjectionKind::kGaussian)
      const {
    RandomProjectionPublisher::Options opt;
    opt.projection_dim = 12;
    opt.seed = 4242;
    opt.kernel = kernel;
    opt.projection = projection;
    return opt;
  }

  std::string in_memory_bytes(
      const RandomProjectionPublisher::Options& opt) const {
    const auto release = RandomProjectionPublisher(opt).publish(graph_);
    std::ostringstream out(std::ios::binary);
    save_published(release, out);
    return out.str();
  }

  std::string streaming_bytes(
      const RandomProjectionPublisher::Options& opt) const {
    std::ostringstream out(std::ios::binary);
    publish_to_stream(graph_, opt, out);
    return out.str();
  }

  std::string sharded_bytes(const RandomProjectionPublisher::Options& opt,
                            std::size_t shard_rows,
                            std::size_t threads) const {
    graph::EdgeListShardReader reader(edges_path_, graph::IdPolicy::kPreserve);
    ShardedPublishOptions sopt;
    sopt.publish = opt;
    sopt.shard_rows = shard_rows;
    sopt.threads = threads;
    sopt.resume = false;
    publish_sharded(reader, sopt, out_path_);
    std::ifstream in(out_path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  // The coordinator path: publish_distributed writes the release header
  // itself (workers only produce shard payloads), so it must resolve the
  // rng tag from the kernel exactly like every other writer. workers=1
  // runs the shards in the coordinator process — no worker binary needed.
  std::string distributed_bytes(const RandomProjectionPublisher::Options& opt,
                                std::size_t shard_rows) const {
    graph::EdgeListShardReader reader(edges_path_, graph::IdPolicy::kPreserve);
    DistributedPublishOptions dopt;
    dopt.sharded.publish = opt;
    dopt.sharded.shard_rows = shard_rows;
    dopt.sharded.resume = false;
    dopt.workers = 1;
    dopt.edges_path = edges_path_;
    dopt.id_policy = graph::IdPolicy::kPreserve;
    publish_distributed(reader, dopt, out_path_);
    std::ifstream in(out_path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  graph::Graph graph_;
  std::string edges_path_;
  std::string out_path_;
};

TEST_F(KernelDifferentialTest, AllPathsAgreePerVariantAcrossShardsAndThreads) {
  random::KernelVariant kernel = random::KernelVariant::kScalar;
  SGP_PICK(kernel_variants, kernel) {
    if (!random::kernel_supported(kernel)) continue;
    const auto opt = options(kernel);
    const std::string reference = in_memory_bytes(opt);
    EXPECT_EQ(streaming_bytes(opt), reference)
        << "streaming, kernel " << SGP_PICK_LABEL(kernel);
    ShardThread cell{};
    SGP_PICK(kernel_diff_shard_thread, cell) {
      EXPECT_EQ(sharded_bytes(opt, cell.first, cell.second), reference)
          << "cell " << SGP_PICK_LABEL(cell) << ", kernel "
          << SGP_PICK_LABEL(kernel);
    }
    // Regression: the coordinator once hardcoded kCounterV1 into the header
    // it assembles, so distributed releases under a polynomial kernel
    // carried the wrong tag (and would regenerate the wrong P).
    EXPECT_EQ(distributed_bytes(opt, 16), reference)
        << "distributed, kernel " << SGP_PICK_LABEL(kernel);
  }
}

TEST_F(KernelDifferentialTest, PolynomialVariantsProduceIdenticalReleases) {
  const std::string reference =
      in_memory_bytes(options(random::KernelVariant::kGeneric));
  random::KernelVariant kernel = random::KernelVariant::kScalar;
  SGP_PICK(kernel_variants, kernel) {
    if (kernel == random::KernelVariant::kScalar) continue;
    if (!random::kernel_supported(kernel)) continue;
    EXPECT_EQ(in_memory_bytes(options(kernel)), reference)
        << "kernel " << SGP_PICK_LABEL(kernel);
  }
  // ... and they are a different mapping than scalar, under a different tag.
  EXPECT_NE(in_memory_bytes(options(random::KernelVariant::kScalar)),
            reference);
}

TEST_F(KernelDifferentialTest, GaussianReleasesRecordTheNormalMapping) {
  const auto scalar =
      RandomProjectionPublisher(options(random::KernelVariant::kScalar))
          .publish(graph_);
  EXPECT_EQ(scalar.projection_rng, ProjectionRngKind::kCounterV1);
  const auto poly =
      RandomProjectionPublisher(options(random::KernelVariant::kGeneric))
          .publish(graph_);
  EXPECT_EQ(poly.projection_rng, ProjectionRngKind::kCounterV1Simd);
}

TEST_F(KernelDifferentialTest, AchlioptasProjectionIsKernelInvariant) {
  // The achlioptas *projection* consumes only exact ops (uniforms), which
  // are bit-identical under every variant — so its header tag stays
  // "counter-v1" and the regenerated P is the same matrix no matter which
  // kernel published it. (The release bytes still differ under a polynomial
  // kernel, because the additive noise is gaussian normals; only P has to
  // be regenerable, and the tag describes P.)
  const auto reference = make_projection_counter(
      graph_.num_nodes(), 12, ProjectionKind::kAchlioptas, 4242,
      random::KernelVariant::kScalar);
  random::KernelVariant kernel = random::KernelVariant::kScalar;
  SGP_PICK(kernel_variants, kernel) {
    if (!random::kernel_supported(kernel)) continue;
    const auto opt = options(kernel, ProjectionKind::kAchlioptas);
    const auto release = RandomProjectionPublisher(opt).publish(graph_);
    EXPECT_EQ(release.projection_rng, ProjectionRngKind::kCounterV1)
        << "kernel " << SGP_PICK_LABEL(kernel);
    const auto p = regenerate_projection(release, opt.seed);
    for (std::size_t i = 0; i < p.rows(); ++i) {
      for (std::size_t j = 0; j < p.cols(); ++j) {
        ASSERT_EQ(p(i, j), reference(i, j))
            << "kernel " << SGP_PICK_LABEL(kernel);
      }
    }
  }
}

TEST_F(KernelDifferentialTest, SimdReleasesRoundTripThroughReconstruction) {
  // A polynomial release written on this machine must regenerate the exact
  // projection via the tag alone (no kernel knowledge at load time).
  random::KernelVariant kernel = random::KernelVariant::kScalar;
  SGP_PICK(kernel_variants, kernel) {
    if (!random::kernel_supported(kernel)) continue;
    const auto opt = options(kernel);
    const auto release = RandomProjectionPublisher(opt).publish(graph_);
    std::stringstream io(std::ios::in | std::ios::out | std::ios::binary);
    save_published(release, io);
    const PublishedGraph loaded = load_published(io);
    EXPECT_EQ(loaded.projection_rng, release.projection_rng);
    const auto p = regenerate_projection(loaded, opt.seed);
    const auto direct = make_projection_counter(
        graph_.num_nodes(), opt.projection_dim, opt.projection, opt.seed,
        kernel);
    ASSERT_EQ(p.rows(), direct.rows());
    ASSERT_EQ(p.cols(), direct.cols());
    for (std::size_t i = 0; i < p.rows(); ++i) {
      for (std::size_t j = 0; j < p.cols(); ++j) {
        ASSERT_EQ(p(i, j), direct(i, j))
            << "kernel " << random::to_string(kernel);
      }
    }
  }
}

}  // namespace
}  // namespace sgp::core
