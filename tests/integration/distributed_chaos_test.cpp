// Process-level chaos suite for the distributed coordinator/worker publish
// (core/distributed_publish.hpp). Real worker processes are spawned from
// the sgp_publish binary (SGP_PUBLISH_BIN) and killed mid-shard via the
// proc.worker.exit fault point; the invariants under test:
//   1. Byte-identity is failure-proof: whatever workers die, the assembled
//      release equals the pinned golden file (and thus every other path).
//   2. Every lost lease is reclaimed — observable in the result counters
//      and the publish.leases_reclaimed metric — and the work is salvaged,
//      reassigned, or computed in-process; the run always completes.
//   3. The privacy ledger is charged exactly once per release no matter
//      how many workers died while producing it.
//   4. Degradation is total: unspawnable or always-dying workers reduce to
//      a correct single-process publish.
// The suite runs in the default ctest pass and under `ctest -L chaos`.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/distributed_publish.hpp"
#include "obs/aggregate.hpp"
#include "core/serialization.hpp"
#include "core/session.hpp"
#include "core/sharded_publish.hpp"
#include "graph/io.hpp"
#include "graph/shard_loader.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"
#include "util/json.hpp"

namespace sgp::core {
namespace {

const std::string kEdgesPath =
    std::string(SGP_GOLDEN_DIR) + "/graph_n24.edges";
const std::string kReleasePath =
    std::string(SGP_GOLDEN_DIR) + "/release_n24_m8.bin";
const std::string kPublishBin = SGP_PUBLISH_BIN;

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class DistributedChaosTest : public testing::Test {
 protected:
  void SetUp() override {
    util::disarm_all_faults();
    const std::string name =
        testing::UnitTest::GetInstance()->current_test_info()->name();
    // TempDir() may or may not end in a separator; go through
    // std::filesystem::path so the built paths compare equal to what
    // directory_iterator yields (a double slash would defeat cleanup and
    // leak lease/ledger files into the next run).
    const std::filesystem::path tmp(testing::TempDir());
    stem_ = "sgp_dist_" + name;
    out_path_ = (tmp / (stem_ + ".bin")).string();
    ledger_path_ = (tmp / (stem_ + ".ledger")).string();
    cleanup();
  }
  void TearDown() override {
    util::disarm_all_faults();
    cleanup();
  }
  void cleanup() {
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(
             testing::TempDir(), ec)) {
      if (entry.path().filename().string().rfind(stem_, 0) == 0) {
        std::filesystem::remove(entry.path(), ec);
      }
    }
  }

  /// The golden run's options (tests/integration/golden_release_test.cpp):
  /// 24 nodes, m=8, seed 4321 — sliced into 6 shards of 4 rows.
  static DistributedPublishOptions options(std::size_t workers) {
    DistributedPublishOptions opt;
    opt.sharded.publish.projection_dim = 8;
    opt.sharded.publish.seed = 4321;
    opt.sharded.shard_rows = 4;
    opt.sharded.threads = 2;
    opt.workers = workers;
    opt.worker_program = kPublishBin;
    opt.edges_path = kEdgesPath;
    opt.id_policy = graph::IdPolicy::kPreserve;
    opt.lease_timeout_seconds = 60.0;  // never trips in these tests
    opt.poll_interval_seconds = 0.005;
    return opt;
  }

  /// No stray protocol files may outlive a successful publish.
  void expect_no_side_files() const {
    EXPECT_FALSE(std::filesystem::exists(out_path_ + ".lease"));
    for (std::size_t s = 0; s < 8; ++s) {
      EXPECT_FALSE(std::filesystem::exists(out_path_ + ".shard." +
                                           std::to_string(s)));
    }
  }

  std::string stem_;
  std::string out_path_;
  std::string ledger_path_;
};

TEST_F(DistributedChaosTest, CleanRunIsByteIdenticalToGolden) {
  graph::EdgeListShardReader reader(kEdgesPath, graph::IdPolicy::kPreserve);
  const auto result =
      publish_distributed(reader, options(/*workers=*/2), out_path_);
  EXPECT_EQ(result.shards_total, 6u);
  EXPECT_EQ(result.workers_lost, 0u);
  EXPECT_EQ(result.leases_reclaimed, 0u);
  EXPECT_EQ(file_bytes(out_path_), file_bytes(kReleasePath));
  expect_no_side_files();
}

TEST_F(DistributedChaosTest, WorkerKilledAtShardBoundaryIsReclaimed) {
  graph::EdgeListShardReader reader(kEdgesPath, graph::IdPolicy::kPreserve);
  auto opt = options(/*workers=*/2);
  // Two proc.worker.exit hits per shard (loop top, post-payload): after=2
  // kills worker 0 at the top of its second shard — one shard delivered,
  // the rest of its lease reclaimed and reassigned to generation 1.
  opt.worker_env[0] = {{"SGP_FAULT_SPEC", "proc.worker.exit:after=2:count=1"}};
  const auto result = publish_distributed(reader, opt, out_path_);
  EXPECT_GE(result.workers_lost, 1u);
  EXPECT_GE(result.leases_reclaimed, 1u);
  EXPECT_GE(result.workers_spawned, 3u);  // 2 initial + >=1 replacement
  EXPECT_EQ(result.shards_inprocess, 0u);
  EXPECT_EQ(file_bytes(out_path_), file_bytes(kReleasePath))
      << "byte drift after mid-shard worker kill";
  expect_no_side_files();
}

TEST_F(DistributedChaosTest, PayloadCommittedBeforeDeathIsSalvaged) {
  graph::EdgeListShardReader reader(kEdgesPath, graph::IdPolicy::kPreserve);
  auto opt = options(/*workers=*/2);
  // after=1 fires between the payload rename and the done note: the shard's
  // bytes are already committed, so the coordinator must verify and salvage
  // them rather than recompute.
  opt.worker_env[0] = {{"SGP_FAULT_SPEC", "proc.worker.exit:after=1:count=1"}};
  const auto result = publish_distributed(reader, opt, out_path_);
  EXPECT_GE(result.workers_lost, 1u);
  EXPECT_GE(result.leases_reclaimed, 1u);
  EXPECT_EQ(file_bytes(out_path_), file_bytes(kReleasePath));
  expect_no_side_files();
}

TEST_F(DistributedChaosTest, EveryWorkerKilledStillCompletes) {
  graph::EdgeListShardReader reader(kEdgesPath, graph::IdPolicy::kPreserve);
  auto opt = options(/*workers=*/3);
  for (std::size_t w = 0; w < 3; ++w) {
    opt.worker_env[w] = {{"SGP_FAULT_SPEC", "proc.worker.exit"}};
  }
  const auto result = publish_distributed(reader, opt, out_path_);
  EXPECT_GE(result.workers_lost, 3u);
  EXPECT_GE(result.leases_reclaimed, 6u);  // every shard lost at least once
  EXPECT_EQ(file_bytes(out_path_), file_bytes(kReleasePath));
  expect_no_side_files();
}

TEST_F(DistributedChaosTest, UnspawnableWorkersDegradeToInProcess) {
  graph::EdgeListShardReader reader(kEdgesPath, graph::IdPolicy::kPreserve);
  auto opt = options(/*workers=*/2);
  opt.worker_program = "/no/such/binary/sgp_publish";
  opt.retry.max_attempts = 2;  // keep the 127-exit churn short
  opt.retry.initial_backoff_seconds = 0.001;
  const auto result = publish_distributed(reader, opt, out_path_);
  EXPECT_EQ(result.shards_inprocess, result.shards_total);
  EXPECT_EQ(file_bytes(out_path_), file_bytes(kReleasePath))
      << "in-process fallback must still produce the exact release";
  expect_no_side_files();
}

TEST_F(DistributedChaosTest, EmptyWorkerProgramRunsFullyInProcess) {
  graph::EdgeListShardReader reader(kEdgesPath, graph::IdPolicy::kPreserve);
  auto opt = options(/*workers=*/4);
  opt.worker_program.clear();
  const auto result = publish_distributed(reader, opt, out_path_);
  EXPECT_EQ(result.workers_spawned, 0u);
  EXPECT_EQ(result.shards_inprocess, result.shards_total);
  EXPECT_EQ(file_bytes(out_path_), file_bytes(kReleasePath));
  expect_no_side_files();
}

TEST_F(DistributedChaosTest, InterruptedAssemblyResumesFromLease) {
  graph::EdgeListShardReader reader(kEdgesPath, graph::IdPolicy::kPreserve);
  auto opt = options(/*workers=*/1);
  opt.worker_program.clear();  // deterministic: all shards in-process

  // Crash the coordinator during final assembly: every shard is computed
  // and lease-logged complete, then the first concatenation write dies.
  util::FaultConfig cfg;
  cfg.max_fires = 1;
  util::arm_fault("io.shard.write", cfg);
  EXPECT_THROW(publish_distributed(reader, opt, out_path_), util::IoError);
  util::disarm_all_faults();
  EXPECT_TRUE(std::filesystem::exists(out_path_ + ".lease"));

  // The rerun must trust the verified lease records: no recompute, no
  // worker spawns — just reassembly of the already-committed payloads.
  const auto result = publish_distributed(reader, opt, out_path_);
  EXPECT_EQ(result.shards_resumed, result.shards_total);
  EXPECT_EQ(result.shards_inprocess, 0u);
  EXPECT_EQ(result.workers_spawned, 0u);
  EXPECT_EQ(file_bytes(out_path_), file_bytes(kReleasePath));
  expect_no_side_files();
}

TEST_F(DistributedChaosTest, LedgerChargedExactlyOnceDespiteWorkerDeath) {
  graph::EdgeListShardReader reader(kEdgesPath, graph::IdPolicy::kPreserve);
  auto opt = options(/*workers=*/2);
  opt.worker_env[0] = {{"SGP_FAULT_SPEC", "proc.worker.exit:after=2:count=1"}};

  PublishingSession::Options sopt;
  sopt.publisher = opt.sharded.publish;
  sopt.total_budget = {10.0, 1e-5};
  {
    PublishingSession session(sopt, ledger_path_);
    opt.sharded.publish = session.begin_release();
    const auto result = publish_distributed(reader, opt, out_path_);
    EXPECT_GE(result.leases_reclaimed, 1u);
  }
  // Reload the ledger cold: exactly one charged release, regardless of how
  // many worker processes died while producing it.
  PublishingSession reloaded(sopt, ledger_path_);
  ASSERT_EQ(reloaded.num_releases(), 1u);

  // A session release mixes the release index into the seed, so the bytes
  // differ from the session-less golden by design; the invariant is that
  // the chaotic distributed run equals the deterministic in-memory release
  // for the SAME charged index.
  const graph::Graph g =
      graph::read_edge_list_file(kEdgesPath, graph::IdPolicy::kPreserve);
  std::ostringstream ref(std::ios::binary);
  publish_to_stream(g, reloaded.release_options(1), ref);
  EXPECT_EQ(file_bytes(out_path_), ref.str())
      << "distributed release drifted from the in-memory session release";
}

// The acceptance scenario end to end through the CLI: `--workers 4` with a
// fault spec that kills a worker mid-shard must exit 0, write the exact
// golden bytes, and report publish.leases_reclaimed >= 1 in --metrics-out.
TEST_F(DistributedChaosTest, CliWorkersSurviveChaosEndToEnd) {
  const std::string metrics_path = out_path_ + ".metrics.json";
  std::ostringstream cmd;
  cmd << kPublishBin << " --edges " << kEdgesPath << " --out " << out_path_
      << " --dim 8 --seed 4321 --preserve-ids --shard-rows 4"
      << " --workers 4 --worker-fault-spec proc.worker.exit:after=2:count=1"
      << " --metrics-out " << metrics_path << " 2>/dev/null";
  const int rc = std::system(cmd.str().c_str());
  ASSERT_EQ(rc, 0) << "sgp_publish --workers failed";

  EXPECT_EQ(file_bytes(out_path_), file_bytes(kReleasePath))
      << "CLI distributed release drifted from the golden bytes";

  const util::JsonValue report = util::parse_json(file_bytes(metrics_path));
  const util::JsonValue* counters = report.find("metrics");
  ASSERT_NE(counters, nullptr);
  counters = counters->find("counters");
  ASSERT_NE(counters, nullptr);
  const util::JsonValue* reclaimed = counters->find("publish.leases_reclaimed");
  ASSERT_NE(reclaimed, nullptr);
  EXPECT_GE(reclaimed->as_number(), 1.0);
  const util::JsonValue* shards = counters->find("publish.shards");
  ASSERT_NE(shards, nullptr);
  EXPECT_EQ(shards->as_number(), 6.0);
}

// The observability-plane acceptance scenario: a `--workers 4` CLI run with
// one worker SIGKILLed mid-shard must leave a merged "sgp-obs-report v2"
// whose counters equal a single-process run's totals (modulo retry/reclaim
// metrics), whose span tree holds every committed shard exactly once under
// the release trace id, and whose sgp_trace Chrome export passes the
// structural validator. Sidecars are consumed by the merge — no .obs.*
// files may survive a successful publish.
TEST_F(DistributedChaosTest, ObsPlaneSurvivesWorkerKillAndMerges) {
  const std::string merged_path = out_path_ + ".obs-merged.json";
  const std::string base_out = out_path_ + ".base.bin";
  const std::string base_metrics = out_path_ + ".base.json";
  const std::string chrome_path = out_path_ + ".chrome.json";

  std::ostringstream cmd;
  cmd << kPublishBin << " --edges " << kEdgesPath << " --out " << out_path_
      << " --dim 8 --seed 4321 --preserve-ids --shard-rows 4 --threads 2"
      << " --workers 4 --worker-fault-spec proc.worker.exit:after=2:count=1"
      << " --metrics-out " << merged_path << " 2>/dev/null";
  ASSERT_EQ(std::system(cmd.str().c_str()), 0);
  EXPECT_EQ(file_bytes(out_path_), file_bytes(kReleasePath));

  // The single-process baseline over the same shard plan: the work counters
  // (shards sliced, cells released) must agree exactly with the chaotic
  // distributed run — instrumentation sits on the shared compute path.
  std::ostringstream base_cmd;
  base_cmd << kPublishBin << " --edges " << kEdgesPath << " --out " << base_out
           << " --dim 8 --seed 4321 --preserve-ids --shard-rows 4"
           << " --metrics-out " << base_metrics << " 2>/dev/null";
  ASSERT_EQ(std::system(base_cmd.str().c_str()), 0);

  const util::JsonValue merged = util::parse_json(file_bytes(merged_path));
  const util::JsonValue base = util::parse_json(file_bytes(base_metrics));
  ASSERT_EQ(obs::validate_report_v2_json(merged), std::nullopt);
  EXPECT_EQ(merged.find("schema")->as_string(), "sgp-obs-report v2");
  const std::string trace_id = merged.find("trace_id")->as_string();
  EXPECT_EQ(trace_id.size(), 16u);

  const util::JsonValue* merged_counters =
      merged.find("metrics")->find("counters");
  const util::JsonValue* base_counters = base.find("metrics")->find("counters");
  ASSERT_NE(merged_counters, nullptr);
  ASSERT_NE(base_counters, nullptr);
  for (const std::string name : {"publish.shards", "publish.cells"}) {
    const util::JsonValue* m = merged_counters->find(name);
    const util::JsonValue* b = base_counters->find(name);
    ASSERT_NE(m, nullptr) << name;
    ASSERT_NE(b, nullptr) << name;
    EXPECT_EQ(m->as_number(), b->as_number())
        << name << " drifted between distributed and single-process runs";
  }
  EXPECT_EQ(merged_counters->find("publish.shards")->as_number(), 6.0);
  EXPECT_EQ(merged_counters->find("publish.cells")->as_number(), 192.0);
  const util::JsonValue* reclaimed =
      merged_counters->find("publish.leases_reclaimed");
  ASSERT_NE(reclaimed, nullptr);
  EXPECT_GE(reclaimed->as_number(), 1.0);

  // Every committed shard appears exactly once in the merged span tree.
  std::vector<std::string> shard_attrs;
  const std::function<void(const util::JsonValue&)> walk =
      [&](const util::JsonValue& span) {
        if (span.find("name")->as_string() == "publish.shard") {
          const util::JsonValue* attrs = span.find("attrs");
          const util::JsonValue* shard =
              attrs == nullptr ? nullptr : attrs->find("shard");
          ASSERT_NE(shard, nullptr);
          shard_attrs.push_back(shard->as_string());
        }
        const util::JsonValue* children = span.find("children");
        if (children != nullptr) {
          for (const util::JsonValue& child : children->as_array()) {
            walk(child);
          }
        }
      };
  for (const util::JsonValue& root : merged.find("spans")->as_array()) {
    walk(root);
  }
  std::sort(shard_attrs.begin(), shard_attrs.end());
  EXPECT_EQ(shard_attrs,
            (std::vector<std::string>{"0", "1", "2", "3", "4", "5"}));

  // The killed worker's sidecar ends at its last durable record, so the
  // merged stream must contain an unclean exit and the reclaim that
  // followed.
  bool saw_unclean_exit = false;
  bool saw_reclaim = false;
  for (const util::JsonValue& e : merged.find("events")->as_array()) {
    const std::string name = e.find("name")->as_string();
    if (name == "lease.reclaimed") saw_reclaim = true;
    if (name == "worker.exit") {
      const util::JsonValue* clean = e.find("fields")->find("clean");
      if (clean != nullptr && clean->as_string() == "0") {
        saw_unclean_exit = true;
      }
    }
  }
  EXPECT_TRUE(saw_unclean_exit);
  EXPECT_TRUE(saw_reclaim);

  // Sidecars were consumed by the successful merge. Only this test's own
  // files are checked — TempDir is shared with concurrently running suites.
  for (const auto& entry : std::filesystem::directory_iterator(
           std::filesystem::path(out_path_).parent_path())) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(stem_, 0) != 0) continue;
    EXPECT_EQ(name.find(".obs."), std::string::npos)
        << "leftover sidecar: " << entry.path();
  }

  // sgp_trace renders the report: Chrome export validates and the summary
  // names the reclaim gap.
  const std::string trace_bin = SGP_TRACE_BIN;
  std::ostringstream trace_cmd;
  trace_cmd << trace_bin << " --report " << merged_path << " --chrome "
            << chrome_path << " --summary > " << out_path_
            << ".summary.txt 2>/dev/null";
  ASSERT_EQ(std::system(trace_cmd.str().c_str()), 0);
  std::ostringstream validate_cmd;
  validate_cmd << trace_bin << " --validate-chrome " << chrome_path
               << " 2>/dev/null";
  EXPECT_EQ(std::system(validate_cmd.str().c_str()), 0);
  const std::string summary = file_bytes(out_path_ + ".summary.txt");
  EXPECT_NE(summary.find("trace " + trace_id), std::string::npos);
  EXPECT_NE(summary.find("reclaim"), std::string::npos);
  EXPECT_NE(summary.find("shard timeline"), std::string::npos);
}

// Same CLI scenario with a budget ledger attached: the release must be
// charged exactly once no matter how many workers died, and the bytes must
// equal the in-memory release for that charged index (a ledger-backed run
// mixes the release index into the seed, so the session-less golden does
// not apply).
TEST_F(DistributedChaosTest, CliLedgerChargedExactlyOnceUnderChaos) {
  std::ostringstream cmd;
  cmd << kPublishBin << " --edges " << kEdgesPath << " --out " << out_path_
      << " --dim 8 --seed 4321 --preserve-ids --shard-rows 4"
      << " --workers 4 --worker-fault-spec proc.worker.exit:after=2:count=1"
      << " --ledger " << ledger_path_ << " --budget-epsilon 10"
      << " 2>/dev/null";
  const int rc = std::system(cmd.str().c_str());
  ASSERT_EQ(rc, 0) << "sgp_publish --workers --ledger failed";

  PublishingSession::Options sopt;
  sopt.publisher.projection_dim = 8;
  sopt.publisher.seed = 4321;
  sopt.total_budget = {10.0, 1e-5};
  PublishingSession session(sopt, ledger_path_);
  ASSERT_EQ(session.num_releases(), 1u) << "budget charged more than once";

  const graph::Graph g =
      graph::read_edge_list_file(kEdgesPath, graph::IdPolicy::kPreserve);
  std::ostringstream ref(std::ios::binary);
  publish_to_stream(g, session.release_options(1), ref);
  EXPECT_EQ(file_bytes(out_path_), ref.str());
}

}  // namespace
}  // namespace sgp::core
