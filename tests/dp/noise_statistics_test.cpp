// Statistical guardrails on the mechanism's randomness: the perturbation
// stream must actually be N(0, σ²) and generated projection tiles must have
// the JL moments the privacy/utility proofs assume. These are the fast
// fixed-seed versions; tests/slow/statistical_deep_test.cpp re-runs them at
// 50× the sample size under the `slow` ctest configuration.
//
// Every test is deterministic (counter RNG + fixed seeds), so the hard-coded
// critical values cannot flake: a failure means the generated distribution
// itself changed — a silent privacy regression, the exact thing this suite
// exists to catch.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "core/projection.hpp"
#include "core/serialization.hpp"
#include "core/theory.hpp"
#include "graph/generators.hpp"
#include "random/counter_rng.hpp"
#include "random/rng.hpp"
#include "stat_utils.hpp"

namespace sgp::core {
namespace {

// KS bound: sqrt(n)·D_n has the Kolmogorov distribution under H0;
// P[sqrt(n)·D > 1.95] ≈ 0.001. The deterministic fixed-seed statistic sits
// far below; a stream regression pushes it far above.
constexpr double kKsCritical = 1.95;
// chi-square with 31 dof: P[X > 61.1] ≈ 0.001.
constexpr std::size_t kChiBins = 32;
constexpr double kChiCritical = 61.1;

TEST(NoiseStatistics, NoiseStreamIsStandardNormalAfterScaling) {
  const std::size_t n = 20000;
  const random::CounterRng noise = noise_counter_rng(/*seed=*/97);
  const NoiseCalibration cal = calibrate_noise(64, {1.0, 1e-6});
  std::vector<double> samples(n);
  for (std::size_t t = 0; t < n; ++t) {
    // What the publisher adds, rescaled by the σ it used.
    samples[t] = cal.sigma * noise.normal(t) / cal.sigma;
  }
  const double ks = test_stats::ks_statistic_normal(samples);
  EXPECT_LT(std::sqrt(static_cast<double>(n)) * ks, kKsCritical);
  EXPECT_LT(test_stats::chi_square_normal(samples, kChiBins), kChiCritical);

  const auto m = test_stats::moments(samples);
  EXPECT_NEAR(m.mean, 0.0, 0.02);
  EXPECT_NEAR(m.variance, 1.0, 0.05);
  EXPECT_NEAR(m.kurtosis, 3.0, 0.15);
}

TEST(NoiseStatistics, NoiseAndProjectionStreamsAreIndependent) {
  // Same counters, different stream ids: correlation must vanish.
  const std::size_t n = 20000;
  const random::CounterRng p = projection_counter_rng(/*seed=*/97);
  const random::CounterRng noise = noise_counter_rng(/*seed=*/97);
  double corr = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    corr += p.normal(t) * noise.normal(t);
  }
  corr /= static_cast<double>(n);
  // Var of the product mean is ~1/n; 4σ ≈ 0.028.
  EXPECT_NEAR(corr, 0.0, 0.03);
}

TEST(ProjectionStatistics, GaussianTileHasJlMoments) {
  // Entries of a Gaussian projection are N(0, 1/m): after scaling by
  // sqrt(m) they are standard normal.
  const std::size_t rows = 400, m = 50;
  const linalg::DenseMatrix p =
      make_projection_counter(rows, m, ProjectionKind::kGaussian, /*seed=*/7);
  std::vector<double> scaled;
  scaled.reserve(rows * m);
  const double root_m = std::sqrt(static_cast<double>(m));
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < m; ++j) scaled.push_back(p(i, j) * root_m);
  }
  const double ks = test_stats::ks_statistic_normal(scaled);
  EXPECT_LT(std::sqrt(static_cast<double>(scaled.size())) * ks, kKsCritical);

  const auto mom = test_stats::moments(scaled);
  EXPECT_NEAR(mom.mean, 0.0, 0.02);
  EXPECT_NEAR(mom.variance, 1.0, 0.05);
}

TEST(ProjectionStatistics, AchlioptasTileHasSparseSupportAndJlVariance) {
  const std::size_t rows = 400, m = 50;
  const linalg::DenseMatrix p = make_projection_counter(
      rows, m, ProjectionKind::kAchlioptas, /*seed=*/7);
  const double scale = std::sqrt(3.0 / static_cast<double>(m));
  std::size_t zero = 0, pos = 0, neg = 0;
  double second_moment = 0.0;
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const double v = p(i, j);
      second_moment += v * v;
      if (v == 0.0) {
        ++zero;
      } else if (v == scale) {
        ++pos;
      } else {
        ASSERT_EQ(v, -scale) << "entry outside the ±sqrt(3/m)/0 support";
        ++neg;
      }
    }
  }
  const double total = static_cast<double>(rows * m);
  // P(0) = 2/3, P(±scale) = 1/6 each; 4σ bands at 20k samples.
  EXPECT_NEAR(static_cast<double>(zero) / total, 2.0 / 3.0, 0.015);
  EXPECT_NEAR(static_cast<double>(pos) / total, 1.0 / 6.0, 0.012);
  EXPECT_NEAR(static_cast<double>(neg) / total, 1.0 / 6.0, 0.012);
  // E[v²] = 1/m, the JL normalization.
  EXPECT_NEAR(second_moment / total, 1.0 / static_cast<double>(m), 0.002);
}

TEST(PublishedResidualStatistics, ReleaseMinusProjectionIsCalibratedNoise) {
  // End-to-end: Ỹ − A·P, scaled by 1/σ, must be standard normal. This ties
  // the serialized release to the exact σ and noise stream it claims.
  random::Rng rng(11);
  const graph::Graph g = graph::erdos_renyi(120, 0.1, rng);
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 40;
  opt.seed = 77;

  std::ostringstream stream(std::ios::binary);
  publish_to_stream(g, opt, stream);
  std::istringstream in(stream.str(), std::ios::binary);
  const PublishedGraph pub = load_published(in);

  const linalg::DenseMatrix p = make_projection_counter(
      g.num_nodes(), opt.projection_dim, opt.projection, opt.seed);
  const linalg::DenseMatrix y = g.adjacency_matrix().multiply_dense(p);

  std::vector<double> residuals;
  residuals.reserve(g.num_nodes() * opt.projection_dim);
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    for (std::size_t j = 0; j < opt.projection_dim; ++j) {
      residuals.push_back((pub.data(i, j) - y(i, j)) / pub.calibration.sigma);
    }
  }
  const double ks = test_stats::ks_statistic_normal(residuals);
  EXPECT_LT(std::sqrt(static_cast<double>(residuals.size())) * ks,
            kKsCritical);
  EXPECT_LT(test_stats::chi_square_normal(residuals, kChiBins), kChiCritical);
}

}  // namespace
}  // namespace sgp::core
