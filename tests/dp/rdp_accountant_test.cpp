#include "dp/rdp_accountant.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace sgp::dp {
namespace {

TEST(RdpTest, EmptyAccountantIsZero) {
  RdpAccountant acc;
  const auto params = acc.to_dp(1e-6);
  EXPECT_DOUBLE_EQ(params.epsilon, 0.0);
  EXPECT_EQ(acc.num_releases(), 0u);
}

TEST(RdpTest, SingleGaussianMatchesHandComputation) {
  // With orders {2}, one Gaussian at multiplier 1: eps_2 = 2 * 1/2 = 1;
  // to_dp: 1 + ln(1/δ)/(2−1).
  RdpAccountant acc({2.0});
  acc.record_gaussian(1.0);
  const double delta = 1e-6;
  EXPECT_NEAR(acc.to_dp(delta).epsilon, 1.0 + std::log(1.0 / delta), 1e-12);
}

TEST(RdpTest, OptimizesOverOrderGrid) {
  // With a rich grid the conversion must be no worse than any single order.
  RdpAccountant rich;
  RdpAccountant coarse({2.0});
  rich.record_gaussian(2.0);
  coarse.record_gaussian(2.0);
  EXPECT_LE(rich.to_dp(1e-6).epsilon, coarse.to_dp(1e-6).epsilon + 1e-12);
}

TEST(RdpTest, CompositionIsAdditivePerOrder) {
  RdpAccountant once({4.0});
  RdpAccountant tenTimes({4.0});
  once.record_gaussian(1.5);
  for (int i = 0; i < 10; ++i) tenTimes.record_gaussian(1.5);
  // eps_alpha scales by 10; conversion adds the same log term.
  const double delta = 1e-5;
  const double log_term = std::log(1.0 / delta) / 3.0;
  const double eps1 = once.to_dp(delta).epsilon - log_term;
  const double eps10 = tenTimes.to_dp(delta).epsilon - log_term;
  EXPECT_NEAR(eps10, 10.0 * eps1, 1e-9);
}

TEST(RdpTest, BeatsBasicCompositionForManyReleases) {
  // 100 Gaussian releases at multiplier 5 (each ~(0.7, 1e-6)-DP classically).
  RdpAccountant acc;
  for (int i = 0; i < 100; ++i) acc.record_gaussian(5.0);
  const auto total = acc.to_dp(1e-5);
  // Basic composition of 100 × 0.7 would be ε = 70; RDP gives ~ sqrt scale.
  EXPECT_LT(total.epsilon, 20.0);
  EXPECT_GT(total.epsilon, 0.0);
}

TEST(RdpTest, MoreNoiseLessEpsilon) {
  RdpAccountant noisy;
  RdpAccountant quiet;
  noisy.record_gaussian(10.0);
  quiet.record_gaussian(1.0);
  EXPECT_LT(noisy.to_dp(1e-6).epsilon, quiet.to_dp(1e-6).epsilon);
}

TEST(RdpTest, RecordCustomCurve) {
  RdpAccountant acc({2.0, 4.0});
  acc.record_rdp({0.5, 1.5});
  acc.record_rdp({0.5, 1.5});
  const double delta = 1e-3;
  const double via2 = 1.0 + std::log(1.0 / delta) / 1.0;
  const double via4 = 3.0 + std::log(1.0 / delta) / 3.0;
  EXPECT_NEAR(acc.to_dp(delta).epsilon, std::min(via2, via4), 1e-12);
}

TEST(RdpTest, ResetClears) {
  RdpAccountant acc;
  acc.record_gaussian(1.0);
  acc.reset();
  EXPECT_EQ(acc.num_releases(), 0u);
  EXPECT_DOUBLE_EQ(acc.to_dp(1e-6).epsilon, 0.0);
}

TEST(RdpTest, InvalidArgumentsThrow) {
  EXPECT_THROW(RdpAccountant({1.0}), std::invalid_argument);
  EXPECT_THROW(RdpAccountant(std::vector<double>{}), std::invalid_argument);
  RdpAccountant acc({2.0});
  EXPECT_THROW(acc.record_gaussian(0.0), std::invalid_argument);
  EXPECT_THROW(acc.record_rdp({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(acc.record_rdp({-1.0}), std::invalid_argument);
  EXPECT_THROW((void)acc.to_dp(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace sgp::dp
