#include "dp/rdp_accountant.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace sgp::dp {
namespace {

TEST(RdpTest, EmptyAccountantIsZero) {
  RdpAccountant acc;
  const auto params = acc.to_dp(1e-6);
  EXPECT_DOUBLE_EQ(params.epsilon, 0.0);
  EXPECT_EQ(acc.num_releases(), 0u);
}

TEST(RdpTest, SingleGaussianMatchesHandComputation) {
  // With orders {2}, one Gaussian at multiplier 1: eps_2 = 2 * 1/2 = 1;
  // to_dp: 1 + ln(1/δ)/(2−1).
  RdpAccountant acc({2.0});
  acc.record_gaussian(1.0);
  const double delta = 1e-6;
  EXPECT_NEAR(acc.to_dp(delta).epsilon, 1.0 + std::log(1.0 / delta), 1e-12);
}

TEST(RdpTest, OptimizesOverOrderGrid) {
  // With a rich grid the conversion must be no worse than any single order.
  RdpAccountant rich;
  RdpAccountant coarse({2.0});
  rich.record_gaussian(2.0);
  coarse.record_gaussian(2.0);
  EXPECT_LE(rich.to_dp(1e-6).epsilon, coarse.to_dp(1e-6).epsilon + 1e-12);
}

TEST(RdpTest, CompositionIsAdditivePerOrder) {
  RdpAccountant once({4.0});
  RdpAccountant tenTimes({4.0});
  once.record_gaussian(1.5);
  for (int i = 0; i < 10; ++i) tenTimes.record_gaussian(1.5);
  // eps_alpha scales by 10; conversion adds the same log term.
  const double delta = 1e-5;
  const double log_term = std::log(1.0 / delta) / 3.0;
  const double eps1 = once.to_dp(delta).epsilon - log_term;
  const double eps10 = tenTimes.to_dp(delta).epsilon - log_term;
  EXPECT_NEAR(eps10, 10.0 * eps1, 1e-9);
}

TEST(RdpTest, BeatsBasicCompositionForManyReleases) {
  // 100 Gaussian releases at multiplier 5 (each ~(0.7, 1e-6)-DP classically).
  RdpAccountant acc;
  for (int i = 0; i < 100; ++i) acc.record_gaussian(5.0);
  const auto total = acc.to_dp(1e-5);
  // Basic composition of 100 × 0.7 would be ε = 70; RDP gives ~ sqrt scale.
  EXPECT_LT(total.epsilon, 20.0);
  EXPECT_GT(total.epsilon, 0.0);
}

TEST(RdpTest, MoreNoiseLessEpsilon) {
  RdpAccountant noisy;
  RdpAccountant quiet;
  noisy.record_gaussian(10.0);
  quiet.record_gaussian(1.0);
  EXPECT_LT(noisy.to_dp(1e-6).epsilon, quiet.to_dp(1e-6).epsilon);
}

TEST(RdpTest, RecordCustomCurve) {
  RdpAccountant acc({2.0, 4.0});
  acc.record_rdp({0.5, 1.5});
  acc.record_rdp({0.5, 1.5});
  const double delta = 1e-3;
  const double via2 = 1.0 + std::log(1.0 / delta) / 1.0;
  const double via4 = 3.0 + std::log(1.0 / delta) / 3.0;
  EXPECT_NEAR(acc.to_dp(delta).epsilon, std::min(via2, via4), 1e-12);
}

TEST(RdpTest, ResetClears) {
  RdpAccountant acc;
  acc.record_gaussian(1.0);
  acc.reset();
  EXPECT_EQ(acc.num_releases(), 0u);
  EXPECT_DOUBLE_EQ(acc.to_dp(1e-6).epsilon, 0.0);
}

TEST(RdpTest, InvalidArgumentsThrow) {
  EXPECT_THROW(RdpAccountant({1.0}), std::invalid_argument);
  EXPECT_THROW(RdpAccountant(std::vector<double>{}), std::invalid_argument);
  RdpAccountant acc({2.0});
  EXPECT_THROW(acc.record_gaussian(0.0), std::invalid_argument);
  EXPECT_THROW(acc.record_laplace(0.0), std::invalid_argument);
  EXPECT_THROW(acc.record_pure(0.0), std::invalid_argument);
  EXPECT_THROW(acc.record_rdp({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(acc.record_rdp({-1.0}), std::invalid_argument);
  EXPECT_THROW((void)acc.to_dp(0.0), std::invalid_argument);
}

TEST(RdpTest, LaplaceCurveIsBoundedByPureEpsilon) {
  // A Laplace release at scale λ (noise multiplier λ for sensitivity 1) is
  // 1/λ-pure-DP; its RDP curve must convert to something no worse, and the
  // α→∞ tail approaches 1/λ.
  const double lambda = 0.5;  // 2-pure-DP
  RdpAccountant laplace;
  laplace.record_laplace(lambda);
  RdpAccountant pure;
  pure.record_pure(1.0 / lambda);
  EXPECT_LE(laplace.to_dp(1e-6).epsilon, pure.to_dp(1e-6).epsilon);
  EXPECT_EQ(laplace.num_releases(), 1u);
}

TEST(RdpTest, LaplaceCompositionIsSubadditive) {
  // Two Laplace phases at scales 1/ε₁ and 1/ε₂ compose to at most ε₁+ε₂
  // (the pure-DP sequential bound) — the accounting identity the community
  // mechanisms rely on when they record both phases of a split budget.
  const double eps1 = 0.75, eps2 = 0.25;
  RdpAccountant acc;
  acc.record_laplace(1.0 / eps1);
  acc.record_laplace(1.0 / eps2);
  EXPECT_EQ(acc.num_releases(), 2u);
  // Pure-DP conversion at any δ can exceed ε₁+ε₂ by the δ-dependent term,
  // but the RDP curve itself stays below the pure sum at every order.
  RdpAccountant pure;
  pure.record_pure(eps1 + eps2);
  EXPECT_LE(acc.to_dp(1e-6).epsilon, pure.to_dp(1e-6).epsilon);
}

TEST(RdpTest, PureReleaseConvertsBelowEpsilonPlusTail) {
  // record_pure adds ε to every order; to_dp picks the best order, so the
  // result is ε plus the smallest ln(1/δ)/(α−1) tail on the grid.
  RdpAccountant acc;
  acc.record_pure(2.0);
  const double delta = 1e-6;
  const double eps = acc.to_dp(delta).epsilon;
  EXPECT_GE(eps, 2.0);
  EXPECT_LE(eps, 2.0 + std::log(1.0 / delta) / 511.0);  // best default order
}

}  // namespace
}  // namespace sgp::dp
