#include "dp/accountant.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace sgp::dp {
namespace {

TEST(AccountantTest, EmptyBudgetIsZero) {
  PrivacyAccountant acc;
  EXPECT_EQ(acc.num_releases(), 0u);
  const auto total = acc.basic_composition();
  EXPECT_DOUBLE_EQ(total.epsilon, 0.0);
  EXPECT_DOUBLE_EQ(total.delta, 0.0);
}

TEST(AccountantTest, BasicCompositionAdds) {
  PrivacyAccountant acc;
  acc.record({0.5, 1e-6});
  acc.record({0.3, 2e-6});
  const auto total = acc.basic_composition();
  EXPECT_NEAR(total.epsilon, 0.8, 1e-12);
  EXPECT_NEAR(total.delta, 3e-6, 1e-18);
  EXPECT_EQ(acc.num_releases(), 2u);
}

TEST(AccountantTest, RecordValidates) {
  PrivacyAccountant acc;
  EXPECT_THROW(acc.record({0.0, 1e-6}), std::invalid_argument);
  EXPECT_THROW(acc.record({1.0, 1.0}), std::invalid_argument);
  EXPECT_NO_THROW(acc.record({1.0, 0.0}));  // pure DP event is fine
}

TEST(AccountantTest, AdvancedCompositionFormula) {
  PrivacyAccountant acc;
  const double eps = 0.1;
  const int k = 100;
  for (int i = 0; i < k; ++i) acc.record({eps, 1e-7});
  const double slack = 1e-5;
  const auto adv = acc.advanced_composition(slack);
  const double expect =
      std::sqrt(2.0 * k * std::log(1.0 / slack)) * eps +
      k * eps * (std::exp(eps) - 1.0);
  EXPECT_NEAR(adv.epsilon, expect, 1e-9);
  EXPECT_NEAR(adv.delta, k * 1e-7 + slack, 1e-12);
}

TEST(AccountantTest, AdvancedBeatsBasicForManySmallReleases) {
  PrivacyAccountant acc;
  for (int i = 0; i < 200; ++i) acc.record({0.05, 1e-8});
  const auto basic = acc.basic_composition();
  const auto adv = acc.advanced_composition(1e-5);
  EXPECT_LT(adv.epsilon, basic.epsilon);
}

TEST(AccountantTest, BasicBeatsAdvancedForFewReleases) {
  PrivacyAccountant acc;
  acc.record({1.0, 1e-6});
  const auto best = acc.best_composition(1e-6);
  EXPECT_NEAR(best.epsilon, 1.0, 1e-12);
}

TEST(AccountantTest, BestPicksSmallerEpsilon) {
  PrivacyAccountant acc;
  for (int i = 0; i < 500; ++i) acc.record({0.01, 0.0});
  const auto best = acc.best_composition(1e-6);
  const auto basic = acc.basic_composition();
  const auto adv = acc.advanced_composition(1e-6);
  EXPECT_DOUBLE_EQ(best.epsilon, std::min(basic.epsilon, adv.epsilon));
}

TEST(AccountantTest, InvalidSlackThrows) {
  PrivacyAccountant acc;
  acc.record({0.1, 0.0});
  EXPECT_THROW((void)acc.advanced_composition(0.0), std::invalid_argument);
  EXPECT_THROW((void)acc.advanced_composition(1.0), std::invalid_argument);
}

TEST(AccountantTest, ResetClears) {
  PrivacyAccountant acc;
  acc.record({1.0, 1e-6});
  acc.reset();
  EXPECT_EQ(acc.num_releases(), 0u);
  EXPECT_DOUBLE_EQ(acc.basic_composition().epsilon, 0.0);
}

}  // namespace
}  // namespace sgp::dp
