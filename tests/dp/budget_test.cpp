#include "dp/budget.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sgp::dp {
namespace {

TEST(BudgetSplitTest, PartsSumExactlyToTheTotal) {
  const PrivacyParams total{2.0, 1e-6};
  const BudgetSplit split = split_budget(total, 0.75);
  EXPECT_DOUBLE_EQ(split.partition.epsilon, 1.5);
  EXPECT_DOUBLE_EQ(split.counts.epsilon, 0.5);
  EXPECT_DOUBLE_EQ(split.partition.epsilon + split.counts.epsilon,
                   total.epsilon);
  EXPECT_DOUBLE_EQ(split.partition.delta + split.counts.delta, total.delta);
}

TEST(BudgetSplitTest, BothPartsAreValidBudgets) {
  const BudgetSplit split = split_budget({1.0, 1e-6}, 0.5);
  split.partition.validate();
  split.counts.validate();
}

TEST(BudgetSplitTest, RejectsDegenerateShares) {
  const PrivacyParams total{1.0, 1e-6};
  EXPECT_THROW(split_budget(total, 0.0), std::invalid_argument);
  EXPECT_THROW(split_budget(total, 1.0), std::invalid_argument);
  EXPECT_THROW(split_budget(total, -0.5), std::invalid_argument);
  EXPECT_THROW(split_budget({-1.0, 1e-6}, 0.5), std::invalid_argument);
}

TEST(DeltaSplitTest, PartsSumExactlyToTheTotal) {
  const DeltaSplit split = split_delta(1e-5, 0.5);
  EXPECT_DOUBLE_EQ(split.first, 5e-6);
  EXPECT_DOUBLE_EQ(split.first + split.second, 1e-5);
  EXPECT_GT(split.second, 0.0);
}

TEST(DeltaSplitTest, RejectsDegenerateArguments) {
  EXPECT_THROW(split_delta(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(split_delta(1e-6, 0.0), std::invalid_argument);
  EXPECT_THROW(split_delta(1e-6, 1.0), std::invalid_argument);
}

TEST(NodeLevelEpsilonTest, GroupPrivacyDividesByTheDegreeCap) {
  EXPECT_DOUBLE_EQ(node_level_edge_epsilon(4.0, 16), 0.25);
  EXPECT_DOUBLE_EQ(node_level_edge_epsilon(1.0, 1), 1.0);
  EXPECT_THROW(node_level_edge_epsilon(0.0, 16), std::invalid_argument);
  EXPECT_THROW(node_level_edge_epsilon(1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace sgp::dp
