// Shared statistics helpers for the DP noise test layer: goodness-of-fit
// machinery (Kolmogorov–Smirnov, chi-square against equiprobable bins) and
// empirical moments. Header-only and deterministic — the tests feed them
// fixed-seed samples, so every statistic is a constant of the build and the
// fixed critical values below cannot flake. A real RNG-stream regression
// (wrong stream id, wrong counter layout, wrong Box–Muller pairing) moves
// these statistics by orders of magnitude, not fractions of a sigma.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace sgp::test_stats {

/// Φ(x), the standard normal CDF.
inline double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

/// Kolmogorov–Smirnov statistic D_n = sup |F_emp − Φ| of `samples` against
/// the standard normal. Sorts a copy; O(n log n).
inline double ks_statistic_normal(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double cdf = normal_cdf(samples[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, cdf - lo, hi - cdf});
  }
  return d;
}

/// Chi-square statistic of `samples` against N(0, 1) using `bins`
/// equiprobable cells (probability integral transform: Φ(x) uniform on
/// [0, 1] under H0). Degrees of freedom = bins − 1.
inline double chi_square_normal(const std::vector<double>& samples,
                                std::size_t bins) {
  std::vector<std::size_t> counts(bins, 0);
  for (const double x : samples) {
    const double u = normal_cdf(x);
    auto bin = static_cast<std::size_t>(u * static_cast<double>(bins));
    counts[std::min(bin, bins - 1)]++;
  }
  const double expected =
      static_cast<double>(samples.size()) / static_cast<double>(bins);
  double stat = 0.0;
  for (const std::size_t c : counts) {
    const double diff = static_cast<double>(c) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

struct Moments {
  double mean = 0.0;
  double variance = 0.0;  ///< population variance (divide by n)
  double kurtosis = 0.0;  ///< standardized fourth moment (3 for a Gaussian)
};

inline Moments moments(const std::vector<double>& samples) {
  Moments m;
  const double n = static_cast<double>(samples.size());
  for (const double x : samples) m.mean += x;
  m.mean /= n;
  double m4 = 0.0;
  for (const double x : samples) {
    const double d = x - m.mean;
    m.variance += d * d;
    m4 += d * d * d * d;
  }
  m.variance /= n;
  m4 /= n;
  m.kurtosis = m.variance > 0.0 ? m4 / (m.variance * m.variance) : 0.0;
  return m;
}

}  // namespace sgp::test_stats
