#include "dp/postprocess.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "random/distributions.hpp"
#include "random/rng.hpp"

namespace sgp::dp {
namespace {

bool non_decreasing(const std::vector<double>& v) {
  return std::is_sorted(v.begin(), v.end());
}

TEST(IsotonicTest, AlreadyMonotoneUnchanged) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_EQ(isotonic_non_decreasing(v), v);
}

TEST(IsotonicTest, SimpleViolatorPooled) {
  // {3, 1} → both become their mean 2.
  const auto fitted = isotonic_non_decreasing({3, 1});
  EXPECT_DOUBLE_EQ(fitted[0], 2.0);
  EXPECT_DOUBLE_EQ(fitted[1], 2.0);
}

TEST(IsotonicTest, KnownExample) {
  // Classic PAVA example: {1, 3, 2, 4} → {1, 2.5, 2.5, 4}.
  const auto fitted = isotonic_non_decreasing({1, 3, 2, 4});
  EXPECT_DOUBLE_EQ(fitted[0], 1.0);
  EXPECT_DOUBLE_EQ(fitted[1], 2.5);
  EXPECT_DOUBLE_EQ(fitted[2], 2.5);
  EXPECT_DOUBLE_EQ(fitted[3], 4.0);
}

TEST(IsotonicTest, OutputAlwaysMonotone) {
  random::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> v(50);
    for (double& x : v) x = random::normal(rng);
    EXPECT_TRUE(non_decreasing(isotonic_non_decreasing(v))) << trial;
  }
}

TEST(IsotonicTest, PreservesMean) {
  // The L2 projection onto the monotone cone preserves the total sum.
  random::Rng rng(2);
  std::vector<double> v(40);
  for (double& x : v) x = random::normal(rng, 0, 3);
  const auto fitted = isotonic_non_decreasing(v);
  EXPECT_NEAR(std::accumulate(v.begin(), v.end(), 0.0),
              std::accumulate(fitted.begin(), fitted.end(), 0.0), 1e-9);
}

TEST(IsotonicTest, ReducesL2ErrorTowardMonotoneTruth) {
  // Truth is monotone; noisy observations; PAVA must not increase error.
  random::Rng rng(3);
  std::vector<double> truth(100);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    truth[i] = static_cast<double>(i) * 0.5;
  }
  std::vector<double> noisy = truth;
  for (double& x : noisy) x += random::laplace(rng, 0.0, 4.0);
  const auto fitted = isotonic_non_decreasing(noisy);
  double err_noisy = 0, err_fitted = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    err_noisy += (noisy[i] - truth[i]) * (noisy[i] - truth[i]);
    err_fitted += (fitted[i] - truth[i]) * (fitted[i] - truth[i]);
  }
  EXPECT_LE(err_fitted, err_noisy);
}

TEST(IsotonicTest, NonIncreasingMirror) {
  const auto fitted = isotonic_non_increasing({1, 3, 2, 0});
  EXPECT_TRUE(std::is_sorted(fitted.begin(), fitted.end(),
                             std::less<double>()) == false ||
              fitted.front() == fitted.back());
  // Exact expectation: {2, 2, 2, 0}.
  EXPECT_DOUBLE_EQ(fitted[0], 2.0);
  EXPECT_DOUBLE_EQ(fitted[1], 2.0);
  EXPECT_DOUBLE_EQ(fitted[2], 2.0);
  EXPECT_DOUBLE_EQ(fitted[3], 0.0);
}

TEST(IsotonicTest, EmptyAndSingleton) {
  EXPECT_TRUE(isotonic_non_decreasing({}).empty());
  EXPECT_EQ(isotonic_non_decreasing({5.0}), (std::vector<double>{5.0}));
}

TEST(ClampRangeTest, Clamps) {
  const auto out = clamp_range({-1, 0.5, 2}, 0.0, 1.0);
  EXPECT_EQ(out, (std::vector<double>{0.0, 0.5, 1.0}));
  EXPECT_THROW(clamp_range({1.0}, 2.0, 1.0), std::invalid_argument);
}

TEST(ToDegreeSequenceTest, RoundsAndFixesParity) {
  // Sum of rounded = 1+2+2 = 5 (odd) → last element adjusted down.
  const auto degrees = to_degree_sequence({1.2, 2.4, 1.8}, 10);
  std::size_t total = 0;
  for (auto d : degrees) total += d;
  EXPECT_EQ(total % 2, 0u);
  EXPECT_EQ(degrees[0], 1u);
  EXPECT_EQ(degrees[1], 2u);
}

TEST(ToDegreeSequenceTest, ClampsToMaxDegree) {
  const auto degrees = to_degree_sequence({100.0, -5.0}, 8);
  EXPECT_EQ(degrees[0], 8u);
  EXPECT_EQ(degrees[1], 0u);
}

}  // namespace
}  // namespace sgp::dp
