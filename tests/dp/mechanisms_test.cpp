#include "dp/mechanisms.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace sgp::dp {
namespace {

TEST(PrivacyParamsTest, ValidationRules) {
  EXPECT_NO_THROW((PrivacyParams{1.0, 1e-6}).validate());
  EXPECT_THROW((PrivacyParams{0.0, 1e-6}).validate(), std::invalid_argument);
  EXPECT_THROW((PrivacyParams{-1.0, 1e-6}).validate(), std::invalid_argument);
  EXPECT_THROW((PrivacyParams{1.0, 0.0}).validate(), std::invalid_argument);
  EXPECT_THROW((PrivacyParams{1.0, 1.0}).validate(), std::invalid_argument);
  EXPECT_NO_THROW((PrivacyParams{1.0, 0.0}).validate_pure());
  EXPECT_THROW((PrivacyParams{1.0, 0.5}).validate_pure(),
               std::invalid_argument);
}

TEST(PrivacyParamsTest, ToStringMentionsBoth) {
  const auto s = PrivacyParams{0.5, 1e-5}.to_string();
  EXPECT_NE(s.find("0.5"), std::string::npos);
  EXPECT_NE(s.find("1e-05"), std::string::npos);
}

TEST(GaussianSigmaTest, ClassicFormula) {
  const PrivacyParams p{1.0, 1e-5};
  const double expect = std::sqrt(2.0 * std::log(1.25 / 1e-5));
  EXPECT_NEAR(gaussian_sigma(1.0, p), expect, 1e-12);
  // Scales linearly with sensitivity, inversely with epsilon.
  EXPECT_NEAR(gaussian_sigma(2.0, p), 2.0 * expect, 1e-12);
  EXPECT_NEAR(gaussian_sigma(1.0, {0.5, 1e-5}), 2.0 * expect, 1e-12);
}

TEST(GaussianSigmaTest, InvalidArgsThrow) {
  EXPECT_THROW(gaussian_sigma(0.0, {1.0, 1e-5}), std::invalid_argument);
  EXPECT_THROW(gaussian_sigma(1.0, {0.0, 1e-5}), std::invalid_argument);
}

TEST(AnalyticGaussianTest, NeverLooserThanClassic) {
  for (double eps : {0.1, 0.5, 1.0}) {
    const PrivacyParams p{eps, 1e-6};
    EXPECT_LE(analytic_gaussian_sigma(1.0, p), gaussian_sigma(1.0, p) + 1e-9)
        << "eps=" << eps;
  }
}

TEST(AnalyticGaussianTest, ExactConditionHoldsAcrossEpsilonRange) {
  // The classic calibration is only certified for ε < 1 (it under-noises for
  // large ε); the analytic σ must satisfy the exact Gaussian-mechanism DP
  // condition at every ε, sitting exactly on the boundary.
  auto phi = [](double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); };
  for (double eps : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    const PrivacyParams p{eps, 1e-6};
    const double sigma = analytic_gaussian_sigma(1.0, p);
    auto delta_of = [&](double s) {
      const double a = 1.0 / (2.0 * s);
      const double b = eps * s;
      return phi(a - b) - std::exp(eps) * phi(-a - b);
    };
    EXPECT_LE(delta_of(sigma), p.delta * (1.0 + 1e-6)) << "eps=" << eps;
    EXPECT_GE(delta_of(0.98 * sigma), p.delta) << "eps=" << eps;
  }
}

TEST(AnalyticGaussianTest, MonotoneInEpsilonAndDelta) {
  const double s1 = analytic_gaussian_sigma(1.0, {0.5, 1e-6});
  const double s2 = analytic_gaussian_sigma(1.0, {1.0, 1e-6});
  const double s3 = analytic_gaussian_sigma(1.0, {1.0, 1e-4});
  EXPECT_GT(s1, s2);  // smaller ε → more noise
  EXPECT_GT(s2, s3);  // smaller δ → more noise
}

TEST(AnalyticGaussianTest, SatisfiesPrivacyConditionTightly) {
  // At the returned σ the exact δ(σ) should be ≤ δ but close to it.
  const PrivacyParams p{1.0, 1e-5};
  const double sigma = analytic_gaussian_sigma(1.0, p);
  auto phi = [](double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); };
  auto delta_of = [&](double s) {
    const double a = 1.0 / (2.0 * s);
    const double b = p.epsilon * s;
    return phi(a - b) - std::exp(p.epsilon) * phi(-a - b);
  };
  EXPECT_LE(delta_of(sigma), p.delta * (1.0 + 1e-6));
  EXPECT_GE(delta_of(sigma * 0.99), p.delta);  // 1% less noise would violate
}

TEST(LaplaceScaleTest, Formula) {
  EXPECT_DOUBLE_EQ(laplace_scale(2.0, 0.5), 4.0);
  EXPECT_THROW(laplace_scale(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(laplace_scale(0.0, 1.0), std::invalid_argument);
}

TEST(AddNoiseTest, GaussianMomentsMatch) {
  random::Rng rng(1);
  std::vector<double> values(200000, 5.0);
  add_gaussian_noise(values, 2.0, rng);
  double sum = 0, sum2 = 0;
  for (double v : values) {
    sum += v;
    sum2 += v * v;
  }
  const double count = static_cast<double>(values.size());
  const double mean = sum / count;
  const double var = sum2 / count - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(AddNoiseTest, LaplaceMomentsMatch) {
  random::Rng rng(2);
  std::vector<double> values(200000, -1.0);
  add_laplace_noise(values, 1.5, rng);
  double sum = 0, sum2 = 0;
  for (double v : values) {
    sum += v;
    sum2 += v * v;
  }
  const double count = static_cast<double>(values.size());
  const double mean = sum / count;
  const double var = sum2 / count - mean * mean;
  EXPECT_NEAR(mean, -1.0, 0.05);
  EXPECT_NEAR(var, 2.0 * 1.5 * 1.5, 0.15);
}

TEST(AddNoiseTest, ZeroSigmaIsIdentity) {
  random::Rng rng(3);
  std::vector<double> values{1, 2, 3};
  add_gaussian_noise(values, 0.0, rng);
  EXPECT_EQ(values, (std::vector<double>{1, 2, 3}));
  add_laplace_noise(values, 0.0, rng);
  EXPECT_EQ(values, (std::vector<double>{1, 2, 3}));
}

TEST(AddNoiseTest, NegativeScaleThrows) {
  random::Rng rng(4);
  std::vector<double> values{1.0};
  EXPECT_THROW(add_gaussian_noise(values, -1.0, rng), std::invalid_argument);
  EXPECT_THROW(add_laplace_noise(values, -1.0, rng), std::invalid_argument);
}

TEST(RandomizedResponseTest, KeepProbability) {
  EXPECT_NEAR(randomized_response_keep_probability(std::log(3.0)), 0.75,
              1e-12);
  EXPECT_GT(randomized_response_keep_probability(10.0), 0.9999);
}

TEST(RandomizedResponseTest, EmpiricalKeepRate) {
  random::Rng rng(5);
  const double eps = 1.0;
  const double keep = randomized_response_keep_probability(eps);
  int kept = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (randomized_response(true, eps, rng)) ++kept;
  }
  EXPECT_NEAR(kept / static_cast<double>(n), keep, 0.01);
}

TEST(RandomizedResponseTest, InvalidEpsilonThrows) {
  random::Rng rng(6);
  EXPECT_THROW(randomized_response(true, 0.0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace sgp::dp
