// Invariants of the canonical metric-name registry (src/obs/
// metric_names.hpp) and its drift check against docs/observability.md —
// the two consumers the sgp-lint R3 rule keeps honest.
#include "obs/metric_names.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace sgp::obs::names {
namespace {

bool well_formed(std::string_view name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  bool prev_dot = false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.';
    if (!ok) return false;
    if (c == '.' && prev_dot) return false;  // no empty segments
    prev_dot = (c == '.');
  }
  return name.front() >= 'a' && name.front() <= 'z';
}

TEST(MetricNamesTest, AllNamesSortedAndUnique) {
  for (std::size_t i = 1; i < std::size(kAllNames); ++i) {
    EXPECT_LT(kAllNames[i - 1], kAllNames[i])
        << "kAllNames must stay strictly sorted: " << kAllNames[i - 1]
        << " vs " << kAllNames[i];
  }
}

TEST(MetricNamesTest, NamesFollowNamingRules) {
  // docs/observability.md: lowercase dotted "subsystem.noun[.verb]".
  // Bare subsystem names (e.g. "publish", "kmeans") are legal span bases.
  for (std::string_view name : kAllNames) {
    EXPECT_TRUE(well_formed(name)) << name;
  }
}

TEST(MetricNamesTest, EveryRegisteredNameIsCanonical) {
  for (std::string_view name : kAllNames) {
    EXPECT_TRUE(is_canonical_name(name)) << name;
  }
}

TEST(MetricNamesTest, DerivedTimerHistogramsAreCanonical) {
  // ScopedTimer(kX) records into "<kX>.seconds" automatically.
  EXPECT_TRUE(is_canonical_name("publish.project.seconds"));
  EXPECT_TRUE(is_canonical_name("tool.publish.seconds"));
  EXPECT_TRUE(is_canonical_name(std::string(kPublish) + ".seconds"));
}

TEST(MetricNamesTest, UnknownNamesAreNotCanonical) {
  EXPECT_FALSE(is_canonical_name("publish.typo"));
  EXPECT_FALSE(is_canonical_name("publish.typo.seconds"));
  EXPECT_FALSE(is_canonical_name(".seconds"));
  EXPECT_FALSE(is_canonical_name(""));
}

TEST(MetricNamesTest, SpotCheckConstantValues) {
  EXPECT_EQ(kPublish, "publish");
  EXPECT_EQ(kPublishReleases, "publish.releases");
  EXPECT_EQ(kLedgerAppendSeconds, "ledger.append.seconds");
  EXPECT_EQ(kGraphNodes, "graph.nodes");
}

// Drift check: every concrete metric-shaped name mentioned in backticks in
// docs/observability.md must be canonical (directly, or as the base of a
// derived ".seconds" histogram). Wildcard families (`publish.*`), naming-
// convention placeholders (`subsystem.noun[.verb]`), and bench-scope names
// (ad-hoc by design, see the R3 scope comment) are skipped.
TEST(MetricNamesTest, DocsMentionOnlyCanonicalNames) {
  std::ifstream in(std::string(SGP_SOURCE_ROOT) + "/docs/observability.md",
                   std::ios::binary);
  ASSERT_TRUE(in.good()) << "docs/observability.md not found";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();

  auto metric_shaped = [](const std::string& s) {
    if (s.find('.') == std::string::npos) return false;
    if (s.front() < 'a' || s.front() > 'z') return false;
    bool prev_dot = false;
    for (char c : s) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                      c == '_' || c == '.';
      if (!ok) return false;
      if (c == '.' && prev_dot) return false;
      prev_dot = (c == '.');
    }
    return !prev_dot;
  };

  std::vector<std::string> documented;
  std::size_t pos = 0;
  while ((pos = doc.find('`', pos)) != std::string::npos) {
    const std::size_t end = doc.find('`', pos + 1);
    if (end == std::string::npos) break;
    const std::string tok = doc.substr(pos + 1, end - pos - 1);
    pos = end + 1;
    if (!metric_shaped(tok)) continue;
    if (tok.rfind("bench.", 0) == 0) continue;
    if (tok.rfind("subsystem.", 0) == 0) continue;
    documented.push_back(tok);
  }
  ASSERT_FALSE(documented.empty())
      << "drift test found no metric names in the docs — did the doc "
         "format change?";
  for (const std::string& name : documented) {
    EXPECT_TRUE(is_canonical_name(name) ||
                is_canonical_name(name + ".seconds"))
        << "docs/observability.md mentions `" << name
        << "` which is not in src/obs/metric_names.hpp";
  }
}

}  // namespace
}  // namespace sgp::obs::names
