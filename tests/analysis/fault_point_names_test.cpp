// Invariants of the canonical fault-point registry
// (src/util/fault_point_names.hpp) and its drift check against
// docs/robustness.md — the consumers the sgp-lint R9 rule keeps honest.
// Mirrors metric_names_test.cpp for the metric registry.
#include "util/fault_point_names.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace sgp::util::fault_points {
namespace {

bool well_formed(std::string_view name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  bool prev_dot = false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.';
    if (!ok) return false;
    if (c == '.' && prev_dot) return false;  // no empty segments
    prev_dot = (c == '.');
  }
  return name.front() >= 'a' && name.front() <= 'z';
}

TEST(FaultPointNamesTest, AllPointsSortedAndUnique) {
  for (std::size_t i = 1; i < std::size(kAllFaultPoints); ++i) {
    EXPECT_LT(kAllFaultPoints[i - 1], kAllFaultPoints[i])
        << "kAllFaultPoints must stay strictly sorted: "
        << kAllFaultPoints[i - 1] << " vs " << kAllFaultPoints[i];
  }
}

TEST(FaultPointNamesTest, PointsFollowNamingRules) {
  for (std::string_view name : kAllFaultPoints) {
    EXPECT_TRUE(well_formed(name)) << name;
  }
}

TEST(FaultPointNamesTest, EveryRegisteredPointIsCanonical) {
  for (std::string_view name : kAllFaultPoints) {
    EXPECT_TRUE(is_canonical_fault_point(name)) << name;
  }
}

TEST(FaultPointNamesTest, UnknownPointsAreNotCanonical) {
  EXPECT_FALSE(is_canonical_fault_point("io.raed"));
  EXPECT_FALSE(is_canonical_fault_point("alloc.big"));
  EXPECT_FALSE(is_canonical_fault_point(""));
}

TEST(FaultPointNamesTest, SpotCheckConstantValues) {
  EXPECT_EQ(kAlloc, "alloc");
  EXPECT_EQ(kIoShardWrite, "io.shard.write");
  EXPECT_EQ(kProcWorkerExit, "proc.worker.exit");
}

// Drift check: every fault-point-shaped name mentioned in backticks in the
// fault-injection section of docs/robustness.md must be canonical, so the
// docs cannot describe a point the registry does not declare.
TEST(FaultPointNamesTest, DocsMentionOnlyCanonicalPoints) {
  std::ifstream in(std::string(SGP_SOURCE_ROOT) + "/docs/robustness.md",
                   std::ios::binary);
  ASSERT_TRUE(in.good()) << "docs/robustness.md not found";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();

  // Only names under the known point prefixes are fault-point-shaped —
  // robustness.md also mentions metric names and file names in backticks.
  auto fault_shaped = [](const std::string& s) {
    static const char* kPrefixes[] = {"alloc", "io.",    "ledger.",
                                      "lease", "proc.",  "solver."};
    for (const char* p : kPrefixes) {
      if (s.rfind(p, 0) == 0) return true;
    }
    return false;
  };

  std::vector<std::string> documented;
  std::size_t pos = 0;
  while ((pos = doc.find('`', pos)) != std::string::npos) {
    const std::size_t end = doc.find('`', pos + 1);
    if (end == std::string::npos) break;
    const std::string tok = doc.substr(pos + 1, end - pos - 1);
    pos = end + 1;
    if (tok.find('/') != std::string::npos) continue;  // a path
    if (tok.find('(') != std::string::npos) continue;  // a call
    if (tok.find('*') != std::string::npos) continue;  // wildcard family
    if (!fault_shaped(tok)) continue;
    documented.push_back(tok);
  }
  ASSERT_FALSE(documented.empty())
      << "drift test found no fault-point names in docs/robustness.md — "
         "did the doc format change?";
  for (const std::string& name : documented) {
    EXPECT_TRUE(is_canonical_fault_point(name))
        << "docs/robustness.md mentions `" << name
        << "` which is not in src/util/fault_point_names.hpp";
  }
}

}  // namespace
}  // namespace sgp::util::fault_points
