// Fire/silent tests for each sgp-lint rule. Every rule gets at least one
// case proving it fires on a violation and one proving it stays silent on
// compliant code — including the tokenizer-backed negatives where the
// banned pattern sits inside a comment or string literal.
#include "analysis/rules.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sgp::analysis {
namespace {

std::vector<Finding> lint_text(const std::string& path,
                               const std::string& text,
                               const std::vector<std::string>& rules = {}) {
  return run_rules(SourceFile{path, text}, default_rule_options(), rules);
}

std::size_t count_rule(const std::vector<Finding>& fs, std::string_view id) {
  std::size_t n = 0;
  for (const auto& f : fs) n += (f.rule == id) ? 1 : 0;
  return n;
}

// --- R1 rng-discipline ------------------------------------------------------

TEST(RuleR1Test, FiresOnStdEngineOutsideRandomDir) {
  const auto fs = lint_text("src/core/x.cpp", "std::mt19937 gen(42);");
  ASSERT_EQ(count_rule(fs, "R1"), 1u);
  EXPECT_EQ(fs[0].snippet, "mt19937");
  EXPECT_EQ(fs[0].line, 1);
}

TEST(RuleR1Test, FiresOnCRandCall) {
  const auto fs = lint_text("src/core/x.cpp", "int v = rand();");
  EXPECT_EQ(count_rule(fs, "R1"), 1u);
}

TEST(RuleR1Test, FiresOnIncludeRandom) {
  const auto fs = lint_text("src/core/x.cpp", "#include <random>\n");
  ASSERT_EQ(count_rule(fs, "R1"), 1u);
  EXPECT_EQ(fs[0].snippet, "<random>");
}

TEST(RuleR1Test, SilentInsideSrcRandom) {
  EXPECT_TRUE(lint_text("src/random/engine.cpp",
                        "#include <random>\nstd::mt19937 gen; rand();")
                  .empty());
}

TEST(RuleR1Test, SilentOnCommentAndStringMentions) {
  const std::string text =
      "// replacement for std::mt19937 and rand()\n"
      "/* #include <random> */\n"
      "const char* why = \"no mt19937, no rand() here\";\n";
  EXPECT_TRUE(lint_text("src/core/x.cpp", text).empty());
}

TEST(RuleR1Test, SilentOnMemberNamedRand) {
  // obj.rand() and ptr->rand() are someone else's API, not the C library.
  EXPECT_TRUE(
      lint_text("src/core/x.cpp", "obj.rand(); ptr->rand();").empty());
}

TEST(RuleR1Test, FiresOnHardwareEntropyEvenInsideSrcRandom) {
  // rdrand/rdseed are not exempt in the RNG home directory: a release must
  // regenerate from (seed, counter) alone on any machine.
  const auto fs = lint_text("src/random/counter_rng_avx2.cpp",
                            "unsigned long long v; _rdrand64_step(&v);");
  ASSERT_EQ(count_rule(fs, "R1"), 1u);
  EXPECT_EQ(fs[0].snippet, "_rdrand64_step");
  EXPECT_EQ(count_rule(lint_text("src/core/x.cpp",
                                 "__builtin_ia32_rdseed32_step(&v);"),
                       "R1"),
            1u);
}

TEST(RuleR1Test, FiresOnIntrinsicHeaderOutsideSrcRandom) {
  const auto fs =
      lint_text("src/linalg/fast.cpp", "#include <immintrin.h>\n");
  ASSERT_EQ(count_rule(fs, "R1"), 1u);
  EXPECT_EQ(fs[0].snippet, "<immintrin.h>");
  EXPECT_EQ(count_rule(lint_text("src/core/x.cpp",
                                 "#include <x86intrin.h>\n"),
                       "R1"),
            1u);
}

TEST(RuleR1Test, IntrinsicHeaderAllowedInsideSrcRandom) {
  // The dispatched kernel TUs are the one place vector intrinsics belong.
  EXPECT_TRUE(lint_text("src/random/counter_rng_avx512.cpp",
                        "#include <immintrin.h>\n")
                  .empty());
  // ...and a comment or string mention fires nowhere.
  EXPECT_TRUE(lint_text("src/core/x.cpp",
                        "// no #include <immintrin.h> outside random\n"
                        "const char* s = \"_rdrand64_step\";\n")
                  .empty());
}

// --- R2 error-taxonomy ------------------------------------------------------

TEST(RuleR2Test, FiresOnBareStdThrowInSrc) {
  const auto fs = lint_text("src/core/x.cpp",
                            "throw std::runtime_error(\"boom\");");
  ASSERT_EQ(count_rule(fs, "R2"), 1u);
  EXPECT_EQ(fs[0].snippet, "std::runtime_error");
}

TEST(RuleR2Test, FiresOnBareInvalidArgument) {
  const auto fs = lint_text("src/util/cli.cpp",
                            "throw std::invalid_argument(\"usage\");");
  EXPECT_EQ(count_rule(fs, "R2"), 1u);
}

TEST(RuleR2Test, SilentInTaxonomyHome) {
  const std::string text = "throw std::runtime_error(msg);";
  EXPECT_TRUE(lint_text("src/util/errors.hpp", text, {"R2"}).empty());
  EXPECT_TRUE(lint_text("src/util/check.hpp", text, {"R2"}).empty());
}

TEST(RuleR2Test, SilentOutsideLibraryScope) {
  // Tests may throw whatever they like.
  EXPECT_TRUE(lint_text("tests/core/x_test.cpp",
                        "throw std::runtime_error(\"boom\");")
                  .empty());
}

TEST(RuleR2Test, SilentOnTypedTaxonomyThrow) {
  EXPECT_TRUE(lint_text("src/core/x.cpp",
                        "throw util::ConvergenceError(\"no\");")
                  .empty());
}

TEST(RuleR2Test, SilentWhenThrowMentionedInString) {
  EXPECT_TRUE(lint_text("src/core/x.cpp",
                        "log(\"throw std::runtime_error here\");")
                  .empty());
}

TEST(RuleR2Test, FiresOnToolMainWithoutRunTool) {
  const auto fs = lint_text("tools/bad.cpp",
                            "int main(int argc, char** argv) { return 0; }");
  ASSERT_EQ(count_rule(fs, "R2"), 1u);
  EXPECT_EQ(fs[0].snippet, "main");
}

TEST(RuleR2Test, SilentOnToolMainRoutedThroughRunTool) {
  EXPECT_TRUE(lint_text("tools/good.cpp",
                        "int main(int argc, char** argv) {\n"
                        "  return sgp::tools::run_tool(argc, argv, body);\n"
                        "}")
                  .empty());
}

// --- R3 metric-registry -----------------------------------------------------

TEST(RuleR3Test, FiresOnUnregisteredCounterName) {
  const auto fs = lint_text("src/core/x.cpp",
                            "obs::counter(\"publish.typo\").add();");
  ASSERT_EQ(count_rule(fs, "R3"), 1u);
  EXPECT_EQ(fs[0].snippet, "publish.typo");
}

TEST(RuleR3Test, FiresOnUnregisteredTimerName) {
  const auto fs = lint_text(
      "src/core/x.cpp", "obs::ScopedTimer timer(\"publish.unknown\");");
  EXPECT_EQ(count_rule(fs, "R3"), 1u);
}

TEST(RuleR3Test, FiresOnUnregisteredSpanTemporary) {
  const auto fs =
      lint_text("src/core/x.cpp", "obs::Span(\"mystery.span\");");
  EXPECT_EQ(count_rule(fs, "R3"), 1u);
}

TEST(RuleR3Test, SilentOnCanonicalNames) {
  const std::string text =
      "obs::counter(\"publish.releases\").add();\n"
      "obs::gauge(\"publish.sigma\").set(1);\n"
      "obs::histogram(\"ledger.append.seconds\").record(x);\n"
      "obs::Span span(\"publish\");\n";
  EXPECT_TRUE(lint_text("src/core/x.cpp", text).empty());
}

TEST(RuleR3Test, SilentOnRuntimeAssembledName) {
  // "tool." + task is out of a static checker's reach; must not fire.
  EXPECT_TRUE(lint_text("tools/x.cpp",
                        "obs::ScopedTimer t(\"tool.\" + task);")
                  .empty());
}

TEST(RuleR3Test, SilentOutsideLibraryScope) {
  EXPECT_TRUE(lint_text("tests/obs/x_test.cpp",
                        "obs::counter(\"test.metrics.adhoc\");")
                  .empty());
}

TEST(RuleR3Test, SilentInMetricNamesHeaderItself) {
  EXPECT_TRUE(lint_text("src/obs/metric_names.hpp",
                        "counter(\"anything.goes\")", {"R3"})
                  .empty());
}

// --- R4 header-hygiene ------------------------------------------------------

TEST(RuleR4Test, FiresOnMissingPragmaOnce) {
  const auto fs = lint_text("src/core/x.hpp", "int f();\n");
  ASSERT_EQ(count_rule(fs, "R4"), 1u);
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_EQ(fs[0].snippet, "#pragma once");
}

TEST(RuleR4Test, FiresOnUsingNamespaceInHeader) {
  const auto fs = lint_text(
      "src/core/x.hpp", "#pragma once\nusing namespace std;\n");
  ASSERT_EQ(count_rule(fs, "R4"), 1u);
  EXPECT_EQ(fs[0].snippet, "using namespace");
  EXPECT_EQ(fs[0].line, 2);
}

TEST(RuleR4Test, SilentOnCleanHeader) {
  EXPECT_TRUE(lint_text("src/core/x.hpp",
                        "#pragma once\nnamespace sgp { int f(); }\n")
                  .empty());
}

TEST(RuleR4Test, SilentOnSourceFiles) {
  // .cpp files may use `using namespace` locally; the rule is header-only.
  EXPECT_TRUE(
      lint_text("src/core/x.cpp", "using namespace std::chrono;").empty());
}

TEST(RuleR4Test, SilentWhenUsingNamespaceOnlyInComment) {
  EXPECT_TRUE(lint_text("src/core/x.hpp",
                        "#pragma once\n// never `using namespace` here\n")
                  .empty());
}

// --- R5 privacy-literals ----------------------------------------------------

TEST(RuleR5Test, FiresOnEpsilonLiteralOutsideDp) {
  const auto fs =
      lint_text("src/core/x.cpp", "double epsilon = 1.5;");
  ASSERT_EQ(count_rule(fs, "R5"), 1u);
  EXPECT_EQ(fs[0].snippet, "epsilon = 1.5");
}

TEST(RuleR5Test, FiresOnBraceInitAndCompoundNames) {
  const auto fs = lint_text("src/core/x.cpp",
                            "double noise_sigma{0.75};\n"
                            "double kDeltaSplit = 0.5;\n");
  EXPECT_EQ(count_rule(fs, "R5"), 2u);
}

TEST(RuleR5Test, SilentInsideSrcDp) {
  EXPECT_TRUE(lint_text("src/dp/defaults.hpp",
                        "#pragma once\nconstexpr double kDefaultEpsilon = "
                        "1.0;\n")
                  .empty());
}

TEST(RuleR5Test, SilentOnZeroInit) {
  EXPECT_TRUE(
      lint_text("src/core/x.cpp", "double epsilon = 0.0;").empty());
}

TEST(RuleR5Test, SilentOnNonFloatAssignment) {
  // Assigning another variable (or an int count) is not a hard-coded
  // privacy parameter.
  EXPECT_TRUE(lint_text("src/core/x.cpp",
                        "double epsilon = opts.epsilon;\n"
                        "int sigma_buckets = 4;\n")
                  .empty());
}

TEST(RuleR5Test, SilentOnCommentedLiteral) {
  EXPECT_TRUE(lint_text("src/core/x.cpp",
                        "// typical choice: epsilon = 1.5\n")
                  .empty());
}

// --- run_rules plumbing -----------------------------------------------------

TEST(RunRulesTest, RuleFilterSelectsSubset) {
  const std::string text =
      "std::mt19937 gen;\nthrow std::runtime_error(\"x\");\n";
  const auto all = lint_text("src/core/x.cpp", text);
  EXPECT_EQ(count_rule(all, "R1"), 1u);
  EXPECT_EQ(count_rule(all, "R2"), 1u);
  const auto only_r2 = lint_text("src/core/x.cpp", text, {"R2"});
  EXPECT_EQ(count_rule(only_r2, "R1"), 0u);
  EXPECT_EQ(count_rule(only_r2, "R2"), 1u);
}

TEST(RunRulesTest, FindingsAreSorted) {
  const std::string text =
      "throw std::runtime_error(\"x\");\nstd::mt19937 gen;\n";
  const auto fs = lint_text("src/core/x.cpp", text);
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_TRUE(finding_less(fs[0], fs[1]));
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_EQ(fs[1].line, 2);
}

TEST(RunRulesTest, PathScopingIsRootRelative) {
  // The same text is a violation in src/ but not in bench/.
  const std::string text = "std::mt19937 gen;";
  EXPECT_EQ(lint_text("src/core/x.cpp", text).size(), 1u);
  // R1 applies everywhere except src/random/ — bench code must also use
  // the counter RNG.
  EXPECT_EQ(lint_text("bench/x.cpp", text).size(), 1u);
  EXPECT_TRUE(lint_text("src/random/x.cpp", text).empty());
}

}  // namespace
}  // namespace sgp::analysis
