// R7 silent: src/util/ is the sanctioned home for raw threads and manual
// lock calls, and submit() outside a parallel_for body is fine anywhere.
#include "util/thread_pool.hpp"

namespace sgp::util {

void owner() {
  std::thread ticker([] {});
  ticker.join();
}

void handoff(std::mutex& m) {
  m.lock();
  m.unlock();
}

void fan_out(ThreadPool& pool) {
  pool.submit([] { return 1; });
}

}  // namespace sgp::util
