// R6 fire: util reaching up into core inverts the architecture DAG.
#pragma once

#include "core/clean_header.hpp"
