// R8 silent: the encoder callers hold visible privacy context and the
// privacy value comes from dp/.
#include "core/serialization.hpp"

namespace sgp::core {

void emit_release(std::ostream& os, const dp::PrivacyParams& params,
                  const std::vector<double>& rows) {
  params.validate();
  write_published_header(os, rows.size());
  write_published_doubles(os, rows);
}

double calibrated(const dp::PrivacyParams& params) {
  const double sigma = dp::analytic_gaussian_sigma(params);
  return sigma;
}

}  // namespace sgp::core

namespace sgp::core {

// Clause (c) silent forms: a split routed through dp/, and plain
// propagation with no literal arithmetic.
double split_via_dp(const dp::PrivacyParams& params) {
  const double epsilon_head = dp::split_budget(params, 0.5).partition.epsilon;
  return epsilon_head;
}

double propagate(const dp::PrivacyParams& params) {
  const double epsilon_copy = params.epsilon;
  return epsilon_copy;
}

}  // namespace sgp::core
