// R8 silent: the encoder callers hold visible privacy context and the
// privacy value comes from dp/.
#include "core/serialization.hpp"

namespace sgp::core {

void emit_release(std::ostream& os, const dp::PrivacyParams& params,
                  const std::vector<double>& rows) {
  params.validate();
  write_published_header(os, rows.size());
  write_published_doubles(os, rows);
}

double calibrated(const dp::PrivacyParams& params) {
  const double sigma = dp::analytic_gaussian_sigma(params);
  return sigma;
}

}  // namespace sgp::core
