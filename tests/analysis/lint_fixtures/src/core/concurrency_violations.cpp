// Deliberate R7 violations: every banned threading primitive outside
// src/util/. Never compiled.
#include "util/thread_pool.hpp"

namespace sgp::core {

void spawn_worker() {
  std::thread worker([] {});
  worker.join();
}

void manual_locking(std::mutex& m) {
  m.lock();
}

void poll_for_result() {
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
}

void nested_fanout(util::ThreadPool& pool) {
  util::parallel_for(0, 8, [&pool](std::size_t i) {
    pool.submit([i] { return i; });
  });
}

}  // namespace sgp::core
