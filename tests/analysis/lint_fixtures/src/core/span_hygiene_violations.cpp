// Deliberate R10 violations: a discarded guard temporary and an event with
// no scope to anchor to. Never compiled.
#include "obs/scoped_timer.hpp"

namespace sgp::core {

void measure_nothing() {
  obs::ScopedTimer(obs::names::kPublish);
}

void unanchored_event() {
  obs::log_event(obs::names::kEventShardLeased, {});
}

}  // namespace sgp::core
