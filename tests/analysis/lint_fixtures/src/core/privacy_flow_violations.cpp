// Deliberate R8 violations: release bytes without privacy context, and a
// privacy value computed outside dp/. Never compiled.
#include "core/serialization.hpp"

namespace sgp::core {

void dump_rows(std::ostream& os, const std::vector<double>& rows) {
  write_published_header(os, rows.size());
}

double scale_noise(double scale) {
  double sigma = scale * 2.0;
  return sigma;
}

}  // namespace sgp::core

namespace sgp::core {

// Clause (c): propagation does not license arithmetic — a literal share
// applied to a privacy value is a hand-rolled budget split.
double split_by_hand(double epsilon) {
  double epsilon_head = epsilon * 0.5;
  return epsilon_head;
}

}  // namespace sgp::core
