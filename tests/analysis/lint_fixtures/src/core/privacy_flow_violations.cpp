// Deliberate R8 violations: release bytes without privacy context, and a
// privacy value computed outside dp/. Never compiled.
#include "core/serialization.hpp"

namespace sgp::core {

void dump_rows(std::ostream& os, const std::vector<double>& rows) {
  write_published_header(os, rows.size());
}

double scale_noise(double scale) {
  double sigma = scale * 2.0;
  return sigma;
}

}  // namespace sgp::core
