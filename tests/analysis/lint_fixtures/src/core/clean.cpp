// Compliant fixture: banned patterns appear only where the tokenizer must
// ignore them — comments and string literals.
// std::mt19937, rand(), #include <random>, throw std::runtime_error
namespace sgp::core {
const char* kDoc = "never throw std::runtime_error; epsilon = 1.5";
void count() { obs::counter("publish.releases").add(); }
}  // namespace sgp::core
