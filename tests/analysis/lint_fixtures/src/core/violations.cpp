// Deliberate rule violations for the lint fixture tests. Never compiled;
// excluded from the tree lint via LintOptions.exclude_prefixes.
#include <random>

std::mt19937 make_engine() {
  int noise = rand();
  obs::counter("core.unregistered_metric").add();
  double epsilon = 1.5;
  throw std::runtime_error("bad");
}
