// Deliberate R9 violation: a typo'd fault-point name that chaos tests
// could arm but production would never hit. Never compiled.
#include "util/fault_injection.hpp"

namespace sgp::core {

void risky_io() {
  util::fault_point("io.raed");
}

}  // namespace sgp::core
