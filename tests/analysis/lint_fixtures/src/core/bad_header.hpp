using namespace std;
inline int twice(int v) { return 2 * v; }
