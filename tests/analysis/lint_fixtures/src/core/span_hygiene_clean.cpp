// R10 silent: the guard is named (it spans the scope), and log_event fires
// under a span opened earlier or passed in by the caller.
#include "obs/scoped_timer.hpp"

namespace sgp::core {

void measured_publish() {
  obs::ScopedTimer timer(obs::names::kPublish);
  obs::log_event(obs::names::kEventShardLeased, {});
}

void logs_under_caller(obs::Span& span, int release) {
  obs::log_event(obs::names::kEventShardResumed,
                 {{"release", std::to_string(release)}});
}

}  // namespace sgp::core
