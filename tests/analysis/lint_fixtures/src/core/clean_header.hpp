// Compliant fixture header.
#pragma once
namespace sgp::core {
inline int half(int v) { return v / 2; }
}  // namespace sgp::core
