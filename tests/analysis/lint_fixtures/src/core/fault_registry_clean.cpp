// R9 silent: registry constants are canonical by construction, and a
// literal spelling of a registered name stays legal (tests arm by name).
#include "util/fault_injection.hpp"
#include "util/fault_point_names.hpp"

namespace sgp::core {

void checked_io() {
  util::fault_point(util::fault_points::kIoRead);
  util::arm_fault("io.read");
}

}  // namespace sgp::core
