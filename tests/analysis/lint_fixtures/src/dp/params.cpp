// Fixture: privacy literals are policy and live in src/dp/ (R5 scopes
// itself out here).
constexpr double kFixtureEpsilon = 1.0;
constexpr double kFixtureDeltaSplit = 0.5;
