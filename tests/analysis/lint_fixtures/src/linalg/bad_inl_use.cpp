// R6 fire: linalg may depend on random/ headers, but a *.inl kernel body
// is a random-internal — include the dispatch header instead.
#include "random/kernel_body.inl"
