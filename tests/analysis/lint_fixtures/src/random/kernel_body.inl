// A random/ kernel body: only src/random/ files may include it (R6).
inline double kernel_step(double x) { return x * 0.5; }
