// R6 silent: a random/ dispatcher including its own kernel body is the
// sanctioned pattern.
#include "random/kernel_body.inl"
