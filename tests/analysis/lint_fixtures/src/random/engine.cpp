// Fixture: src/random/ is the one home where engine use is legal (R1
// scopes itself out here).
#include <random>
std::mt19937 legacy_engine() { return std::mt19937{7}; }
