// R6 fire (with cycle_b.hpp): a two-header include cycle. The module edge
// graph -> graph is legal; the file-level cycle is not.
#pragma once

#include "graph/cycle_b.hpp"
