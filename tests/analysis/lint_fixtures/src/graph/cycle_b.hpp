// Second half of the include cycle pinned by the R6 fixture tests.
#pragma once

#include "graph/cycle_a.hpp"
