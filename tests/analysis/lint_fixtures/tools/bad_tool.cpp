// Fixture: a tool main() that bypasses run_tool() (R2 fires).
int main() { return 0; }
