// Fixture: exit-code contract respected — main routes through run_tool().
int main(int argc, char** argv) {
  return sgp::tools::run_tool(argc, argv, [] { return 0; });
}
