// Tests for the comment/string-aware scanner the lint rules run on. The
// load-bearing property is negative: text inside comments and string
// literals must never surface as identifier/punct tokens.
#include "analysis/tokenizer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sgp::analysis {
namespace {

std::vector<std::string> texts(const std::vector<Token>& toks) {
  std::vector<std::string> out;
  out.reserve(toks.size());
  for (const auto& t : toks) out.push_back(t.text);
  return out;
}

bool has_identifier(const std::vector<Token>& toks, std::string_view name) {
  for (const auto& t : toks) {
    if (t.kind == TokKind::kIdentifier && t.text == name) return true;
  }
  return false;
}

TEST(TokenizerTest, ClassifiesBasicKinds) {
  const auto toks = tokenize("int x = 42;");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, TokKind::kIdentifier);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[1].kind, TokKind::kIdentifier);
  EXPECT_EQ(toks[2].kind, TokKind::kPunct);
  EXPECT_EQ(toks[2].text, "=");
  EXPECT_EQ(toks[3].kind, TokKind::kNumber);
  EXPECT_EQ(toks[3].text, "42");
  EXPECT_EQ(toks[4].kind, TokKind::kPunct);
}

TEST(TokenizerTest, LineCommentsVanish) {
  const auto toks = tokenize("a // std::mt19937 rand()\nb");
  EXPECT_EQ(texts(toks), (std::vector<std::string>{"a", "b"}));
  EXPECT_FALSE(has_identifier(toks, "mt19937"));
}

TEST(TokenizerTest, BlockCommentsVanishAndKeepLineCount) {
  const auto toks = tokenize("a /* rand()\n mt19937\n */ b");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 3);  // newlines inside the comment still count
  EXPECT_FALSE(has_identifier(toks, "rand"));
}

TEST(TokenizerTest, StringContentsAreOpaque) {
  const auto toks = tokenize("f(\"std::mt19937 rand()\");");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[2].kind, TokKind::kString);
  EXPECT_EQ(toks[2].text, "std::mt19937 rand()");
  EXPECT_FALSE(has_identifier(toks, "mt19937"));
  EXPECT_FALSE(has_identifier(toks, "rand"));
}

TEST(TokenizerTest, EscapedQuoteDoesNotEndString) {
  const auto toks = tokenize(R"(x = "a\"b";)");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[2].kind, TokKind::kString);
  EXPECT_EQ(toks[2].text, "a\\\"b");  // escapes preserved verbatim
}

TEST(TokenizerTest, RawStringsAreOneToken) {
  const auto toks = tokenize("auto s = R\"(one \" two // three)\";");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[3].kind, TokKind::kString);
  EXPECT_EQ(toks[3].text, "one \" two // three");
}

TEST(TokenizerTest, RawStringCustomDelimiter) {
  const auto toks = tokenize("R\"ab()\" rand( )ab\"");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokKind::kString);
  EXPECT_EQ(toks[0].text, ")\" rand( ");
}

TEST(TokenizerTest, EncodingPrefixedStringIsStillAString) {
  const auto toks = tokenize("u8\"mt19937\" L\"x\"");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokKind::kString);
  EXPECT_EQ(toks[0].text, "mt19937");
  EXPECT_EQ(toks[1].kind, TokKind::kString);
}

TEST(TokenizerTest, CharLiterals) {
  const auto toks = tokenize("char c = 'x'; char n = '\\n';");
  ASSERT_GE(toks.size(), 8u);
  EXPECT_EQ(toks[3].kind, TokKind::kChar);
  EXPECT_EQ(toks[3].text, "x");
}

TEST(TokenizerTest, MultiCharPunctuatorsLongestMatch) {
  const auto toks = tokenize("a::b <<= c->d <=> e");
  const auto t = texts(toks);
  EXPECT_NE(std::find(t.begin(), t.end(), "::"), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), "<<="), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), "->"), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), "<=>"), t.end());
}

TEST(TokenizerTest, LineNumbersAreOneBased) {
  const auto toks = tokenize("a\nb\n\nc");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 4);
}

TEST(TokenizerTest, NumbersWithSeparatorsAndExponents) {
  const auto toks = tokenize("1'000'000 2.5e-3 0x1F 1.f");
  ASSERT_EQ(toks.size(), 4u);
  for (const auto& t : toks) EXPECT_EQ(t.kind, TokKind::kNumber);
  EXPECT_EQ(toks[0].text, "1'000'000");
  EXPECT_EQ(toks[1].text, "2.5e-3");
}

TEST(TokenizerTest, FloatLiteralDetection) {
  const auto toks = tokenize("1 1.5 2e3 3f 0x1F 0.0 0x1p3");
  ASSERT_EQ(toks.size(), 7u);
  EXPECT_FALSE(is_float_literal(toks[0]));  // 1
  EXPECT_TRUE(is_float_literal(toks[1]));   // 1.5
  EXPECT_TRUE(is_float_literal(toks[2]));   // 2e3
  EXPECT_TRUE(is_float_literal(toks[3]));   // 3f
  EXPECT_FALSE(is_float_literal(toks[4]));  // hex int
  EXPECT_TRUE(is_float_literal(toks[5]));   // 0.0
  EXPECT_TRUE(is_float_literal(toks[6]));   // hex float
}

TEST(TokenizerTest, NumberValueParses) {
  const auto toks = tokenize("2.5e-3 0.0 7");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_DOUBLE_EQ(number_value(toks[0]), 2.5e-3);
  EXPECT_DOUBLE_EQ(number_value(toks[1]), 0.0);
  EXPECT_DOUBLE_EQ(number_value(toks[2]), 7.0);
}

TEST(TokenizerTest, UnterminatedLiteralClosesAtEof) {
  // Forgiving: no throw, the dangling literal becomes one token.
  const auto toks = tokenize("x = \"never closed");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[2].kind, TokKind::kString);
  EXPECT_EQ(toks[2].text, "never closed");
}

TEST(TokenizerTest, EmptyInputYieldsNoTokens) {
  EXPECT_TRUE(tokenize("").empty());
  EXPECT_TRUE(tokenize("   \n\t  ").empty());
  EXPECT_TRUE(tokenize("// only a comment").empty());
}


TEST(TokenizerTest, BackslashNewlineSplicesTokens) {
  // Translation phase 2: backslash-newline vanishes before tokenization,
  // so a spliced directive is one logical line. The token after the splice
  // carries follows_splice so line-sensitive passes (the include scanner)
  // can tell "same logical line" from "same physical line".
  const auto toks = tokenize("#include \\\n\"util/errors.hpp\"\nint x;");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[0].text, "#");
  EXPECT_EQ(toks[1].text, "include");
  EXPECT_EQ(toks[2].kind, TokKind::kString);
  EXPECT_EQ(toks[2].text, "util/errors.hpp");
  EXPECT_TRUE(toks[2].follows_splice);
  EXPECT_EQ(toks[2].line, 2);  // physical line of the token's own start
  EXPECT_FALSE(toks[3].follows_splice);
}

TEST(TokenizerTest, SpliceBetweenIdentifierCharsBreaksTheToken) {
  // Deliberate divergence from phase-2 C++ (which would join "eventual"):
  // no real code splices mid-identifier, and keeping the tokens separate
  // preserves a 1:1 token-to-source-position mapping for findings. The
  // second token carries follows_splice so passes can detect the join.
  const auto toks = tokenize("even\\\ntual");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "even");
  EXPECT_EQ(toks[1].text, "tual");
  EXPECT_TRUE(toks[1].follows_splice);
}

TEST(TokenizerTest, SpliceExtendsLineComment) {
  // A line comment ending in backslash-newline swallows the next physical
  // line too — the `int y;` here is still commented out.
  const auto toks = tokenize("// gone \\\nint y;\nint z;");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[1].text, "z");
}

TEST(TokenizerTest, SpliceInsideStringLiteral) {
  // Inside an ordinary string literal, backslash-newline is a splice, not
  // an escaped character: the literal continues on the next line.
  const auto toks = tokenize("\"ab\\\ncd\"");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokKind::kString);
  EXPECT_EQ(toks[0].text, "abcd");
}

TEST(TokenizerTest, AdjacentRawStringsStayDistinct) {
  // The closing delimiter of one raw string must not be confused with the
  // opening of the next when they share delimiter text.
  const auto toks = tokenize("R\"x(one)x\" R\"x(two)x\"");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokKind::kString);
  EXPECT_EQ(toks[0].text, "one");
  EXPECT_EQ(toks[1].kind, TokKind::kString);
  EXPECT_EQ(toks[1].text, "two");
}

TEST(TokenizerTest, RawStringParenInDelimiterBody) {
  // The body may contain ')' followed by a non-matching suffix.
  const auto toks = tokenize("R\"ab(x)a)ab\"");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].text, "x)a");
}

}  // namespace
}  // namespace sgp::analysis
