// SARIF 2.1.0 export: the fixture-tree report must round-trip through the
// in-tree validator, carry every rule in the driver metadata, and reject
// structurally broken documents.
#include "analysis/sarif.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "analysis/lint.hpp"
#include "util/json.hpp"

namespace sgp::analysis {
namespace {

LintOptions fixture_options() {
  LintOptions opt;
  opt.root = SGP_LINT_FIXTURE_DIR;
  return opt;
}

std::string fixture_sarif() {
  const LintResult result = run_lint(fixture_options());
  std::ostringstream out;
  write_lint_report_sarif(result, fixture_options(), out);
  return out.str();
}

TEST(SarifTest, FixtureReportRoundTripsThroughValidator) {
  const util::JsonValue doc = util::parse_json(fixture_sarif());
  EXPECT_EQ(validate_sarif_json(doc), std::nullopt);
}

TEST(SarifTest, DriverCarriesEveryRule) {
  const util::JsonValue doc = util::parse_json(fixture_sarif());
  const util::JsonValue& rules = *doc.find("runs")
                                      ->as_array()[0]
                                      .find("tool")
                                      ->find("driver")
                                      ->find("rules");
  ASSERT_EQ(rules.as_array().size(), std::size(kAllRuleIds));
  std::size_t i = 0;
  for (const util::JsonValue& r : rules.as_array()) {
    EXPECT_EQ(r.find("id")->as_string(), kAllRuleIds[i++]);
  }
}

TEST(SarifTest, ResultsMirrorFindings) {
  const LintResult result = run_lint(fixture_options());
  const util::JsonValue doc = util::parse_json(fixture_sarif());
  const util::JsonValue& results =
      *doc.find("runs")->as_array()[0].find("results");
  ASSERT_EQ(results.as_array().size(), result.findings.size());
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const util::JsonValue& r = results.as_array()[i];
    const Finding& f = result.findings[i];
    EXPECT_EQ(r.find("ruleId")->as_string(), f.rule);
    EXPECT_EQ(r.find("level")->as_string(), "error");
    EXPECT_EQ(r.find("message")->find("text")->as_string(), f.message);
    const util::JsonValue& loc =
        r.find("locations")->as_array()[0];
    EXPECT_EQ(loc.find("physicalLocation")
                  ->find("artifactLocation")
                  ->find("uri")
                  ->as_string(),
              f.file);
    EXPECT_EQ(loc.find("physicalLocation")
                  ->find("region")
                  ->find("startLine")
                  ->as_number(),
              f.line);
  }
}

TEST(SarifTest, ExportIsDeterministic) {
  EXPECT_EQ(fixture_sarif(), fixture_sarif());
}

TEST(SarifTest, ValidatorRejectsSchemaViolations) {
  auto rejects = [](const std::string& json) {
    return validate_sarif_json(util::parse_json(json)).has_value();
  };
  EXPECT_TRUE(rejects("{}"));
  EXPECT_TRUE(rejects(R"({"version": "2.0.0", "runs": []})"));
  // Two runs.
  EXPECT_TRUE(rejects(R"({"version": "2.1.0", "runs": [{}, {}]})"));
  // Wrong driver name.
  EXPECT_TRUE(rejects(R"({"version": "2.1.0", "runs": [{"tool":
      {"driver": {"name": "other", "rules": [{"id": "R1",
      "shortDescription": {"text": "x"}}]}}, "results": []}]})"));
  // Result referencing an undeclared rule.
  EXPECT_TRUE(rejects(R"({"version": "2.1.0", "runs": [{"tool":
      {"driver": {"name": "sgp-lint", "rules": [{"id": "R1",
      "shortDescription": {"text": "x"}}]}},
      "results": [{"ruleId": "R99", "message": {"text": "m"},
      "locations": [{"physicalLocation": {"artifactLocation":
      {"uri": "a.cpp"}, "region": {"startLine": 1}}}]}]}]})"));
  // Absolute uri.
  EXPECT_TRUE(rejects(R"({"version": "2.1.0", "runs": [{"tool":
      {"driver": {"name": "sgp-lint", "rules": [{"id": "R1",
      "shortDescription": {"text": "x"}}]}},
      "results": [{"ruleId": "R1", "message": {"text": "m"},
      "locations": [{"physicalLocation": {"artifactLocation":
      {"uri": "/abs/a.cpp"}, "region": {"startLine": 1}}}]}]}]})"));
  // startLine below 1.
  EXPECT_TRUE(rejects(R"({"version": "2.1.0", "runs": [{"tool":
      {"driver": {"name": "sgp-lint", "rules": [{"id": "R1",
      "shortDescription": {"text": "x"}}]}},
      "results": [{"ruleId": "R1", "message": {"text": "m"},
      "locations": [{"physicalLocation": {"artifactLocation":
      {"uri": "a.cpp"}, "region": {"startLine": 0}}}]}]}]})"));
  // Empty message text.
  EXPECT_TRUE(rejects(R"({"version": "2.1.0", "runs": [{"tool":
      {"driver": {"name": "sgp-lint", "rules": [{"id": "R1",
      "shortDescription": {"text": "x"}}]}},
      "results": [{"ruleId": "R1", "message": {"text": ""},
      "locations": [{"physicalLocation": {"artifactLocation":
      {"uri": "a.cpp"}, "region": {"startLine": 1}}}]}]}]})"));
}

}  // namespace
}  // namespace sgp::analysis
