// Incremental lint-cache behavior: cold vs warm runs, single-file
// invalidation, determinism across thread counts, and the file-count
// accounting that backs the "warm is cheaper" guarantee. The cache stores
// per-file findings keyed by content hash; the cross-file R6 graph phase
// is recomputed from cached include summaries every run, so a warm report
// must be byte-identical to a cold one.
#include "analysis/cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/lint.hpp"

namespace fs = std::filesystem;

namespace sgp::analysis {
namespace {

/// A disposable copy of the fixture tree, so tests can mutate files.
class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("sgp_lint_cache_" + std::string(::testing::UnitTest::GetInstance()
                                                 ->current_test_info()
                                                 ->name()));
    fs::remove_all(root_);
    fs::copy(SGP_LINT_FIXTURE_DIR, root_, fs::copy_options::recursive);
    cache_path_ = (root_ / ".lint-cache.json").string();
  }

  void TearDown() override { fs::remove_all(root_); }

  LintOptions options(std::size_t threads = 1) {
    LintOptions opt;
    opt.root = root_.string();
    opt.threads = threads;
    opt.use_cache = true;
    opt.cache_path = cache_path_;
    return opt;
  }

  std::string report_of(const LintResult& result, const LintOptions& opt) {
    std::ostringstream out;
    write_lint_report_json(result, opt, out);
    return out.str();
  }

  fs::path root_;
  std::string cache_path_;
};

TEST_F(CacheTest, ColdThenWarmRunsAgree) {
  const LintOptions opt = options();
  const LintResult cold = run_lint(opt);
  EXPECT_EQ(cold.files_relinted, cold.files_scanned);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_TRUE(fs::exists(cache_path_));

  const LintResult warm = run_lint(opt);
  EXPECT_EQ(warm.files_relinted, 0u);
  EXPECT_EQ(warm.cache_hits, warm.files_scanned);
  // Byte-identical reports: the cache must not change what is reported —
  // including the cross-file R6 findings, which are recomputed from the
  // cached include summaries rather than stored.
  EXPECT_EQ(report_of(warm, opt), report_of(cold, opt));
}

TEST_F(CacheTest, WarmRunRelintsAtMostAThirdOfTheTree) {
  // The "≥3× cheaper" guarantee, in deterministic file-count accounting:
  // per-file rule work is proportional to files re-linted, and a warm run
  // on an unchanged tree re-lints nothing at all.
  const LintOptions opt = options();
  const LintResult cold = run_lint(opt);
  const LintResult warm = run_lint(opt);
  ASSERT_GT(cold.files_relinted, 0u);
  EXPECT_LE(warm.files_relinted * 3, cold.files_relinted)
      << "warm run re-linted " << warm.files_relinted << " of "
      << cold.files_relinted << " files — the cache is not saving work";
}

TEST_F(CacheTest, MutatingOneFileRelintsOnlyThatFile) {
  const LintOptions opt = options();
  const LintResult cold = run_lint(opt);

  // Plant a fresh violation in a previously-clean file.
  const fs::path target = root_ / "src/core/clean.cpp";
  {
    std::ofstream out(target, std::ios::binary | std::ios::app);
    ASSERT_TRUE(out.good());
    out << "int bad_rng() { return rand(); }\n";
  }

  const LintResult after = run_lint(opt);
  EXPECT_EQ(after.files_relinted, 1u);
  EXPECT_EQ(after.cache_hits, after.files_scanned - 1);
  EXPECT_EQ(after.findings.size(), cold.findings.size() + 1);
  bool found = false;
  for (const Finding& f : after.findings) {
    found = found || (f.file == "src/core/clean.cpp" && f.rule == "R1");
  }
  EXPECT_TRUE(found) << "the planted rand() call must be (re)found";

  // And the run after the mutation is warm again.
  const LintResult warm = run_lint(opt);
  EXPECT_EQ(warm.files_relinted, 0u);
  EXPECT_EQ(report_of(warm, opt), report_of(after, opt));
}

TEST_F(CacheTest, ReportsAreIdenticalAcrossThreadCounts) {
  const LintOptions serial = options(1);
  const LintResult r1 = run_lint(serial);
  fs::remove(cache_path_);
  const LintOptions pooled = options(8);
  const LintResult r8 = run_lint(pooled);
  EXPECT_EQ(r1.files_scanned, r8.files_scanned);
  EXPECT_EQ(report_of(r1, serial), report_of(r8, pooled));
}

TEST_F(CacheTest, VersionKeyChangeInvalidatesEverything) {
  LintOptions opt = options();
  run_lint(opt);
  // A different rule selection is a different engine configuration: the
  // cache must go cold rather than serve findings from other rules.
  opt.rules = {"R1"};
  const LintResult filtered = run_lint(opt);
  EXPECT_EQ(filtered.files_relinted, filtered.files_scanned);
}

TEST_F(CacheTest, CorruptCacheFileLoadsCold) {
  const LintOptions opt = options();
  run_lint(opt);
  {
    std::ofstream out(cache_path_, std::ios::binary | std::ios::trunc);
    out << "{not json";
  }
  // Never throws: a broken cache is a cold cache.
  const LintResult result = run_lint(opt);
  EXPECT_EQ(result.files_relinted, result.files_scanned);
  // And the run repaired it.
  const LintResult warm = run_lint(opt);
  EXPECT_EQ(warm.files_relinted, 0u);
}

TEST_F(CacheTest, VanishedFilesDropOutOfTheCache) {
  const LintOptions opt = options();
  run_lint(opt);
  fs::remove(root_ / "src/core/violations.cpp");
  const LintResult after = run_lint(opt);
  EXPECT_EQ(after.files_scanned, 21u);
  const LintCache reloaded = LintCache::load(
      cache_path_, lint_cache_version_key(opt.rule_options, opt.rules));
  EXPECT_EQ(reloaded.entry_count(), 21u);
}

}  // namespace
}  // namespace sgp::analysis
