// Unit tests for the declaration/include indexer (analysis/index.hpp) and
// the include-graph layer checker (analysis/include_graph.hpp) that the
// R6–R10 rules are built on.
#include "analysis/index.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/include_graph.hpp"

namespace sgp::analysis {
namespace {

FileIndex index_of(const std::string& text) {
  return build_file_index(SourceFile{"src/core/x.cpp", text});
}

TEST(IndexTest, RecordsQuotedAndAngleIncludes) {
  const FileIndex idx = index_of(
      "#include \"util/errors.hpp\"\n"
      "#include <vector>\n");
  ASSERT_EQ(idx.includes.size(), 2u);
  EXPECT_EQ(idx.includes[0].target, "util/errors.hpp");
  EXPECT_FALSE(idx.includes[0].angle);
  EXPECT_EQ(idx.includes[0].line, 1);
  EXPECT_EQ(idx.includes[1].target, "vector");
  EXPECT_TRUE(idx.includes[1].angle);
}

TEST(IndexTest, SplicedIncludeDirectiveIsOneLogicalLine) {
  // Backslash-newline in the middle of the directive: still one include.
  const FileIndex idx = index_of("#include \\\n\"util/errors.hpp\"\n");
  ASSERT_EQ(idx.includes.size(), 1u);
  EXPECT_EQ(idx.includes[0].target, "util/errors.hpp");
}

TEST(IndexTest, IncludeTokensOnSeparatePhysicalLinesAreNotADirective) {
  // Without the splice, '#include' and the string are different logical
  // lines — not a directive (and not valid C++ either).
  const FileIndex idx = index_of("#include\n\"util/errors.hpp\"\n");
  EXPECT_TRUE(idx.includes.empty());
}

TEST(IndexTest, FindsFunctionDefinitionSpans) {
  const FileIndex idx = index_of(
      "int add(int a, int b) { return a + b; }\n"
      "void noop() {}\n");
  ASSERT_EQ(idx.functions.size(), 2u);
  EXPECT_EQ(idx.functions[0].name, "add");
  EXPECT_EQ(idx.functions[0].line, 1);
  EXPECT_EQ(idx.functions[1].name, "noop");
}

TEST(IndexTest, SkipsCallsAndControlFlow) {
  const FileIndex idx = index_of(
      "void f() {\n"
      "  if (g()) { h(); }\n"
      "  while (true) { obj.method(); }\n"
      "}\n");
  ASSERT_EQ(idx.functions.size(), 1u);
  EXPECT_EQ(idx.functions[0].name, "f");
}

TEST(IndexTest, HandlesCtorInitListAndQualifiers) {
  const FileIndex idx = index_of(
      "Widget::Widget(int n) : size_(n), data_(n, 0) { init(); }\n"
      "int Widget::count() const noexcept { return size_; }\n");
  ASSERT_EQ(idx.functions.size(), 2u);
  EXPECT_EQ(idx.functions[0].name, "Widget");
  EXPECT_EQ(idx.functions[1].name, "count");
}

TEST(IndexTest, EnclosingFunctionPicksInnermostSpan) {
  const FileIndex idx = index_of(
      "void outer() {\n"
      "  target();\n"
      "}\n"
      "void other() { decoy(); }\n");
  // Find the 'target' token and ask which function holds it.
  std::size_t target = idx.tokens.size();
  for (std::size_t i = 0; i < idx.tokens.size(); ++i) {
    if (idx.tokens[i].text == "target") target = i;
  }
  ASSERT_LT(target, idx.tokens.size());
  const FunctionDef* def = enclosing_function(idx, target);
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(def->name, "outer");
  // File-scope tokens belong to no function.
  EXPECT_EQ(enclosing_function(idx, 0), nullptr);
}

TEST(IncludeGraphTest, ModuleOfPath) {
  EXPECT_EQ(module_of_path("src/util/errors.hpp"), "util");
  EXPECT_EQ(module_of_path("src/core/session.cpp"), "core");
  EXPECT_EQ(module_of_path("tools/sgp_lint.cpp"), "tools");
  EXPECT_EQ(module_of_path("bench/bench_e2_noise.cpp"), "bench");
  EXPECT_EQ(module_of_path("src/unknown/x.cpp"), "");
  EXPECT_EQ(module_of_path("README.md"), "");
}

TEST(IncludeGraphTest, LayeringDirectionMatters) {
  EXPECT_TRUE(layering_allows("core", "util"));
  EXPECT_FALSE(layering_allows("util", "core"));
  EXPECT_TRUE(layering_allows("dp", "random"));
  EXPECT_FALSE(layering_allows("random", "dp"));
  // The instrumentation exception: util and obs may include each other.
  EXPECT_TRUE(layering_allows("util", "obs"));
  EXPECT_TRUE(layering_allows("obs", "util"));
  // Same module is always fine; unknown modules never are.
  EXPECT_TRUE(layering_allows("graph", "graph"));
  EXPECT_FALSE(layering_allows("", "util"));
}

TEST(IncludeGraphTest, TopLevelConsumersMayUseEverySrcModule) {
  for (const char* top : {"tools", "bench", "tests", "examples"}) {
    for (const char* module :
         {"util", "obs", "dp", "random", "linalg", "graph", "cluster",
          "ranking", "core", "analysis"}) {
      EXPECT_TRUE(layering_allows(top, module)) << top << " -> " << module;
    }
  }
}

TEST(IncludeGraphTest, AllowedEdgeTableIsExportedForDocs) {
  // docs/static_analysis.md renders this table; a drift there is caught by
  // comparing against the exported edges.
  const auto& edges = allowed_module_edges();
  EXPECT_FALSE(edges.empty());
  bool util_to_obs = false, util_to_core = false;
  for (const auto& [from, to] : edges) {
    util_to_obs = util_to_obs || (from == "util" && to == "obs");
    util_to_core = util_to_core || (from == "util" && to == "core");
  }
  EXPECT_TRUE(util_to_obs);
  EXPECT_FALSE(util_to_core);
}

TEST(IncludeGraphTest, ResolveIncludeTriesRootedAndRelative) {
  const std::vector<std::string> repo = {
      "src/core/session.hpp", "src/core/theory.hpp", "src/util/errors.hpp"};
  IncludeDirective inc{"util/errors.hpp", 1, false};
  EXPECT_EQ(resolve_include("src/core/session.cpp", inc, repo),
            "src/util/errors.hpp");
  IncludeDirective sibling{"theory.hpp", 1, false};
  EXPECT_EQ(resolve_include("src/core/session.cpp", sibling, repo),
            "src/core/theory.hpp");
  IncludeDirective external{"vector", 1, true};
  EXPECT_EQ(resolve_include("src/core/session.cpp", external, repo), "");
  IncludeDirective missing{"nope/gone.hpp", 1, false};
  EXPECT_EQ(resolve_include("src/core/session.cpp", missing, repo), "");
}

TEST(IncludeGraphTest, DetectsLayeringViolationAndCycle) {
  std::vector<FileIncludeSummary> summaries = {
      {"src/core/a.hpp", {{"core/b.hpp", 3, false}}},
      {"src/core/b.hpp", {{"core/a.hpp", 4, false}}},
      {"src/util/up.hpp", {{"core/a.hpp", 5, false}}},
  };
  const std::vector<Finding> findings = check_include_graph(summaries);
  ASSERT_EQ(findings.size(), 2u);
  // Sorted by file: the cycle's back edge reports on b.hpp, the layering
  // violation on util/up.hpp.
  EXPECT_EQ(findings[0].rule, "R6");
  EXPECT_EQ(findings[0].file, "src/core/b.hpp");
  EXPECT_NE(findings[0].message.find("include cycle"), std::string::npos);
  EXPECT_EQ(findings[1].file, "src/util/up.hpp");
  EXPECT_NE(findings[1].message.find("util must not include core"),
            std::string::npos);
}

TEST(IncludeGraphTest, CleanGraphYieldsNoFindings) {
  std::vector<FileIncludeSummary> summaries = {
      {"src/core/a.hpp", {{"util/e.hpp", 1, false}, {"vector", 2, true}}},
      {"src/util/e.hpp", {}},
  };
  EXPECT_TRUE(check_include_graph(summaries).empty());
}

}  // namespace
}  // namespace sgp::analysis
