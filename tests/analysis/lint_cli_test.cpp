// Exit-code and usage-error contract of the sgp_lint binary itself. The
// library tests cover rule behavior; these spawn the real tool (via the
// shell, capturing stderr to a file) and pin the CLI surface:
//
//   0  clean tree          1  findings          2  usage error
//
// An unknown --rules id must fail fast with exit 2 and list every valid
// id, so a typo'd CI invocation cannot silently lint nothing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct CliResult {
  int exit_code = -1;
  std::string stderr_text;
};

CliResult run_lint_cli(const std::string& args) {
  const std::string err_path =
      (std::filesystem::path(::testing::TempDir()) / "sgp_lint_cli_err.txt")
          .string();
  const std::string cmd = std::string(SGP_LINT_BIN) + " " + args + " 2> '" +
                          err_path + "' > /dev/null";
  const int status = std::system(cmd.c_str());
  CliResult result;
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  std::ifstream in(err_path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  result.stderr_text = buf.str();
  std::filesystem::remove(err_path);
  return result;
}

TEST(LintCliTest, UnknownRuleIdExitsUsageErrorListingValidIds) {
  const CliResult result = run_lint_cli(
      "--root " SGP_LINT_FIXTURE_DIR " --no-baseline --rules R9x");
  EXPECT_EQ(result.exit_code, 2) << result.stderr_text;
  EXPECT_NE(result.stderr_text.find("unknown rule id: R9x"),
            std::string::npos)
      << result.stderr_text;
  EXPECT_NE(result.stderr_text.find(
                "valid: R1 R2 R3 R4 R5 R6 R7 R8 R9 R10"),
            std::string::npos)
      << result.stderr_text;
}

TEST(LintCliTest, UnknownFormatExitsUsageError) {
  const CliResult result = run_lint_cli(
      "--root " SGP_LINT_FIXTURE_DIR " --no-baseline --format xml");
  EXPECT_EQ(result.exit_code, 2) << result.stderr_text;
  EXPECT_NE(result.stderr_text.find("--format"), std::string::npos);
}

TEST(LintCliTest, FindingsExitOne) {
  const CliResult result =
      run_lint_cli("--root " SGP_LINT_FIXTURE_DIR " --no-baseline");
  EXPECT_EQ(result.exit_code, 1) << result.stderr_text;
}

TEST(LintCliTest, RuleFilterStillExitsOneWhenItFires) {
  const CliResult result = run_lint_cli(
      "--root " SGP_LINT_FIXTURE_DIR " --no-baseline --rules R6");
  EXPECT_EQ(result.exit_code, 1) << result.stderr_text;
}

TEST(LintCliTest, ScanSummaryGoesToStderr) {
  const CliResult result =
      run_lint_cli("--root " SGP_LINT_FIXTURE_DIR " --no-baseline");
  EXPECT_NE(result.stderr_text.find("file(s) scanned"), std::string::npos)
      << result.stderr_text;
}

}  // namespace
