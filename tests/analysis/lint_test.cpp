// End-to-end tests for the sgp-lint driver: fixture-tree walk, baseline
// round-trip, golden JSON report pin, and report-schema validation. The
// fixture tree (tests/analysis/lint_fixtures/) mirrors the repo layout so
// the path-scoped rules behave exactly as on the real tree.
#include "analysis/lint.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/errors.hpp"
#include "util/json.hpp"

namespace sgp::analysis {
namespace {

LintOptions fixture_options() {
  LintOptions opt;
  opt.root = SGP_LINT_FIXTURE_DIR;
  return opt;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spill(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out << text;
}

TEST(LintWalkTest, ListsFixtureSourcesSorted) {
  const auto files = list_source_files(SGP_LINT_FIXTURE_DIR);
  const std::vector<std::string> expected = {
      "src/core/bad_header.hpp",
      "src/core/clean.cpp",
      "src/core/clean_header.hpp",
      "src/core/concurrency_violations.cpp",
      "src/core/fault_registry_clean.cpp",
      "src/core/fault_registry_violations.cpp",
      "src/core/privacy_flow_clean.cpp",
      "src/core/privacy_flow_violations.cpp",
      "src/core/span_hygiene_clean.cpp",
      "src/core/span_hygiene_violations.cpp",
      "src/core/violations.cpp",
      "src/dp/params.cpp",
      "src/graph/cycle_a.hpp",
      "src/graph/cycle_b.hpp",
      "src/linalg/bad_inl_use.cpp",
      "src/random/engine.cpp",
      "src/random/kernel_body.inl",
      "src/random/uses_kernel.cpp",
      "src/util/bad_layering.hpp",
      "src/util/thread_owner.cpp",
      "tools/bad_tool.cpp",
      "tools/good_tool.cpp",
  };
  EXPECT_EQ(files, expected);
}

TEST(LintWalkTest, MissingRootThrowsIoError) {
  EXPECT_THROW(list_source_files("/nonexistent/sgp-lint-root"),
               util::IoError);
  EXPECT_THROW(load_source_file(SGP_LINT_FIXTURE_DIR, "nope.cpp"),
               util::IoError);
}

TEST(LintRunTest, FixtureTreeYieldsExpectedFindings) {
  const LintResult result = run_lint(fixture_options());
  EXPECT_EQ(result.files_scanned, 22u);
  EXPECT_EQ(result.suppressed, 0u);
  ASSERT_EQ(result.findings.size(), 22u);
  // Sorted by (file, line, rule, snippet); the clean fixtures contribute
  // nothing, the violating ones contribute exactly their planted sites.
  std::vector<std::pair<std::string, std::string>> got;
  for (const Finding& f : result.findings) got.emplace_back(f.rule, f.snippet);
  const std::vector<std::pair<std::string, std::string>> expected = {
      // src/core/bad_header.hpp
      {"R4", "#pragma once"},
      {"R4", "using namespace"},
      // src/core/concurrency_violations.cpp — one per R7 family
      {"R7", "std::thread"},
      {"R7", ".lock()"},
      {"R7", "sleep_for()"},
      {"R7", "submit()"},
      // src/core/fault_registry_violations.cpp
      {"R9", "io.raed"},
      // src/core/privacy_flow_violations.cpp
      {"R8", "write_published_header"},
      {"R8", "sigma = ..."},
      {"R8", "epsilon_head = ..."},
      // src/core/span_hygiene_violations.cpp
      {"R10", "ScopedTimer(...)"},
      {"R10", "log_event"},
      // src/core/violations.cpp
      {"R1", "<random>"},
      {"R1", "mt19937"},
      {"R1", "rand"},
      {"R3", "core.unregistered_metric"},
      {"R5", "epsilon = 1.5"},
      {"R2", "std::runtime_error"},
      // src/graph/cycle_b.hpp — the back edge closing the include cycle
      {"R6", "src/graph/cycle_a.hpp"},
      // src/linalg/bad_inl_use.cpp — *.inl escaping src/random/
      {"R6", "random/kernel_body.inl"},
      // src/util/bad_layering.hpp — util reaching up into core
      {"R6", "core/clean_header.hpp"},
      // tools/bad_tool.cpp
      {"R2", "main"},
  };
  EXPECT_EQ(got, expected);
  // Every finding ships a fix-it hint.
  for (const Finding& f : result.findings) {
    EXPECT_FALSE(f.fix.empty()) << f.rule << " " << f.snippet;
  }
}

TEST(LintRunTest, ExcludePrefixesSkipFiles) {
  LintOptions opt = fixture_options();
  opt.exclude_prefixes = {"src/core/"};
  const LintResult result = run_lint(opt);
  EXPECT_EQ(result.files_scanned, 11u);
  // Excluding src/core/ also drops the util→core layering finding: the
  // include target leaves the walked set, so the edge cannot resolve.
  ASSERT_EQ(result.findings.size(), 3u);
  EXPECT_EQ(result.findings[0].file, "src/graph/cycle_b.hpp");
  EXPECT_EQ(result.findings[1].file, "src/linalg/bad_inl_use.cpp");
  EXPECT_EQ(result.findings[2].file, "tools/bad_tool.cpp");
}

TEST(LintRunTest, RuleFilterRestrictsFindings) {
  LintOptions opt = fixture_options();
  opt.rules = {"R1"};
  const LintResult result = run_lint(opt);
  ASSERT_EQ(result.findings.size(), 3u);
  for (const Finding& f : result.findings) EXPECT_EQ(f.rule, "R1");
}

TEST(BaselineTest, FromFindingsSuppressesEverything) {
  LintResult result = run_lint(fixture_options());
  const Baseline baseline = Baseline::from_findings(result.findings);
  EXPECT_FALSE(baseline.empty());
  const std::size_t suppressed = baseline.apply(result.findings);
  EXPECT_EQ(suppressed, 22u);
  EXPECT_TRUE(result.findings.empty());
}

TEST(BaselineTest, RoundTripsThroughDisk) {
  LintResult result = run_lint(fixture_options());
  const std::string path = ::testing::TempDir() + "sgp_lint_baseline.json";
  Baseline::from_findings(result.findings).save(path);
  const Baseline reloaded = Baseline::load(path);
  EXPECT_EQ(reloaded.apply(result.findings), 22u);
  EXPECT_TRUE(result.findings.empty());
  // The serialized form is itself schema-tagged valid JSON.
  const util::JsonValue doc = util::parse_json(slurp(path));
  EXPECT_EQ(doc.find("schema")->as_string(), "sgp-lint-baseline-v1");
}

TEST(BaselineTest, KeyIgnoresLineNumbers) {
  // Edits above a grandfathered site shift its line; the baseline must
  // keep suppressing it.
  Finding f{"R1", "src/x.cpp", 10, "mt19937", "msg"};
  const Baseline baseline = Baseline::from_findings({f});
  f.line = 99;
  std::vector<Finding> shifted = {f};
  EXPECT_EQ(baseline.apply(shifted), 1u);
  EXPECT_TRUE(shifted.empty());
}

TEST(BaselineTest, CountsCapSuppression) {
  const Finding f{"R1", "src/x.cpp", 1, "mt19937", "msg"};
  const Baseline baseline = Baseline::from_findings({f});  // count = 1
  std::vector<Finding> two = {f, f};
  EXPECT_EQ(baseline.apply(two), 1u);
  ASSERT_EQ(two.size(), 1u);  // the second occurrence is a new violation
}

TEST(BaselineTest, EmptyBaselineSerializesAndSuppressesNothing) {
  const Baseline empty = Baseline::from_findings({});
  EXPECT_TRUE(empty.empty());
  const util::JsonValue doc = util::parse_json(empty.to_json());
  EXPECT_TRUE(doc.find("entries")->as_array().empty());
  std::vector<Finding> fs = {{"R1", "src/x.cpp", 1, "mt19937", "msg"}};
  EXPECT_EQ(empty.apply(fs), 0u);
  EXPECT_EQ(fs.size(), 1u);
}

TEST(BaselineTest, LoadRejectsBadInput) {
  const std::string dir = ::testing::TempDir();
  EXPECT_THROW(Baseline::load(dir + "does_not_exist.json"), util::IoError);
  spill(dir + "bad_syntax.json", "{not json");
  EXPECT_THROW(Baseline::load(dir + "bad_syntax.json"), util::ParseError);
  spill(dir + "bad_schema.json", R"({"schema": "v0", "entries": []})");
  EXPECT_THROW(Baseline::load(dir + "bad_schema.json"), util::ParseError);
  spill(dir + "bad_entry.json",
        R"({"schema": "sgp-lint-baseline-v1",
            "entries": [{"rule": "R1", "file": "x", "snippet": "y",
                         "count": 0}]})");
  EXPECT_THROW(Baseline::load(dir + "bad_entry.json"), util::ParseError);
}

TEST(LintReportTest, JsonReportMatchesGolden) {
  // Full-document pin: any change to the report schema, ordering, or the
  // fixture rules must be deliberate enough to regenerate the golden
  // (build/tools/sgp_lint --root tests/analysis/lint_fixtures
  //  --no-baseline --format json --out tests/analysis/golden_report.json).
  const LintResult result = run_lint(fixture_options());
  std::ostringstream out;
  write_lint_report_json(result, fixture_options(), out);
  EXPECT_EQ(out.str(), slurp(SGP_LINT_GOLDEN_REPORT));
}

TEST(LintReportTest, JsonReportValidates) {
  const LintResult result = run_lint(fixture_options());
  std::ostringstream out;
  write_lint_report_json(result, fixture_options(), out);
  const util::JsonValue doc = util::parse_json(out.str());
  EXPECT_EQ(validate_lint_report_json(doc), std::nullopt);
}

TEST(LintReportTest, ValidatorRejectsSchemaViolations) {
  EXPECT_TRUE(validate_lint_report_json(util::parse_json("{}")).has_value());
  EXPECT_TRUE(validate_lint_report_json(util::parse_json("[1]")).has_value());
  const std::string wrong_schema = R"({"schema": "other", "rules": [],
      "files_scanned": 0, "suppressed": 0, "findings": []})";
  EXPECT_TRUE(
      validate_lint_report_json(util::parse_json(wrong_schema)).has_value());
  const std::string bad_line = R"({"schema": "sgp-lint-report-v1",
      "rules": ["R1"], "files_scanned": 1, "suppressed": 0,
      "findings": [{"rule": "R1", "file": "x.cpp", "line": 0,
                    "snippet": "s", "message": "m"}]})";
  EXPECT_TRUE(
      validate_lint_report_json(util::parse_json(bad_line)).has_value());
}

TEST(LintReportTest, TextReportFormat) {
  const LintResult result = run_lint(fixture_options());
  std::ostringstream out;
  write_lint_report_text(result, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("src/core/violations.cpp:5: [R1]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("    fix: "), std::string::npos) << text;
  EXPECT_NE(text.find("22 finding(s), 0 baselined, 22 file(s) scanned"),
            std::string::npos)
      << text;
}

}  // namespace
}  // namespace sgp::analysis
