#include "linalg/qr.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "random/distributions.hpp"
#include "random/rng.hpp"

namespace sgp::linalg {
namespace {

DenseMatrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  random::Rng rng(seed);
  DenseMatrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = random::normal(rng);
  }
  return m;
}

void expect_orthonormal_columns(const DenseMatrix& q, double tol = 1e-10) {
  const auto gram = q.gram();
  for (std::size_t i = 0; i < q.cols(); ++i) {
    for (std::size_t j = 0; j < q.cols(); ++j) {
      EXPECT_NEAR(gram(i, j), i == j ? 1.0 : 0.0, tol)
          << "gram(" << i << "," << j << ")";
    }
  }
}

void expect_reconstructs(const DenseMatrix& a, const QrResult& qr,
                         double tol = 1e-10) {
  const auto recon = qr.q.multiply(qr.r);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(recon(i, j), a(i, j), tol);
    }
  }
}

TEST(QrTest, SquareMatrix) {
  const auto a = random_matrix(5, 5, 1);
  const auto qr = qr_decompose(a);
  expect_orthonormal_columns(qr.q);
  expect_reconstructs(a, qr);
}

TEST(QrTest, TallMatrix) {
  const auto a = random_matrix(50, 8, 2);
  const auto qr = qr_decompose(a);
  EXPECT_EQ(qr.q.rows(), 50u);
  EXPECT_EQ(qr.q.cols(), 8u);
  EXPECT_EQ(qr.r.rows(), 8u);
  expect_orthonormal_columns(qr.q);
  expect_reconstructs(a, qr);
}

TEST(QrTest, RIsUpperTriangular) {
  const auto qr = qr_decompose(random_matrix(10, 4, 3));
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_DOUBLE_EQ(qr.r(i, j), 0.0);
    }
  }
}

TEST(QrTest, WideMatrixThrows) {
  EXPECT_THROW(qr_decompose(random_matrix(3, 5, 4)), std::invalid_argument);
}

TEST(QrTest, SingleColumn) {
  DenseMatrix a(3, 1, {3, 0, 4});
  const auto qr = qr_decompose(a);
  EXPECT_NEAR(std::fabs(qr.r(0, 0)), 5.0, 1e-12);
  expect_reconstructs(a, qr);
}

TEST(QrTest, RankDeficientDoesNotCrash) {
  // Second column is a multiple of the first.
  DenseMatrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = 2.0 * static_cast<double>(i + 1);
  }
  const auto qr = qr_decompose(a);
  EXPECT_NEAR(std::fabs(qr.r(1, 1)), 0.0, 1e-10);
  expect_reconstructs(a, qr, 1e-9);
}

TEST(QrTest, ZeroColumnHandled) {
  DenseMatrix a(3, 2);
  a(0, 1) = 1.0;  // first column all zeros
  const auto qr = qr_decompose(a);
  expect_reconstructs(a, qr, 1e-12);
}

TEST(QrTest, OrthonormalizeColumnsIdempotentSpan) {
  const auto a = random_matrix(30, 5, 5);
  const auto q = orthonormalize_columns(a);
  expect_orthonormal_columns(q);
  // Q spans the same space: A = Q (QᵀA).
  const auto coeff = q.transpose_multiply(a);
  const auto recon = q.multiply(coeff);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(recon(i, j), a(i, j), 1e-9);
    }
  }
}

TEST(QrTest, NearlyDependentColumnsStayOrthonormal) {
  // Classic Gram–Schmidt would lose orthogonality here; Householder must not.
  DenseMatrix a(20, 3);
  random::Rng rng(6);
  for (std::size_t i = 0; i < 20; ++i) {
    const double base = random::normal(rng);
    a(i, 0) = base;
    a(i, 1) = base + 1e-10 * random::normal(rng);
    a(i, 2) = base + 1e-10 * random::normal(rng);
  }
  const auto q = orthonormalize_columns(a);
  expect_orthonormal_columns(q, 1e-8);
}

}  // namespace
}  // namespace sgp::linalg
