#include "linalg/eigen_sym.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "random/distributions.hpp"
#include "random/rng.hpp"

namespace sgp::linalg {
namespace {

DenseMatrix random_symmetric(std::size_t n, std::uint64_t seed) {
  random::Rng rng(seed);
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = random::normal(rng);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

void expect_eigen_valid(const DenseMatrix& a, const EigenResult& res,
                        double tol = 1e-8) {
  const std::size_t n = a.rows();
  ASSERT_EQ(res.values.size(), n);
  for (std::size_t j = 0; j < n; ++j) {
    const auto v = res.vectors.column(j);
    const auto av = a.multiply_vector(v);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(av[i], res.values[j] * v[i], tol)
          << "eigenpair " << j << " row " << i;
    }
  }
  // Orthonormality of eigenvectors.
  const auto gram = res.vectors.gram();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_NEAR(gram(i, j), i == j ? 1.0 : 0.0, tol);
    }
  }
}

TEST(JacobiTest, DiagonalMatrix) {
  DenseMatrix a(3, 3);
  a(0, 0) = 3;
  a(1, 1) = -1;
  a(2, 2) = 2;
  const auto res = jacobi_eigen(a);
  EXPECT_DOUBLE_EQ(res.values[0], 3);
  EXPECT_DOUBLE_EQ(res.values[1], 2);
  EXPECT_DOUBLE_EQ(res.values[2], -1);
}

TEST(JacobiTest, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  DenseMatrix a(2, 2, {2, 1, 1, 2});
  const auto res = jacobi_eigen(a);
  EXPECT_NEAR(res.values[0], 3.0, 1e-12);
  EXPECT_NEAR(res.values[1], 1.0, 1e-12);
  expect_eigen_valid(a, res, 1e-12);
}

TEST(JacobiTest, RandomSymmetricSatisfiesDefinition) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto a = random_symmetric(12, seed);
    const auto res = jacobi_eigen(a);
    expect_eigen_valid(a, res);
    EXPECT_TRUE(std::is_sorted(res.values.begin(), res.values.end(),
                               std::greater<double>()));
  }
}

TEST(JacobiTest, TraceEqualsEigenvalueSum) {
  const auto a = random_symmetric(15, 9);
  const auto res = jacobi_eigen(a);
  double trace = 0, sum = 0;
  for (std::size_t i = 0; i < 15; ++i) {
    trace += a(i, i);
    sum += res.values[i];
  }
  EXPECT_NEAR(trace, sum, 1e-9);
}

TEST(JacobiTest, MagnitudeOrdering) {
  DenseMatrix a(2, 2);
  a(0, 0) = -5;
  a(1, 1) = 3;
  const auto res = jacobi_eigen(a, EigenOrder::kDescendingMagnitude);
  EXPECT_DOUBLE_EQ(res.values[0], -5);
  EXPECT_DOUBLE_EQ(res.values[1], 3);
}

TEST(JacobiTest, AsymmetricInputThrows) {
  DenseMatrix a(2, 2, {1, 2, 3, 4});
  EXPECT_THROW(jacobi_eigen(a), std::invalid_argument);
}

TEST(JacobiTest, NonSquareThrows) {
  DenseMatrix a(2, 3);
  EXPECT_THROW(jacobi_eigen(a), std::invalid_argument);
}

TEST(JacobiTest, OneByOne) {
  DenseMatrix a(1, 1, {7.0});
  const auto res = jacobi_eigen(a);
  EXPECT_DOUBLE_EQ(res.values[0], 7.0);
  EXPECT_DOUBLE_EQ(res.vectors(0, 0), 1.0);
}

TEST(TridiagonalTest, DiagonalOnly) {
  const auto res = tridiagonal_eigen({5, 1, 3}, {0, 0});
  EXPECT_NEAR(res.values[0], 5, 1e-12);
  EXPECT_NEAR(res.values[1], 3, 1e-12);
  EXPECT_NEAR(res.values[2], 1, 1e-12);
}

TEST(TridiagonalTest, Known2x2) {
  // [[0,1],[1,0]] → ±1.
  const auto res = tridiagonal_eigen({0, 0}, {1});
  EXPECT_NEAR(res.values[0], 1.0, 1e-12);
  EXPECT_NEAR(res.values[1], -1.0, 1e-12);
}

TEST(TridiagonalTest, PathGraphLaplacianSpectrum) {
  // Laplacian of the path P4: known eigenvalues 2 - 2cos(kπ/4), k=0..3.
  const auto res =
      tridiagonal_eigen({1, 2, 2, 1}, {-1, -1, -1}, EigenOrder::kDescending);
  std::vector<double> expect;
  for (int k_i = 3; k_i >= 0; --k_i) {
    expect.push_back(2.0 - 2.0 * std::cos(k_i * M_PI / 4.0));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(res.values[i], expect[i], 1e-10) << i;
  }
}

TEST(TridiagonalTest, MatchesJacobiOnRandomTridiagonal) {
  random::Rng rng(11);
  const std::size_t n = 20;
  std::vector<double> diag(n), off(n - 1);
  for (auto& v : diag) v = random::normal(rng);
  for (auto& v : off) v = random::normal(rng);

  DenseMatrix dense(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    dense(i, i) = diag[i];
    if (i + 1 < n) {
      dense(i, i + 1) = off[i];
      dense(i + 1, i) = off[i];
    }
  }
  const auto tri = tridiagonal_eigen(diag, off);
  const auto jac = jacobi_eigen(dense);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(tri.values[i], jac.values[i], 1e-9) << i;
  }
  // Eigenvectors satisfy the definition.
  for (std::size_t j = 0; j < n; ++j) {
    const auto v = tri.vectors.column(j);
    const auto av = dense.multiply_vector(v);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(av[i], tri.values[j] * v[i], 1e-8);
    }
  }
}

TEST(TridiagonalTest, SingleElement) {
  const auto res = tridiagonal_eigen({4.0}, {});
  EXPECT_DOUBLE_EQ(res.values[0], 4.0);
}

TEST(TridiagonalTest, SizeMismatchThrows) {
  EXPECT_THROW(tridiagonal_eigen({1, 2}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(tridiagonal_eigen({}, {}), std::invalid_argument);
}

TEST(TridiagonalTest, EigenvectorsOrthonormal) {
  random::Rng rng(13);
  const std::size_t n = 15;
  std::vector<double> diag(n), off(n - 1);
  for (auto& v : diag) v = random::normal(rng);
  for (auto& v : off) v = random::normal(rng);
  const auto res = tridiagonal_eigen(diag, off);
  const auto gram = res.vectors.gram();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_NEAR(gram(i, j), i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace sgp::linalg
