#include "linalg/power_iteration.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "linalg/eigen_sym.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"

namespace sgp::linalg {
namespace {

SymmetricOperator dense_op(const DenseMatrix& a) {
  return {a.rows(), [&a](std::span<const double> x, std::span<double> y) {
            const auto r = a.multiply_vector(x);
            std::copy(r.begin(), r.end(), y.begin());
          }};
}

DenseMatrix random_symmetric(std::size_t n, std::uint64_t seed) {
  random::Rng rng(seed);
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = random::normal(rng);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

TEST(PowerIterationTest, DominantEigenpairOfDiagonal) {
  DenseMatrix a(4, 4);
  a(0, 0) = 1;
  a(1, 1) = -7;
  a(2, 2) = 3;
  a(3, 3) = 5;
  PowerIterationOptions opt;
  opt.k = 2;
  const auto res = power_iteration_topk(dense_op(a), opt);
  EXPECT_NEAR(res.values[0], -7.0, 1e-7);
  EXPECT_NEAR(res.values[1], 5.0, 1e-6);
  EXPECT_TRUE(res.converged);
}

TEST(PowerIterationTest, AgreesWithJacobiOnMagnitudeOrder) {
  const auto a = random_symmetric(30, 3);
  const auto exact = jacobi_eigen(a, EigenOrder::kDescendingMagnitude);
  PowerIterationOptions opt;
  opt.k = 3;
  opt.max_iterations = 20000;
  opt.tolerance = 1e-12;
  const auto res = power_iteration_topk(dense_op(a), opt);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(res.values[i], exact.values[i], 1e-4) << i;
  }
}

TEST(PowerIterationTest, EigenvectorsSatisfyDefinition) {
  const auto a = random_symmetric(25, 4);
  PowerIterationOptions opt;
  opt.k = 2;
  opt.max_iterations = 20000;
  opt.tolerance = 1e-12;
  const auto res = power_iteration_topk(dense_op(a), opt);
  for (std::size_t j = 0; j < 2; ++j) {
    const auto v = res.vectors.column(j);
    const auto av = a.multiply_vector(v);
    for (std::size_t i = 0; i < 25; ++i) {
      ASSERT_NEAR(av[i], res.values[j] * v[i], 1e-4);
    }
  }
}

TEST(PowerIterationTest, VectorsOrthonormal) {
  const auto a = random_symmetric(20, 5);
  PowerIterationOptions opt;
  opt.k = 4;
  opt.max_iterations = 20000;
  const auto res = power_iteration_topk(dense_op(a), opt);
  const auto gram = res.vectors.gram();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(gram(i, j), i == j ? 1.0 : 0.0, 1e-6);
    }
  }
}

TEST(PowerIterationTest, ZeroOperator) {
  SymmetricOperator op{10, [](std::span<const double>, std::span<double> y) {
                         std::fill(y.begin(), y.end(), 0.0);
                       }};
  PowerIterationOptions opt;
  opt.k = 2;
  const auto res = power_iteration_topk(op, opt);
  EXPECT_NEAR(res.values[0], 0.0, 1e-12);
  EXPECT_NEAR(res.values[1], 0.0, 1e-12);
}

TEST(PowerIterationTest, DeterministicForSeed) {
  const auto a = random_symmetric(15, 6);
  PowerIterationOptions opt;
  opt.k = 2;
  opt.seed = 42;
  const auto r1 = power_iteration_topk(dense_op(a), opt);
  const auto r2 = power_iteration_topk(dense_op(a), opt);
  EXPECT_EQ(r1.vectors, r2.vectors);
}

TEST(PowerIterationTest, InvalidArgsThrow) {
  const auto a = random_symmetric(5, 7);
  const auto op = dense_op(a);
  PowerIterationOptions opt;
  opt.k = 0;
  EXPECT_THROW(power_iteration_topk(op, opt), std::invalid_argument);
  opt.k = 6;
  EXPECT_THROW(power_iteration_topk(op, opt), std::invalid_argument);
}

TEST(PowerIterationCrossCheck, MatchesLanczosOnSparseSpectrum) {
  // Independent solvers agreeing is strong evidence both are right.
  const auto a = random_symmetric(40, 8);
  LanczosOptions lopt;
  lopt.k = 3;
  lopt.order = EigenOrder::kDescendingMagnitude;
  lopt.max_iterations = 40;
  const auto lanczos = lanczos_topk(dense_op(a), lopt);
  PowerIterationOptions popt;
  popt.k = 3;
  popt.max_iterations = 50000;
  popt.tolerance = 1e-13;
  const auto power = power_iteration_topk(dense_op(a), popt);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(power.values[i], lanczos.values[i], 1e-4) << i;
  }
}

}  // namespace
}  // namespace sgp::linalg
