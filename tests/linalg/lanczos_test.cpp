#include "linalg/lanczos.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "linalg/sparse_matrix.hpp"
#include "linalg/vector_ops.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"

namespace sgp::linalg {
namespace {

SymmetricOperator dense_op(const DenseMatrix& a) {
  return {a.rows(), [&a](std::span<const double> x, std::span<double> y) {
            const auto r = a.multiply_vector(x);
            std::copy(r.begin(), r.end(), y.begin());
          }};
}

DenseMatrix random_symmetric(std::size_t n, std::uint64_t seed) {
  random::Rng rng(seed);
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = random::normal(rng);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

TEST(LanczosTest, MatchesJacobiTopEigenvalues) {
  const auto a = random_symmetric(60, 3);
  const auto exact = jacobi_eigen(a);
  LanczosOptions opt;
  opt.k = 5;
  opt.max_iterations = 60;
  const auto approx = lanczos_topk(dense_op(a), opt);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(approx.values[i], exact.values[i], 1e-6) << i;
  }
}

TEST(LanczosTest, EigenvectorsSatisfyDefinition) {
  const auto a = random_symmetric(40, 4);
  LanczosOptions opt;
  opt.k = 3;
  opt.max_iterations = 40;
  const auto res = lanczos_topk(dense_op(a), opt);
  for (std::size_t j = 0; j < 3; ++j) {
    const auto v = res.vectors.column(j);
    const auto av = a.multiply_vector(v);
    for (std::size_t i = 0; i < 40; ++i) {
      ASSERT_NEAR(av[i], res.values[j] * v[i], 1e-5);
    }
  }
}

TEST(LanczosTest, RitzVectorsOrthonormal) {
  const auto a = random_symmetric(50, 5);
  LanczosOptions opt;
  opt.k = 4;
  opt.max_iterations = 50;
  const auto res = lanczos_topk(dense_op(a), opt);
  const auto gram = res.vectors.gram();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(gram(i, j), i == j ? 1.0 : 0.0, 1e-7);
    }
  }
}

TEST(LanczosTest, DiagonalOperatorConverges) {
  const std::size_t n = 100;
  SymmetricOperator op{n, [](std::span<const double> x, std::span<double> y) {
                         for (std::size_t i = 0; i < x.size(); ++i) {
                           y[i] = static_cast<double>(i) * x[i];
                         }
                       }};
  LanczosOptions opt;
  opt.k = 3;
  const auto res = lanczos_topk(op, opt);
  EXPECT_NEAR(res.values[0], 99.0, 1e-6);
  EXPECT_NEAR(res.values[1], 98.0, 1e-6);
  EXPECT_NEAR(res.values[2], 97.0, 1e-6);
  EXPECT_TRUE(res.converged);
}

TEST(LanczosTest, IdentityOperatorDegenerateSpectrum) {
  // All eigenvalues equal: Krylov space collapses after one step; the
  // restart logic must still deliver k orthonormal vectors.
  const std::size_t n = 30;
  SymmetricOperator op{n, [](std::span<const double> x, std::span<double> y) {
                         std::copy(x.begin(), x.end(), y.begin());
                       }};
  LanczosOptions opt;
  opt.k = 3;
  opt.max_iterations = 30;
  const auto res = lanczos_topk(op, opt);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(res.values[i], 1.0, 1e-9);
  const auto gram = res.vectors.gram();
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(gram(i, j), i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(LanczosTest, SparseAdjacencyCompleteGraph) {
  // K5 adjacency: eigenvalues 4 (once) and -1 (×4).
  std::vector<Triplet> trips;
  for (std::uint32_t i = 0; i < 5; ++i) {
    for (std::uint32_t j = 0; j < 5; ++j) {
      if (i != j) trips.push_back({i, j, 1.0});
    }
  }
  const auto a = CsrMatrix::from_triplets(5, 5, trips);
  SymmetricOperator op{5, [&a](std::span<const double> x, std::span<double> y) {
                         const auto r = a.multiply_vector(x);
                         std::copy(r.begin(), r.end(), y.begin());
                       }};
  LanczosOptions opt;
  opt.k = 2;
  opt.max_iterations = 5;
  const auto res = lanczos_topk(op, opt);
  EXPECT_NEAR(res.values[0], 4.0, 1e-8);
  EXPECT_NEAR(res.values[1], -1.0, 1e-8);
}

TEST(LanczosTest, MagnitudeOrderSelectsNegativeExtreme) {
  DenseMatrix a(3, 3);
  a(0, 0) = -10;
  a(1, 1) = 5;
  a(2, 2) = 1;
  LanczosOptions opt;
  opt.k = 1;
  opt.max_iterations = 3;
  opt.order = EigenOrder::kDescendingMagnitude;
  const auto res = lanczos_topk(dense_op(a), opt);
  EXPECT_NEAR(res.values[0], -10.0, 1e-8);
}

TEST(LanczosTest, InvalidArgumentsThrow) {
  const auto a = random_symmetric(10, 6);
  const auto op = dense_op(a);
  LanczosOptions opt;
  opt.k = 0;
  EXPECT_THROW(lanczos_topk(op, opt), std::invalid_argument);
  opt.k = 11;
  EXPECT_THROW(lanczos_topk(op, opt), std::invalid_argument);
  SymmetricOperator empty{0, nullptr};
  opt.k = 1;
  EXPECT_THROW(lanczos_topk(empty, opt), std::invalid_argument);
}

TEST(LanczosTest, DeterministicForFixedSeed) {
  const auto a = random_symmetric(30, 8);
  LanczosOptions opt;
  opt.k = 2;
  opt.max_iterations = 30;
  opt.seed = 123;
  const auto r1 = lanczos_topk(dense_op(a), opt);
  const auto r2 = lanczos_topk(dense_op(a), opt);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(r1.values[i], r2.values[i]);
  }
  EXPECT_EQ(r1.vectors, r2.vectors);
}

}  // namespace
}  // namespace sgp::linalg
