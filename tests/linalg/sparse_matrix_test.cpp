#include "linalg/sparse_matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "random/rng.hpp"

namespace sgp::linalg {
namespace {

CsrMatrix small() {
  // [1 0 2]
  // [0 0 0]
  // [3 4 0]
  return CsrMatrix::from_triplets(
      3, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {2, 0, 3.0}, {2, 1, 4.0}});
}

TEST(CsrTest, Dimensions) {
  const auto m = small();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 4u);
}

TEST(CsrTest, EmptyMatrix) {
  const auto m = CsrMatrix::from_triplets(2, 2, {});
  EXPECT_EQ(m.nnz(), 0u);
  const auto y = m.multiply_vector(std::vector<double>{1, 1});
  EXPECT_EQ(y, (std::vector<double>{0, 0}));
}

TEST(CsrTest, OutOfBoundsTripletThrows) {
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{2, 0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{0, 2, 1.0}}),
               std::invalid_argument);
}

TEST(CsrTest, DuplicatesAreSummed) {
  const auto m =
      CsrMatrix::from_triplets(1, 1, {{0, 0, 1.5}, {0, 0, 2.5}});
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 4.0);
}

TEST(CsrTest, RowAccessSorted) {
  const auto m = small();
  const auto idx = m.row_indices(2);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 1u);
  const auto val = m.row_values(2);
  EXPECT_DOUBLE_EQ(val[0], 3.0);
  EXPECT_DOUBLE_EQ(val[1], 4.0);
}

TEST(CsrTest, EmptyRow) {
  const auto m = small();
  EXPECT_EQ(m.row_indices(1).size(), 0u);
}

TEST(CsrTest, At) {
  const auto m = small();
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 4.0);
  EXPECT_THROW((void)m.at(3, 0), std::invalid_argument);
}

TEST(CsrTest, MultiplyVector) {
  const auto m = small();
  const auto y = m.multiply_vector(std::vector<double>{1, 2, 3});
  EXPECT_EQ(y, (std::vector<double>{7, 0, 11}));
}

TEST(CsrTest, TransposeMultiplyVector) {
  const auto m = small();
  const auto y = m.transpose_multiply_vector(std::vector<double>{1, 2, 3});
  EXPECT_EQ(y, (std::vector<double>{10, 12, 2}));
}

TEST(CsrTest, MultiplyVectorSizeMismatchThrows) {
  const auto m = small();
  EXPECT_THROW((void)m.multiply_vector(std::vector<double>{1, 2}),
               std::invalid_argument);
}

TEST(CsrTest, MultiplyDenseMatchesDenseReference) {
  const auto m = small();
  DenseMatrix b(3, 2, {1, 2, 3, 4, 5, 6});
  const auto fast = m.multiply_dense(b);
  const auto ref = m.to_dense().multiply(b);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(fast(i, j), ref(i, j), 1e-12);
    }
  }
}

TEST(CsrTest, ToDense) {
  const auto d = small().to_dense();
  EXPECT_DOUBLE_EQ(d(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(d(2, 0), 3.0);
}

TEST(CsrTest, IsSymmetric) {
  const auto sym = CsrMatrix::from_triplets(
      2, 2, {{0, 1, 5.0}, {1, 0, 5.0}, {0, 0, 1.0}});
  EXPECT_TRUE(sym.is_symmetric());
  EXPECT_FALSE(small().is_symmetric());
  const auto rect = CsrMatrix::from_triplets(2, 3, {});
  EXPECT_FALSE(rect.is_symmetric());
}

TEST(CsrTest, Sum) {
  EXPECT_DOUBLE_EQ(small().sum(), 10.0);
}

TEST(CsrTest, LargeRandomMatvecMatchesDense) {
  random::Rng rng(42);
  std::vector<Triplet> trips;
  const std::size_t n = 200;
  for (int e = 0; e < 2000; ++e) {
    trips.push_back({static_cast<std::uint32_t>(rng.next_below(n)),
                     static_cast<std::uint32_t>(rng.next_below(n)),
                     rng.next_double()});
  }
  const auto sp = CsrMatrix::from_triplets(n, n, trips);
  const auto dn = sp.to_dense();
  std::vector<double> x(n);
  for (auto& v : x) v = rng.next_double() - 0.5;
  const auto ys = sp.multiply_vector(x);
  const auto yd = dn.multiply_vector(x);
  for (std::size_t i = 0; i < n; ++i) ASSERT_NEAR(ys[i], yd[i], 1e-10);
  const auto ts = sp.transpose_multiply_vector(x);
  const auto td = dn.transpose_multiply_vector(x);
  for (std::size_t i = 0; i < n; ++i) ASSERT_NEAR(ts[i], td[i], 1e-10);
}

}  // namespace
}  // namespace sgp::linalg
