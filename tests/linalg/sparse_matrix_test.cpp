#include "linalg/sparse_matrix.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "random/rng.hpp"
#include "util/thread_pool.hpp"

namespace sgp::linalg {
namespace {

CsrMatrix small() {
  // [1 0 2]
  // [0 0 0]
  // [3 4 0]
  return CsrMatrix::from_triplets(
      3, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {2, 0, 3.0}, {2, 1, 4.0}});
}

TEST(CsrTest, Dimensions) {
  const auto m = small();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 4u);
}

TEST(CsrTest, EmptyMatrix) {
  const auto m = CsrMatrix::from_triplets(2, 2, {});
  EXPECT_EQ(m.nnz(), 0u);
  const auto y = m.multiply_vector(std::vector<double>{1, 1});
  EXPECT_EQ(y, (std::vector<double>{0, 0}));
}

TEST(CsrTest, OutOfBoundsTripletThrows) {
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{2, 0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{0, 2, 1.0}}),
               std::invalid_argument);
}

TEST(CsrTest, DuplicatesAreSummed) {
  const auto m =
      CsrMatrix::from_triplets(1, 1, {{0, 0, 1.5}, {0, 0, 2.5}});
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 4.0);
}

TEST(CsrTest, RowAccessSorted) {
  const auto m = small();
  const auto idx = m.row_indices(2);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 1u);
  const auto val = m.row_values(2);
  EXPECT_DOUBLE_EQ(val[0], 3.0);
  EXPECT_DOUBLE_EQ(val[1], 4.0);
}

TEST(CsrTest, EmptyRow) {
  const auto m = small();
  EXPECT_EQ(m.row_indices(1).size(), 0u);
}

TEST(CsrTest, At) {
  const auto m = small();
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 4.0);
  EXPECT_THROW((void)m.at(3, 0), std::invalid_argument);
}

TEST(CsrTest, MultiplyVector) {
  const auto m = small();
  const auto y = m.multiply_vector(std::vector<double>{1, 2, 3});
  EXPECT_EQ(y, (std::vector<double>{7, 0, 11}));
}

TEST(CsrTest, TransposeMultiplyVector) {
  const auto m = small();
  const auto y = m.transpose_multiply_vector(std::vector<double>{1, 2, 3});
  EXPECT_EQ(y, (std::vector<double>{10, 12, 2}));
}

TEST(CsrTest, MultiplyVectorSizeMismatchThrows) {
  const auto m = small();
  EXPECT_THROW((void)m.multiply_vector(std::vector<double>{1, 2}),
               std::invalid_argument);
}

TEST(CsrTest, MultiplyDenseMatchesDenseReference) {
  const auto m = small();
  DenseMatrix b(3, 2, {1, 2, 3, 4, 5, 6});
  const auto fast = m.multiply_dense(b);
  const auto ref = m.to_dense().multiply(b);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(fast(i, j), ref(i, j), 1e-12);
    }
  }
}

TEST(CsrTest, ToDense) {
  const auto d = small().to_dense();
  EXPECT_DOUBLE_EQ(d(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(d(2, 0), 3.0);
}

TEST(CsrTest, IsSymmetric) {
  const auto sym = CsrMatrix::from_triplets(
      2, 2, {{0, 1, 5.0}, {1, 0, 5.0}, {0, 0, 1.0}});
  EXPECT_TRUE(sym.is_symmetric());
  EXPECT_FALSE(small().is_symmetric());
  const auto rect = CsrMatrix::from_triplets(2, 3, {});
  EXPECT_FALSE(rect.is_symmetric());
}

TEST(CsrTest, Sum) {
  EXPECT_DOUBLE_EQ(small().sum(), 10.0);
}

// --- fused generated-operand product --------------------------------------

// A random symmetric matrix (the kernel's contract) plus a deterministic
// "virtual" dense operand whose entry (i, j) = f(i, j), so any tile can be
// produced on demand.
CsrMatrix random_symmetric(std::size_t n, std::uint64_t seed) {
  random::Rng rng(seed);
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  std::vector<Triplet> trips;
  for (int e = 0; e < 1500; ++e) {
    const auto r = static_cast<std::uint32_t>(rng.next_below(n));
    const auto c = static_cast<std::uint32_t>(rng.next_below(n));
    // Skip duplicates: repeated (r, c) entries would be summed, and the
    // bitwise-symmetry the fused kernel's bit-identity tests rely on must
    // not depend on duplicate-merge order.
    if (!seen.insert({std::min(r, c), std::max(r, c)}).second) continue;
    const double v = rng.next_double() - 0.5;
    trips.push_back({r, c, v});
    if (r != c) trips.push_back({c, r, v});
  }
  return CsrMatrix::from_triplets(n, n, trips);
}

double virtual_entry(std::size_t i, std::size_t j) {
  return static_cast<double>(i * 1000 + j) * 0.001 - 3.0;
}

TileFiller virtual_filler() {
  return [](std::size_t r0, std::size_t r1, std::size_t c0, std::size_t c1,
            double* out) {
    const std::size_t width = c1 - c0;
    for (std::size_t i = r0; i < r1; ++i) {
      for (std::size_t j = c0; j < c1; ++j) {
        out[(i - r0) * width + (j - c0)] = virtual_entry(i, j);
      }
    }
  };
}

TEST(CsrTest, MultiplyGeneratedMatchesMultiplyDense) {
  const std::size_t n = 120, k = 37;
  const auto a = random_symmetric(n, 9);
  DenseMatrix b(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) b(i, j) = virtual_entry(i, j);
  }
  const auto reference = a.multiply_dense(b);
  const auto fused = a.multiply_generated(k, virtual_filler());
  // Bit-identical, not just close: same per-cell accumulation order.
  EXPECT_EQ(fused, reference);
}

TEST(CsrTest, MultiplyGeneratedIdenticalAcrossTilingsAndPools) {
  const std::size_t n = 90, k = 25;
  const auto a = random_symmetric(n, 10);
  const auto reference = a.multiply_generated(k, virtual_filler());
  for (std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    for (std::size_t tile_rows : {1u, 7u, 512u}) {
      for (std::size_t tile_cols : {3u, 25u, 64u}) {
        GeneratedTileOptions opts;
        opts.pool = &pool;
        opts.tile_rows = tile_rows;
        opts.tile_cols = tile_cols;
        const auto y = a.multiply_generated(k, virtual_filler(), opts);
        ASSERT_EQ(y, reference)
            << threads << " threads, tile " << tile_rows << "x" << tile_cols;
      }
    }
  }
}

TEST(CsrTest, MultiplyGeneratedValidatesArguments) {
  const auto rect = CsrMatrix::from_triplets(2, 3, {});
  EXPECT_THROW((void)rect.multiply_generated(4, virtual_filler()),
               std::invalid_argument);
  const auto square = CsrMatrix::from_triplets(2, 2, {});
  EXPECT_THROW((void)square.multiply_generated(4, TileFiller{}),
               std::invalid_argument);
}

TEST(CsrTest, MultiplyGeneratedZeroColumns) {
  const auto a = random_symmetric(10, 11);
  const auto y = a.multiply_generated(0, virtual_filler());
  EXPECT_EQ(y.rows(), 10u);
  EXPECT_EQ(y.cols(), 0u);
}

TEST(CsrTest, LargeRandomMatvecMatchesDense) {
  random::Rng rng(42);
  std::vector<Triplet> trips;
  const std::size_t n = 200;
  for (int e = 0; e < 2000; ++e) {
    trips.push_back({static_cast<std::uint32_t>(rng.next_below(n)),
                     static_cast<std::uint32_t>(rng.next_below(n)),
                     rng.next_double()});
  }
  const auto sp = CsrMatrix::from_triplets(n, n, trips);
  const auto dn = sp.to_dense();
  std::vector<double> x(n);
  for (auto& v : x) v = rng.next_double() - 0.5;
  const auto ys = sp.multiply_vector(x);
  const auto yd = dn.multiply_vector(x);
  for (std::size_t i = 0; i < n; ++i) ASSERT_NEAR(ys[i], yd[i], 1e-10);
  const auto ts = sp.transpose_multiply_vector(x);
  const auto td = dn.transpose_multiply_vector(x);
  for (std::size_t i = 0; i < n; ++i) ASSERT_NEAR(ts[i], td[i], 1e-10);
}

}  // namespace
}  // namespace sgp::linalg
