#include "linalg/svd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "linalg/qr.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"

namespace sgp::linalg {
namespace {

DenseMatrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  random::Rng rng(seed);
  DenseMatrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = random::normal(rng);
  }
  return m;
}

/// Builds a rows×cols matrix with prescribed singular values.
DenseMatrix with_spectrum(std::size_t rows, std::size_t cols,
                          const std::vector<double>& sigma,
                          std::uint64_t seed) {
  const auto u = orthonormalize_columns(random_matrix(rows, sigma.size(), seed));
  const auto v =
      orthonormalize_columns(random_matrix(cols, sigma.size(), seed + 1));
  DenseMatrix scaled = u;
  for (std::size_t j = 0; j < sigma.size(); ++j) {
    for (std::size_t i = 0; i < rows; ++i) scaled(i, j) *= sigma[j];
  }
  return scaled.multiply(v.transposed());
}

TEST(SvdGramTest, RecoversKnownSpectrum) {
  const std::vector<double> sigma{9.0, 4.0, 1.0};
  const auto a = with_spectrum(40, 10, sigma, 1);
  const auto svd = svd_gram(a, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(svd.singular_values[i], sigma[i], 1e-8) << i;
  }
}

TEST(SvdGramTest, FullRankReconstruction) {
  const auto a = random_matrix(20, 6, 2);
  const auto svd = svd_gram(a, 6);
  // A = U Σ Vᵀ.
  DenseMatrix us = svd.u;
  for (std::size_t j = 0; j < 6; ++j) {
    for (std::size_t i = 0; i < 20; ++i) us(i, j) *= svd.singular_values[j];
  }
  const auto recon = us.multiply(svd.v.transposed());
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      ASSERT_NEAR(recon(i, j), a(i, j), 1e-8);
    }
  }
}

TEST(SvdGramTest, SingularVectorsOrthonormal) {
  const auto a = random_matrix(30, 8, 3);
  const auto svd = svd_gram(a, 5);
  const auto gu = svd.u.gram();
  const auto gv = svd.v.gram();
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(gu(i, j), i == j ? 1.0 : 0.0, 1e-8);
      EXPECT_NEAR(gv(i, j), i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(SvdGramTest, SingularValuesDescendingNonNegative) {
  const auto a = random_matrix(25, 7, 4);
  const auto svd = svd_gram(a, 7);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_GE(svd.singular_values[i], 0.0);
    if (i > 0) {
      EXPECT_LE(svd.singular_values[i], svd.singular_values[i - 1]);
    }
  }
}

TEST(SvdGramTest, RankDeficientYieldsZeroSigma) {
  // Rank-2 matrix asked for 4 factors.
  const auto a = with_spectrum(20, 8, {5.0, 2.0}, 5);
  const auto svd = svd_gram(a, 4);
  EXPECT_NEAR(svd.singular_values[0], 5.0, 1e-8);
  EXPECT_NEAR(svd.singular_values[1], 2.0, 1e-8);
  EXPECT_NEAR(svd.singular_values[2], 0.0, 1e-6);
  EXPECT_NEAR(svd.singular_values[3], 0.0, 1e-6);
}

TEST(SvdGramTest, InvalidKThrows) {
  const auto a = random_matrix(5, 3, 6);
  EXPECT_THROW(svd_gram(a, 0), std::invalid_argument);
  EXPECT_THROW(svd_gram(a, 4), std::invalid_argument);
}

TEST(SvdGramTest, FrobeniusIdentity) {
  // ‖A‖F² = Σ σᵢ².
  const auto a = random_matrix(15, 5, 7);
  const auto svd = svd_gram(a, 5);
  double sum = 0;
  for (double s : svd.singular_values) sum += s * s;
  EXPECT_NEAR(sum, a.frobenius_norm() * a.frobenius_norm(), 1e-8);
}

TEST(RandomizedSvdTest, MatchesGramOnLowRank) {
  const std::vector<double> sigma{10.0, 6.0, 3.0, 0.5};
  const auto a = with_spectrum(120, 40, sigma, 8);
  const auto exact = svd_gram(a, 4);
  const auto approx = randomized_svd(a, 4, 10, 2, 99);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(approx.singular_values[i], exact.singular_values[i], 1e-6);
  }
}

TEST(RandomizedSvdTest, LeftVectorsAlignWithExact) {
  const auto a = with_spectrum(80, 30, {8.0, 4.0, 2.0}, 9);
  const auto exact = svd_gram(a, 2);
  const auto approx = randomized_svd(a, 2, 8, 2, 100);
  for (std::size_t j = 0; j < 2; ++j) {
    double d = 0;
    for (std::size_t i = 0; i < 80; ++i) {
      d += exact.u(i, j) * approx.u(i, j);
    }
    EXPECT_NEAR(std::fabs(d), 1.0, 1e-5) << "column " << j;
  }
}

TEST(RandomizedSvdTest, DeterministicForSeed) {
  const auto a = random_matrix(50, 20, 10);
  const auto r1 = randomized_svd(a, 3, 5, 1, 42);
  const auto r2 = randomized_svd(a, 3, 5, 1, 42);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(r1.singular_values[i], r2.singular_values[i]);
  }
}

TEST(RandomizedSvdTest, InvalidKThrows) {
  const auto a = random_matrix(10, 5, 11);
  EXPECT_THROW(randomized_svd(a, 0), std::invalid_argument);
  EXPECT_THROW(randomized_svd(a, 6), std::invalid_argument);
}

TEST(RandomizedSvdTest, PowerIterationsImproveAccuracy) {
  // Slowly decaying spectrum: more power iterations → better σ estimates.
  std::vector<double> sigma(20);
  for (std::size_t i = 0; i < 20; ++i) {
    sigma[i] = 1.0 / (1.0 + static_cast<double>(i) * 0.2);
  }
  const auto a = with_spectrum(200, 60, sigma, 12);
  const auto exact = svd_gram(a, 5);
  double err0 = 0, err3 = 0;
  const auto approx0 = randomized_svd(a, 5, 5, 0, 7);
  const auto approx3 = randomized_svd(a, 5, 5, 3, 7);
  for (std::size_t i = 0; i < 5; ++i) {
    err0 += std::fabs(approx0.singular_values[i] - exact.singular_values[i]);
    err3 += std::fabs(approx3.singular_values[i] - exact.singular_values[i]);
  }
  EXPECT_LE(err3, err0 + 1e-12);
}

}  // namespace
}  // namespace sgp::linalg
