#include "linalg/vector_ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace sgp::linalg {
namespace {

TEST(VectorOpsTest, Dot) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(x, y), 32.0);
}

TEST(VectorOpsTest, DotSizeMismatchThrows) {
  const std::vector<double> x{1, 2};
  const std::vector<double> y{1};
  EXPECT_THROW((void)dot(x, y), std::invalid_argument);
}

TEST(VectorOpsTest, Norms) {
  const std::vector<double> x{3, 4};
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(norm2_squared(x), 25.0);
}

TEST(VectorOpsTest, NormOfEmptyIsZero) {
  const std::vector<double> x;
  EXPECT_DOUBLE_EQ(norm2(x), 0.0);
}

TEST(VectorOpsTest, Axpy) {
  const std::vector<double> x{1, 2, 3};
  std::vector<double> y{10, 20, 30};
  axpy(2.0, x, y);
  EXPECT_EQ(y, (std::vector<double>{12, 24, 36}));
}

TEST(VectorOpsTest, Scale) {
  std::vector<double> x{1, -2, 3};
  scale(x, -2.0);
  EXPECT_EQ(x, (std::vector<double>{-2, 4, -6}));
}

TEST(VectorOpsTest, NormalizeReturnsOriginalNorm) {
  std::vector<double> x{3, 4};
  const double n = normalize(x);
  EXPECT_DOUBLE_EQ(n, 5.0);
  EXPECT_DOUBLE_EQ(x[0], 0.6);
  EXPECT_DOUBLE_EQ(x[1], 0.8);
}

TEST(VectorOpsTest, NormalizeZeroThrows) {
  std::vector<double> x{0, 0, 0};
  EXPECT_THROW(normalize(x), std::runtime_error);
}

TEST(VectorOpsTest, Distance2) {
  const std::vector<double> x{1, 1};
  const std::vector<double> y{4, 5};
  EXPECT_DOUBLE_EQ(distance2(x, y), 5.0);
}

TEST(VectorOpsTest, Subtract) {
  const std::vector<double> x{5, 7};
  const std::vector<double> y{2, 3};
  std::vector<double> out(2);
  subtract(x, y, out);
  EXPECT_EQ(out, (std::vector<double>{3, 4}));
}

TEST(VectorOpsTest, Fill) {
  std::vector<double> x(4, 1.0);
  fill(x, -2.5);
  for (double v : x) EXPECT_DOUBLE_EQ(v, -2.5);
}

}  // namespace
}  // namespace sgp::linalg
