#include "linalg/dense_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "random/distributions.hpp"
#include "random/rng.hpp"

namespace sgp::linalg {
namespace {

DenseMatrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  random::Rng rng(seed);
  DenseMatrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = random::normal(rng);
  }
  return m;
}

TEST(DenseMatrixTest, ZeroInitialized) {
  DenseMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m(i, j), 0.0);
  }
}

TEST(DenseMatrixTest, FromDataValidatesSize) {
  EXPECT_THROW(DenseMatrix(2, 2, {1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(DenseMatrixTest, RowMajorLayout) {
  DenseMatrix m(2, 2, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(0, 1), 2);
  EXPECT_DOUBLE_EQ(m(1, 0), 3);
  EXPECT_DOUBLE_EQ(m(1, 1), 4);
}

TEST(DenseMatrixTest, RowSpanIsWritable) {
  DenseMatrix m(2, 2);
  auto r = m.row(1);
  r[0] = 9;
  EXPECT_DOUBLE_EQ(m(1, 0), 9);
}

TEST(DenseMatrixTest, Identity) {
  const auto eye = DenseMatrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(DenseMatrixTest, Multiply) {
  DenseMatrix a(2, 3, {1, 2, 3, 4, 5, 6});
  DenseMatrix b(3, 2, {7, 8, 9, 10, 11, 12});
  const auto c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(DenseMatrixTest, MultiplyDimensionMismatchThrows) {
  DenseMatrix a(2, 3);
  DenseMatrix b(2, 2);
  EXPECT_THROW((void)a.multiply(b), std::invalid_argument);
}

TEST(DenseMatrixTest, MultiplyByIdentity) {
  const auto a = random_matrix(5, 5, 1);
  const auto c = a.multiply(DenseMatrix::identity(5));
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(c(i, j), a(i, j));
  }
}

TEST(DenseMatrixTest, TransposeMultiplyMatchesExplicit) {
  const auto a = random_matrix(7, 3, 2);
  const auto b = random_matrix(7, 4, 3);
  const auto fast = a.transpose_multiply(b);
  const auto ref = a.transposed().multiply(b);
  ASSERT_EQ(fast.rows(), 3u);
  ASSERT_EQ(fast.cols(), 4u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(fast(i, j), ref(i, j), 1e-12);
    }
  }
}

TEST(DenseMatrixTest, GramMatchesExplicit) {
  const auto a = random_matrix(6, 4, 4);
  const auto g = a.gram();
  const auto ref = a.transposed().multiply(a);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(g(i, j), ref(i, j), 1e-12);
  }
}

TEST(DenseMatrixTest, GramIsSymmetric) {
  const auto g = random_matrix(8, 5, 5).gram();
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
  }
}

TEST(DenseMatrixTest, MultiplyVector) {
  DenseMatrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const std::vector<double> x{1, 0, -1};
  const auto y = a.multiply_vector(x);
  EXPECT_DOUBLE_EQ(y[0], -2);
  EXPECT_DOUBLE_EQ(y[1], -2);
}

TEST(DenseMatrixTest, TransposeMultiplyVector) {
  DenseMatrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const std::vector<double> x{1, 1};
  const auto y = a.transpose_multiply_vector(x);
  EXPECT_DOUBLE_EQ(y[0], 5);
  EXPECT_DOUBLE_EQ(y[1], 7);
  EXPECT_DOUBLE_EQ(y[2], 9);
}

TEST(DenseMatrixTest, Transposed) {
  DenseMatrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const auto t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(t(j, i), a(i, j));
  }
}

TEST(DenseMatrixTest, FrobeniusNorm) {
  DenseMatrix a(2, 2, {1, 2, 2, 4});
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(DenseMatrixTest, AddScaled) {
  DenseMatrix a(1, 2, {1, 2});
  DenseMatrix b(1, 2, {10, 20});
  a.add_scaled(b, 0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), 6);
  EXPECT_DOUBLE_EQ(a(0, 1), 12);
}

TEST(DenseMatrixTest, AddScaledShapeMismatchThrows) {
  DenseMatrix a(1, 2);
  DenseMatrix b(2, 1);
  EXPECT_THROW(a.add_scaled(b, 1.0), std::invalid_argument);
}

TEST(DenseMatrixTest, FirstColumns) {
  DenseMatrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const auto sub = a.first_columns(2);
  EXPECT_EQ(sub.cols(), 2u);
  EXPECT_DOUBLE_EQ(sub(0, 1), 2);
  EXPECT_DOUBLE_EQ(sub(1, 1), 5);
  EXPECT_THROW((void)a.first_columns(4), std::invalid_argument);
}

TEST(DenseMatrixTest, Column) {
  DenseMatrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const auto col = a.column(2);
  EXPECT_EQ(col, (std::vector<double>{3, 6}));
  EXPECT_THROW((void)a.column(3), std::invalid_argument);
}

TEST(DenseMatrixTest, LargeMultiplyParallelConsistency) {
  // multiply() runs chunks on the thread pool; verify against a serial
  // reference computed via multiply_vector columns.
  const auto a = random_matrix(300, 40, 6);
  const auto b = random_matrix(40, 7, 7);
  const auto c = a.multiply(b);
  for (std::size_t j = 0; j < 7; ++j) {
    const auto ref = a.multiply_vector(b.column(j));
    for (std::size_t i = 0; i < 300; ++i) {
      ASSERT_NEAR(c(i, j), ref[i], 1e-10);
    }
  }
}

}  // namespace
}  // namespace sgp::linalg
