// Exit-code and usage-error contract of the sgp_analyze binary. The library
// tests cover task math; these spawn the real tool (via the shell, capturing
// both streams to files) and pin the CLI surface:
//
//   0  ok          2  usage error          3  data error
//
// Unknown --task / --mechanism values must fail fast with exit 2 and list
// every valid value (the sgp_lint --rules shape), and --compare-mechanisms
// must render the E14 grid from a BENCH_E14.json report alone — no release
// file involved.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

// ctest runs each case as its own process, in parallel; scratch files must
// be per-process or concurrent cases clobber each other's captures.
std::string scratch_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) /
          (std::to_string(::getpid()) + "_" + name))
      .string();
}

struct CliResult {
  int exit_code = -1;
  std::string stdout_text;
  std::string stderr_text;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

CliResult run_analyze_cli(const std::string& args) {
  const std::string out_path = scratch_path("sgp_analyze_cli_out.txt");
  const std::string err_path = scratch_path("sgp_analyze_cli_err.txt");
  const std::string cmd = std::string(SGP_ANALYZE_BIN) + " " + args + " > '" +
                          out_path + "' 2> '" + err_path + "'";
  const int status = std::system(cmd.c_str());
  CliResult result;
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  result.stdout_text = slurp(out_path);
  result.stderr_text = slurp(err_path);
  std::filesystem::remove(out_path);
  std::filesystem::remove(err_path);
  return result;
}

/// A minimal but complete E14 report: 2 mechanisms × 1 generator × 2 ε × 2
/// tasks, every score key present (the same contract sgp_bench_check pins).
std::string write_e14_fixture() {
  const std::string path = scratch_path("BENCH_E14.json");
  std::ofstream out(path, std::ios::binary);
  out << R"({"schema": "sgp-obs-report v1", "id": "E14", "meta": {)"
      << R"("mechanisms": "projection,privgraph", "generators": "sbm", )"
      << R"("epsilons": "1,2", "tasks": "cluster,rank", "delta": 1e-6, )"
      << R"("score.sbm.projection.e1.cluster": 0.11, )"
      << R"("score.sbm.projection.e1.rank": 0.12, )"
      << R"("score.sbm.projection.e2.cluster": 0.21, )"
      << R"("score.sbm.projection.e2.rank": 0.22, )"
      << R"("score.sbm.privgraph.e1.cluster": 0.31, )"
      << R"("score.sbm.privgraph.e1.rank": 0.32, )"
      << R"("score.sbm.privgraph.e2.cluster": 0.41, )"
      << R"("score.sbm.privgraph.e2.rank": 0.42}, )"
      << R"("phases": [], "counters": {}, "gauges": {}})";
  return path;
}

TEST(AnalyzeCliTest, NoModeSelectedPrintsUsage) {
  const CliResult result = run_analyze_cli("");
  EXPECT_EQ(result.exit_code, 2) << result.stderr_text;
  EXPECT_NE(result.stderr_text.find("usage:"), std::string::npos)
      << result.stderr_text;
  EXPECT_NE(result.stderr_text.find("--compare-mechanisms"),
            std::string::npos)
      << result.stderr_text;
}

TEST(AnalyzeCliTest, UnknownTaskExitsUsageErrorListingValidTasks) {
  // Task validation runs before the release file is touched, so a typo'd
  // task cannot hide behind a missing-file error.
  const CliResult result =
      run_analyze_cli("--release does_not_exist.bin --task nope");
  EXPECT_EQ(result.exit_code, 2) << result.stderr_text;
  EXPECT_NE(result.stderr_text.find("unknown task 'nope'"),
            std::string::npos)
      << result.stderr_text;
  EXPECT_NE(result.stderr_text.find("valid: info stats cluster rank"),
            std::string::npos)
      << result.stderr_text;
}

TEST(AnalyzeCliTest, UnknownMechanismExitsUsageErrorListingTheFamily) {
  const CliResult result = run_analyze_cli(
      "--compare-mechanisms does_not_exist.json --mechanism nope");
  EXPECT_EQ(result.exit_code, 2) << result.stderr_text;
  EXPECT_NE(result.stderr_text.find("unknown mechanism 'nope'"),
            std::string::npos)
      << result.stderr_text;
  EXPECT_NE(
      result.stderr_text.find("valid: projection privgraph node-community"),
      std::string::npos)
      << result.stderr_text;
}

TEST(AnalyzeCliTest, CompareRendersOneScoreColumnPerMechanism) {
  const std::string report = write_e14_fixture();
  const CliResult result =
      run_analyze_cli("--compare-mechanisms '" + report + "'");
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  for (const char* column : {"generator", "task", "epsilon", "projection",
                             "privgraph"}) {
    EXPECT_NE(result.stdout_text.find(column), std::string::npos)
        << "missing column '" << column << "' in:\n"
        << result.stdout_text;
  }
  // Spot-check one full row: sbm/cluster/e1 carries both mechanism scores.
  EXPECT_NE(result.stdout_text.find("0.110"), std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("0.310"), std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stderr_text.find("compared 2 mechanism(s)"),
            std::string::npos)
      << result.stderr_text;
}

TEST(AnalyzeCliTest, CompareHonorsMechanismAndTaskFilters) {
  const std::string report = write_e14_fixture();
  const CliResult result = run_analyze_cli("--compare-mechanisms '" + report +
                                           "' --mechanism privgraph "
                                           "--task rank");
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  EXPECT_EQ(result.stdout_text.find("projection"), std::string::npos)
      << result.stdout_text;
  EXPECT_EQ(result.stdout_text.find("cluster"), std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("0.320"), std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stderr_text.find("compared 1 mechanism(s) over 2"),
            std::string::npos)
      << result.stderr_text;
}

TEST(AnalyzeCliTest, CompareTaskFilterValidatesAgainstTheReportAxes) {
  // In compare mode the valid task set is whatever the report scored — a
  // grid task like "degree" is rejected when the report never ran it.
  const std::string report = write_e14_fixture();
  const CliResult result = run_analyze_cli("--compare-mechanisms '" + report +
                                           "' --task degree");
  EXPECT_EQ(result.exit_code, 2) << result.stderr_text;
  EXPECT_NE(result.stderr_text.find("unknown task 'degree'"),
            std::string::npos)
      << result.stderr_text;
  EXPECT_NE(result.stderr_text.find("valid: cluster rank"),
            std::string::npos)
      << result.stderr_text;
}

TEST(AnalyzeCliTest, CompareRejectsNonE14ReportsAsDataErrors) {
  const std::string path = scratch_path("BENCH_E7.json");
  std::ofstream(path, std::ios::binary)
      << R"({"schema": "sgp-obs-report v1", "id": "E7", "meta": {}})";
  const CliResult result = run_analyze_cli("--compare-mechanisms '" + path +
                                           "'");
  EXPECT_EQ(result.exit_code, 3) << result.stderr_text;
  EXPECT_NE(result.stderr_text.find("not an E14"), std::string::npos)
      << result.stderr_text;
}

}  // namespace
