#include "graph/sampling.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace sgp::graph {
namespace {

TEST(InducedSubgraphTest, PreservesInternalEdges) {
  // Triangle 0-1-2 plus pendant 3; induce on {0, 1, 2}.
  const auto g = Graph::from_edges(
      4, std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  const auto sub = induced_subgraph(g, {0, 1, 2});
  EXPECT_EQ(sub.num_nodes(), 3u);
  EXPECT_EQ(sub.num_edges(), 3u);
}

TEST(InducedSubgraphTest, MappingReportsOriginalIds) {
  const auto g = Graph::from_edges(
      4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}});
  std::vector<std::uint32_t> mapping;
  const auto sub = induced_subgraph(g, {3, 1}, &mapping);
  EXPECT_EQ(mapping, (std::vector<std::uint32_t>{3, 1}));
  EXPECT_EQ(sub.num_edges(), 0u);  // 3 and 1 not adjacent
}

TEST(InducedSubgraphTest, RejectsInvalidSelections) {
  const auto g = Graph::from_edges(3, std::vector<Edge>{{0, 1}});
  EXPECT_THROW((void)induced_subgraph(g, {0, 3}), std::invalid_argument);
  EXPECT_THROW((void)induced_subgraph(g, {0, 0}), std::invalid_argument);
}

TEST(NodeSampleTest, SizeAndValidity) {
  random::Rng rng(1);
  const auto g = erdos_renyi(200, 0.05, rng);
  const auto sub = node_sample(g, 50, rng);
  EXPECT_EQ(sub.num_nodes(), 50u);
}

TEST(NodeSampleTest, DensityPreservedInExpectation) {
  random::Rng rng(2);
  const auto g = erdos_renyi(400, 0.05, rng);
  double total_density = 0;
  for (int trial = 0; trial < 10; ++trial) {
    total_density += density(node_sample(g, 100, rng));
  }
  EXPECT_NEAR(total_density / 10.0, density(g), 0.01);
}

TEST(RandomWalkSampleTest, SizeAndConnectivityBias) {
  random::Rng rng(3);
  const auto pg = stochastic_block_model({150, 150}, 0.2, 0.005, rng);
  std::vector<std::uint32_t> mapping;
  const auto sub = random_walk_sample(pg.graph, 60, rng, &mapping);
  EXPECT_EQ(sub.num_nodes(), 60u);
  EXPECT_EQ(mapping.size(), 60u);
  // Walk-based sampling preserves local density better than uniform.
  const auto uniform = node_sample(pg.graph, 60, rng);
  EXPECT_GE(sub.average_degree(), uniform.average_degree() * 0.8);
}

TEST(RandomWalkSampleTest, HandlesIsolatedStartNodes) {
  // Graph dominated by isolated nodes; the walk must still finish.
  random::Rng rng(4);
  std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 0}};
  const auto g = Graph::from_edges(50, edges);
  const auto sub = random_walk_sample(g, 10, rng);
  EXPECT_EQ(sub.num_nodes(), 10u);
}

TEST(RandomWalkSampleTest, InvalidTargetThrows) {
  random::Rng rng(5);
  const auto g = erdos_renyi(20, 0.2, rng);
  EXPECT_THROW((void)random_walk_sample(g, 0, rng), std::invalid_argument);
  EXPECT_THROW((void)random_walk_sample(g, 21, rng), std::invalid_argument);
}

TEST(EdgeSampleTest, KeepsExpectedFraction) {
  random::Rng rng(6);
  const auto g = erdos_renyi(300, 0.1, rng);
  const auto sampled = edge_sample(g, 0.3, rng);
  EXPECT_EQ(sampled.num_nodes(), 300u);
  const double expect = 0.3 * static_cast<double>(g.num_edges());
  EXPECT_NEAR(static_cast<double>(sampled.num_edges()), expect,
              4.0 * std::sqrt(expect));
}

TEST(EdgeSampleTest, BoundaryProbabilities) {
  random::Rng rng(7);
  const auto g = erdos_renyi(100, 0.1, rng);
  EXPECT_EQ(edge_sample(g, 1.0, rng).num_edges(), g.num_edges());
  EXPECT_EQ(edge_sample(g, 0.0, rng).num_edges(), 0u);
  EXPECT_THROW((void)edge_sample(g, 1.5, rng), std::invalid_argument);
}

}  // namespace
}  // namespace sgp::graph
