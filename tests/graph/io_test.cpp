#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/generators.hpp"

namespace sgp::graph {
namespace {

TEST(IoTest, ReadSimpleEdgeList) {
  std::istringstream in("0 1\n1 2\n");
  const auto g = read_edge_list(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(IoTest, CommentsAndBlanksIgnored) {
  std::istringstream in(
      "# SNAP-style header\n"
      "\n"
      "0 1  # trailing comment\n"
      "# another\n"
      "1 2\n");
  const auto g = read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(IoTest, SparseIdsRemappedDense) {
  std::istringstream in("1000000 42\n42 7\n");
  const auto g = read_edge_list(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(IoTest, SelfLoopsDropped) {
  std::istringstream in("0 0\n0 1\n");
  const auto g = read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(IoTest, DuplicateEdgesMerged) {
  std::istringstream in("0 1\n1 0\n0 1\n");
  const auto g = read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(IoTest, MalformedLineThrows) {
  std::istringstream in("0\n");
  EXPECT_THROW(read_edge_list(in), std::runtime_error);
}

TEST(IoTest, TooManyFieldsThrows) {
  std::istringstream in("0 1 2\n");
  EXPECT_THROW(read_edge_list(in), std::runtime_error);
}

TEST(IoTest, RoundTripPreservesStructure) {
  random::Rng rng(1);
  const auto original = erdos_renyi(50, 0.1, rng);
  std::stringstream buffer;
  write_edge_list(original, buffer);
  const auto loaded = read_edge_list(buffer);
  EXPECT_EQ(loaded.num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded.num_edges(), original.num_edges());
}

TEST(IoTest, PreservePolicyKeepsNodeIdentity) {
  random::Rng rng(3);
  const auto original = erdos_renyi(40, 0.15, rng);
  std::stringstream buffer;
  write_edge_list(original, buffer);
  const auto loaded = read_edge_list(buffer, IdPolicy::kPreserve);
  ASSERT_EQ(loaded.num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded.edges(), original.edges());  // exact id-level round trip
}

TEST(IoTest, PreservePolicyKeepsIsolatedNodesViaHeader) {
  // Node 5 is isolated and has the largest id: only the header knows n=6.
  const auto original =
      Graph::from_edges(6, std::vector<Edge>{{0, 1}, {2, 3}});
  std::stringstream buffer;
  write_edge_list(original, buffer);
  const auto loaded = read_edge_list(buffer, IdPolicy::kPreserve);
  EXPECT_EQ(loaded.num_nodes(), 6u);
  EXPECT_EQ(loaded.num_edges(), 2u);
  EXPECT_EQ(loaded.degree(5), 0u);
}

TEST(IoTest, PreservePolicyUsesMaxIdWithoutHeader) {
  std::istringstream in("0 7\n2 3\n");
  const auto g = read_edge_list(in, IdPolicy::kPreserve);
  EXPECT_EQ(g.num_nodes(), 8u);
  EXPECT_TRUE(g.has_edge(0, 7));
}

TEST(IoTest, PreservePolicyRejectsHugeIds) {
  std::istringstream in("0 4294967296\n");  // 2^32 overflows uint32 ids
  EXPECT_THROW(read_edge_list(in, IdPolicy::kPreserve), std::runtime_error);
}

TEST(IoTest, CompactPolicyStillRemapsSparseIds) {
  std::istringstream in("1000000 42\n42 7\n");
  const auto g = read_edge_list(in, IdPolicy::kCompact);
  EXPECT_EQ(g.num_nodes(), 3u);
}

TEST(IoTest, FileRoundTrip) {
  random::Rng rng(2);
  const auto original = erdos_renyi(30, 0.2, rng);
  const std::string path = testing::TempDir() + "/sgp_io_test_edges.txt";
  write_edge_list_file(original, path);
  const auto loaded = read_edge_list_file(path);
  EXPECT_EQ(loaded.num_edges(), original.num_edges());
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/missing.txt"),
               std::runtime_error);
}

TEST(IoTest, EmptyInputYieldsEmptyGraph) {
  std::istringstream in("# only comments\n");
  const auto g = read_edge_list(in);
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

}  // namespace
}  // namespace sgp::graph
