#include "graph/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "graph/generators.hpp"

namespace sgp::graph {
namespace {

Graph complete(std::size_t n) {
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) edges.push_back({i, j});
  }
  return Graph::from_edges(n, edges);
}

Graph path(std::size_t n) {
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    edges.push_back({i, static_cast<std::uint32_t>(i + 1)});
  }
  return Graph::from_edges(n, edges);
}

TEST(DegreeStatsTest, CompleteGraph) {
  const auto stats = degree_stats(complete(5));
  EXPECT_EQ(stats.min, 4u);
  EXPECT_EQ(stats.max, 4u);
  EXPECT_DOUBLE_EQ(stats.mean, 4.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
}

TEST(DegreeStatsTest, Path) {
  const auto stats = degree_stats(path(4));
  EXPECT_EQ(stats.min, 1u);
  EXPECT_EQ(stats.max, 2u);
  EXPECT_DOUBLE_EQ(stats.mean, 1.5);
}

TEST(DegreeStatsTest, EmptyGraph) {
  const auto stats = degree_stats(Graph());
  EXPECT_EQ(stats.min, 0u);
  EXPECT_EQ(stats.max, 0u);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
}

TEST(DegreeHistogramTest, Counts) {
  const auto hist = degree_histogram(path(4));
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 0u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 2u);
}

TEST(TriangleCountTest, KnownGraphs) {
  EXPECT_EQ(triangle_count(complete(3)), 1u);
  EXPECT_EQ(triangle_count(complete(4)), 4u);
  EXPECT_EQ(triangle_count(complete(6)), 20u);  // C(6,3)
  EXPECT_EQ(triangle_count(path(5)), 0u);
  EXPECT_EQ(triangle_count(Graph::from_edges(3, {})), 0u);
}

TEST(ClusteringTest, CompleteGraphIsOne) {
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(complete(5)), 1.0);
  EXPECT_DOUBLE_EQ(average_local_clustering(complete(5)), 1.0);
}

TEST(ClusteringTest, TreeIsZero) {
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(path(6)), 0.0);
  EXPECT_DOUBLE_EQ(average_local_clustering(path(6)), 0.0);
}

TEST(ClusteringTest, TriangleWithPendant) {
  // Triangle 0-1-2 plus pendant 3 attached to 0.
  const auto g = Graph::from_edges(
      4, std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  // Wedges: deg(0)=3 → 3, deg(1)=deg(2)=2 → 1 each, deg(3)=1 → 0. Total 5.
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(g), 3.0 / 5.0);
  // Local: node0 = 1/3, nodes1,2 = 1, node3 = 0 → avg = (1/3+1+1+0)/4.
  EXPECT_NEAR(average_local_clustering(g), (1.0 / 3.0 + 2.0) / 4.0, 1e-12);
}

TEST(DensityTest, Values) {
  EXPECT_DOUBLE_EQ(density(complete(5)), 1.0);
  EXPECT_DOUBLE_EQ(density(Graph::from_edges(5, {})), 0.0);
  EXPECT_DOUBLE_EQ(density(Graph()), 0.0);
}

TEST(ConductanceTest, PerfectCommunityLowCut) {
  // Two triangles joined by one edge.
  const auto g = Graph::from_edges(
      6, std::vector<Edge>{
             {0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
  std::vector<bool> in_set{true, true, true, false, false, false};
  // vol(S) = 2+2+3 = 7, cut = 1 → 1/7.
  EXPECT_NEAR(conductance(g, in_set), 1.0 / 7.0, 1e-12);
}

TEST(ConductanceTest, EmptySideIsOne) {
  const auto g = complete(4);
  EXPECT_DOUBLE_EQ(conductance(g, std::vector<bool>(4, false)), 1.0);
  EXPECT_DOUBLE_EQ(conductance(g, std::vector<bool>(4, true)), 1.0);
}

TEST(ConductanceTest, SizeMismatchThrows) {
  EXPECT_THROW(conductance(complete(3), std::vector<bool>(2, true)),
               std::invalid_argument);
}

TEST(ConductanceTest, SbmCommunityBeatsRandomSet) {
  random::Rng rng(20);
  const auto pg = stochastic_block_model({50, 50}, 0.4, 0.02, rng);
  std::vector<bool> community(100, false);
  for (std::size_t i = 0; i < 50; ++i) community[i] = true;
  std::vector<bool> random_half(100, false);
  for (std::size_t i = 0; i < 100; i += 2) random_half[i] = true;
  EXPECT_LT(conductance(pg.graph, community),
            conductance(pg.graph, random_half));
}

}  // namespace
}  // namespace sgp::graph
