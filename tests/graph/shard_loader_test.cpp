// EdgeListShardReader: shard rows must agree with the in-memory reader on
// the same file — same node count, same per-row neighbor lists — under both
// id policies, including the messy inputs read_edge_list tolerates
// (comments, duplicates, self loops, both orientations).
#include "graph/shard_loader.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "random/rng.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"

namespace sgp::graph {
namespace {

class ShardLoaderTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/sgp_shard_loader_" +
            testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".edges";
  }
  void TearDown() override {
    util::disarm_all_faults();
    std::remove(path_.c_str());
  }

  void write(const std::string& content) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << content;
  }

  /// Every shard row must equal the in-memory graph's neighbor list.
  void expect_shards_match(const Graph& g, IdPolicy policy,
                           std::size_t shard_rows) const {
    const EdgeListShardReader reader(path_, policy);
    ASSERT_EQ(reader.num_nodes(), g.num_nodes());
    for (std::size_t r0 = 0; r0 < g.num_nodes(); r0 += shard_rows) {
      const std::size_t r1 = std::min(g.num_nodes(), r0 + shard_rows);
      const ShardRows shard = reader.load_shard(r0, r1);
      EXPECT_EQ(shard.num_rows(), r1 - r0);
      for (std::size_t u = r0; u < r1; ++u) {
        const auto got = shard.neighbors(u);
        const auto want = g.neighbors(u);
        ASSERT_EQ(std::vector<std::uint32_t>(got.begin(), got.end()),
                  std::vector<std::uint32_t>(want.begin(), want.end()))
            << "row " << u << " shard_rows " << shard_rows;
      }
    }
  }

  std::string path_;
};

TEST_F(ShardLoaderTest, MessyInputMatchesReadEdgeListUnderCompact) {
  // Duplicates (both orientations), a self loop, comments, sparse ids.
  write("# comment\n5 9\n9 5\n5 12\n3 3\n12 9\n\n9 40\n");
  std::ifstream in(path_);
  const Graph g = read_edge_list(in, IdPolicy::kCompact);
  for (const std::size_t shard_rows : {1, 2, 100}) {
    expect_shards_match(g, IdPolicy::kCompact, shard_rows);
  }
}

TEST_F(ShardLoaderTest, PreservePolicyKeepsIdsAndHeaderNodes) {
  write("# sgp edge list: 9 nodes, 2 edges\n0 4\n4 6\n");
  std::ifstream in(path_);
  const Graph g = read_edge_list(in, IdPolicy::kPreserve);
  ASSERT_EQ(g.num_nodes(), 9u);  // header wins over max id + 1
  for (const std::size_t shard_rows : {1, 3, 9, 50}) {
    expect_shards_match(g, IdPolicy::kPreserve, shard_rows);
  }
}

TEST_F(ShardLoaderTest, GeneratedGraphRoundTripsThroughShards) {
  random::Rng rng(7);
  const Graph g = erdos_renyi(64, 0.1, rng);
  write_edge_list_file(g, path_);
  for (const std::size_t shard_rows : {1, 7, 64}) {
    expect_shards_match(g, IdPolicy::kPreserve, shard_rows);
  }
}

TEST_F(ShardLoaderTest, EmptyFileHasNoNodes) {
  write("# nothing but comments\n");
  const EdgeListShardReader reader(path_);
  EXPECT_EQ(reader.num_nodes(), 0u);
  EXPECT_EQ(reader.edge_records(), 0u);
  const ShardRows shard = reader.load_shard(0, 0);
  EXPECT_EQ(shard.num_rows(), 0u);
}

TEST_F(ShardLoaderTest, RejectsOutOfRangeShard) {
  write("0 1\n");
  const EdgeListShardReader reader(path_);
  EXPECT_THROW((void)reader.load_shard(0, 3), util::PreconditionError);
  EXPECT_THROW((void)reader.load_shard(2, 1), util::PreconditionError);
}

TEST_F(ShardLoaderTest, MissingFileThrowsIoError) {
  EXPECT_THROW((void)EdgeListShardReader(path_ + ".nope"), util::IoError);
}

TEST_F(ShardLoaderTest, DetectsFileChangedBetweenScanAndLoad) {
  write("0 1\n1 2\n");
  const EdgeListShardReader reader(path_);
  write("0 1\n1 2\n2 3\n");  // grew behind the reader's back
  EXPECT_THROW((void)reader.load_shard(0, 1), util::IoError);
}

TEST_F(ShardLoaderTest, MalformedLinesStillRejected) {
  write("0 1 junk\n");
  EXPECT_THROW((void)EdgeListShardReader(path_), util::ParseError);
}

TEST_F(ShardLoaderTest, ShardReadFaultPointFires) {
  write("0 1\n");
  const EdgeListShardReader reader(path_);
  util::arm_fault("io.shard.read");
  EXPECT_THROW((void)reader.load_shard(0, 1), util::IoError);
}

}  // namespace
}  // namespace sgp::graph
