#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "graph/metrics.hpp"

namespace sgp::graph {
namespace {

TEST(ErdosRenyiTest, EdgeCountNearExpectation) {
  random::Rng rng(1);
  const std::size_t n = 500;
  const double p = 0.05;
  const auto g = erdos_renyi(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              4.0 * std::sqrt(expected));
}

TEST(ErdosRenyiTest, ZeroProbabilityIsEmpty) {
  random::Rng rng(2);
  const auto g = erdos_renyi(100, 0.0, rng);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(ErdosRenyiTest, ProbabilityOneIsComplete) {
  random::Rng rng(3);
  const auto g = erdos_renyi(20, 1.0, rng);
  EXPECT_EQ(g.num_edges(), 20u * 19u / 2u);
}

TEST(ErdosRenyiTest, InvalidProbabilityThrows) {
  random::Rng rng(4);
  EXPECT_THROW(erdos_renyi(10, -0.1, rng), std::invalid_argument);
  EXPECT_THROW(erdos_renyi(10, 1.1, rng), std::invalid_argument);
}

TEST(ErdosRenyiTest, DeterministicForSeed) {
  random::Rng r1(5), r2(5);
  const auto g1 = erdos_renyi(100, 0.1, r1);
  const auto g2 = erdos_renyi(100, 0.1, r2);
  EXPECT_EQ(g1.edges(), g2.edges());
}

TEST(SbmTest, LabelsMatchBlocks) {
  random::Rng rng(6);
  const auto pg = stochastic_block_model({10, 20, 30}, 0.5, 0.01, rng);
  EXPECT_EQ(pg.graph.num_nodes(), 60u);
  ASSERT_EQ(pg.labels.size(), 60u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(pg.labels[i], 0u);
  for (std::size_t i = 10; i < 30; ++i) EXPECT_EQ(pg.labels[i], 1u);
  for (std::size_t i = 30; i < 60; ++i) EXPECT_EQ(pg.labels[i], 2u);
}

TEST(SbmTest, WithinDensityExceedsCross) {
  random::Rng rng(7);
  const auto pg = stochastic_block_model({100, 100}, 0.2, 0.01, rng);
  std::size_t within = 0, cross = 0;
  for (const Edge& e : pg.graph.edges()) {
    (pg.labels[e.u] == pg.labels[e.v] ? within : cross) += 1;
  }
  // Expected within ≈ 2 * C(100,2) * 0.2 = 990; cross ≈ 10000*0.01 = 100.
  EXPECT_GT(within, 800u);
  EXPECT_LT(cross, 200u);
}

TEST(SbmTest, EdgeCountsMatchProbabilities) {
  random::Rng rng(8);
  const auto pg = stochastic_block_model({200, 200}, 0.1, 0.02, rng);
  std::size_t within = 0, cross = 0;
  for (const Edge& e : pg.graph.edges()) {
    (pg.labels[e.u] == pg.labels[e.v] ? within : cross) += 1;
  }
  const double expect_within = 2 * (200.0 * 199.0 / 2) * 0.1;
  const double expect_cross = 200.0 * 200.0 * 0.02;
  EXPECT_NEAR(static_cast<double>(within), expect_within,
              5 * std::sqrt(expect_within));
  EXPECT_NEAR(static_cast<double>(cross), expect_cross,
              5 * std::sqrt(expect_cross));
}

TEST(SbmTest, InvalidArgsThrow) {
  random::Rng rng(9);
  EXPECT_THROW(stochastic_block_model({}, 0.1, 0.1, rng),
               std::invalid_argument);
  EXPECT_THROW(stochastic_block_model({0, 5}, 0.1, 0.1, rng),
               std::invalid_argument);
  EXPECT_THROW(stochastic_block_model({5}, 1.5, 0.1, rng),
               std::invalid_argument);
}

TEST(BarabasiAlbertTest, NodeAndEdgeCounts) {
  random::Rng rng(10);
  const std::size_t n = 1000, attach = 3;
  const auto g = barabasi_albert(n, attach, rng);
  EXPECT_EQ(g.num_nodes(), n);
  // Seed clique C(4,2)=6 edges plus (n - 4) * 3 attachments (some may merge,
  // but distinct-target sampling prevents duplicates within a step).
  EXPECT_EQ(g.num_edges(), 6u + (n - 4) * attach);
}

TEST(BarabasiAlbertTest, HeavyTailedDegrees) {
  random::Rng rng(11);
  const auto g = barabasi_albert(3000, 2, rng);
  const auto stats = degree_stats(g);
  // Hubs should dwarf the mean in a BA graph.
  EXPECT_GT(static_cast<double>(stats.max), 8.0 * stats.mean);
}

TEST(BarabasiAlbertTest, MinDegreeAtLeastAttach) {
  random::Rng rng(12);
  const auto g = barabasi_albert(500, 4, rng);
  EXPECT_GE(degree_stats(g).min, 4u);
}

TEST(BarabasiAlbertTest, InvalidArgsThrow) {
  random::Rng rng(13);
  EXPECT_THROW(barabasi_albert(5, 0, rng), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(3, 3, rng), std::invalid_argument);
}

TEST(WattsStrogatzTest, NoRewireIsRingLattice) {
  random::Rng rng(14);
  const auto g = watts_strogatz(20, 4, 0.0, rng);
  EXPECT_EQ(g.num_edges(), 40u);
  for (std::size_t u = 0; u < 20; ++u) EXPECT_EQ(g.degree(u), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(0, 18));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(WattsStrogatzTest, RewiringReducesClustering) {
  random::Rng rng(15);
  const auto lattice = watts_strogatz(500, 8, 0.0, rng);
  const auto rewired = watts_strogatz(500, 8, 1.0, rng);
  EXPECT_GT(average_local_clustering(lattice),
            average_local_clustering(rewired) + 0.2);
}

TEST(WattsStrogatzTest, InvalidArgsThrow) {
  random::Rng rng(16);
  EXPECT_THROW(watts_strogatz(10, 3, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(watts_strogatz(4, 4, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(watts_strogatz(10, 4, 2.0, rng), std::invalid_argument);
}

TEST(ConfigurationModelTest, DegreesApproximatelyRealized) {
  random::Rng rng(17);
  std::vector<std::size_t> degrees(200, 4);
  const auto g = configuration_model(degrees, rng);
  EXPECT_EQ(g.num_nodes(), 200u);
  // Stub matching drops a few self loops / multi-edges.
  EXPECT_GE(g.num_edges(), 380u);
  EXPECT_LE(g.num_edges(), 400u);
}

TEST(ConfigurationModelTest, OddSumThrows) {
  random::Rng rng(18);
  EXPECT_THROW(configuration_model({3}, rng), std::invalid_argument);
}

TEST(SocialNetworkModelTest, CombinesCommunitiesAndHubs) {
  random::Rng rng(19);
  const auto pg = social_network_model({200, 200, 200}, 0.05, 0.002, 3, rng);
  EXPECT_EQ(pg.graph.num_nodes(), 600u);
  ASSERT_EQ(pg.labels.size(), 600u);
  // Hubs from the BA overlay.
  const auto stats = degree_stats(pg.graph);
  EXPECT_GT(static_cast<double>(stats.max), 3.0 * stats.mean);
  // Community structure retained.
  std::size_t within = 0, cross = 0;
  for (const Edge& e : pg.graph.edges()) {
    (pg.labels[e.u] == pg.labels[e.v] ? within : cross) += 1;
  }
  EXPECT_GT(within, cross);
}

}  // namespace
}  // namespace sgp::graph
