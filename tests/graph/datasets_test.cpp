#include "graph/datasets.hpp"

#include <gtest/gtest.h>

#include "graph/metrics.hpp"

namespace sgp::graph {
namespace {

TEST(DatasetsTest, FacebookSimShape) {
  const auto d = facebook_sim();
  EXPECT_EQ(d.name, "facebook-sim");
  EXPECT_EQ(d.planted.graph.num_nodes(), 4000u);
  EXPECT_EQ(d.num_communities, 8u);
  const auto stats = degree_stats(d.planted.graph);
  // E[deg] ≈ 0.2·499 + 0.004·3500 ≈ 114.
  EXPECT_GT(stats.mean, 95.0);
  EXPECT_LT(stats.mean, 135.0);
}

TEST(DatasetsTest, SmallVariantsShrinkButKeepStructure) {
  const auto small = facebook_sim_small();
  EXPECT_EQ(small.planted.graph.num_nodes(), 400u);
  EXPECT_EQ(small.num_communities, 8u);

  const auto pokec = pokec_sim_small();
  EXPECT_EQ(pokec.planted.graph.num_nodes(), 2000u);
  EXPECT_EQ(pokec.num_communities, 16u);

  const auto lj = livejournal_sim_small();
  EXPECT_EQ(lj.planted.graph.num_nodes(), 4992u);
  EXPECT_EQ(lj.num_communities, 32u);
}

TEST(DatasetsTest, LabelsCoverAllCommunities) {
  const auto d = facebook_sim_small();
  std::vector<bool> seen(d.num_communities, false);
  for (std::uint32_t label : d.planted.labels) {
    ASSERT_LT(label, d.num_communities);
    seen[label] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(DatasetsTest, DeterministicForSeed) {
  const auto a = facebook_sim_small(5);
  const auto b = facebook_sim_small(5);
  EXPECT_EQ(a.planted.graph.num_edges(), b.planted.graph.num_edges());
  EXPECT_EQ(a.planted.graph.edges(), b.planted.graph.edges());
}

TEST(DatasetsTest, DifferentSeedsDiffer) {
  const auto a = facebook_sim_small(1);
  const auto b = facebook_sim_small(2);
  EXPECT_NE(a.planted.graph.edges(), b.planted.graph.edges());
}

TEST(DatasetsTest, PokecSimHasHubs) {
  const auto d = pokec_sim_small();
  const auto stats = degree_stats(d.planted.graph);
  EXPECT_GT(static_cast<double>(stats.max), 2.0 * stats.mean);
}

TEST(DatasetsTest, CommunityStructurePresent) {
  const auto d = facebook_sim_small();
  std::size_t within = 0, cross = 0;
  for (const Edge& e : d.planted.graph.edges()) {
    (d.planted.labels[e.u] == d.planted.labels[e.v] ? within : cross) += 1;
  }
  EXPECT_GT(within, cross);
}

}  // namespace
}  // namespace sgp::graph
