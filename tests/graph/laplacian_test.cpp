#include "graph/laplacian.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "cluster/metrics.hpp"
#include "cluster/spectral.hpp"
#include "graph/generators.hpp"
#include "linalg/vector_ops.hpp"

namespace sgp::graph {
namespace {

Graph path(std::size_t n) {
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    edges.push_back({i, static_cast<std::uint32_t>(i + 1)});
  }
  return Graph::from_edges(n, edges);
}

TEST(LaplacianTest, EntriesMatchDefinition) {
  const auto g = Graph::from_edges(
      3, std::vector<Edge>{{0, 1}, {1, 2}});
  const auto l = laplacian_matrix(g);
  EXPECT_DOUBLE_EQ(l.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(l.at(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(l.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(l.at(0, 2), 0.0);
  EXPECT_TRUE(l.is_symmetric());
}

TEST(LaplacianTest, RowSumsAreZero) {
  random::Rng rng(1);
  const auto g = erdos_renyi(50, 0.1, rng);
  const auto l = laplacian_matrix(g);
  const std::vector<double> ones(50, 1.0);
  const auto y = l.multiply_vector(ones);
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(LaplacianTest, QuadraticFormCountsCutEdges) {
  // xᵀLx = Σ_(u,v)∈E (x_u − x_v)²; indicator vector of a set counts cut.
  const auto g = Graph::from_edges(
      4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const std::vector<double> x{1, 1, 0, 0};
  const auto lx = laplacian_matrix(g).multiply_vector(x);
  EXPECT_DOUBLE_EQ(linalg::dot(x, lx), 2.0);  // edges (1,2) and (3,0) cut
}

TEST(NormalizedAdjacencyTest, SpectrumBounded) {
  const auto g = path(4);
  const auto norm = normalized_adjacency_matrix(g);
  // Largest |eigenvalue| of N is <= 1; N of a path: check values directly.
  EXPECT_NEAR(norm.at(0, 1), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(norm.at(1, 2), 0.5, 1e-12);
  EXPECT_TRUE(norm.is_symmetric(1e-12));
}

TEST(NormalizedAdjacencyTest, IsolatedNodesAreZeroRows) {
  const auto g = Graph::from_edges(3, std::vector<Edge>{{0, 1}});
  const auto norm = normalized_adjacency_matrix(g);
  EXPECT_DOUBLE_EQ(norm.at(2, 0), 0.0);
  EXPECT_DOUBLE_EQ(norm.at(2, 1), 0.0);
}

TEST(AlgebraicConnectivityTest, DisconnectedIsZero) {
  const auto g = Graph::from_edges(
      4, std::vector<Edge>{{0, 1}, {2, 3}});
  EXPECT_NEAR(algebraic_connectivity(g), 0.0, 1e-8);
}

TEST(AlgebraicConnectivityTest, PathFormula) {
  // λ2 of a path P_n is 2(1 − cos(π/n)).
  const auto g = path(6);
  EXPECT_NEAR(algebraic_connectivity(g), 2.0 * (1.0 - std::cos(M_PI / 6.0)),
              1e-7);
}

TEST(AlgebraicConnectivityTest, CompleteGraphEqualsN) {
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i < 6; ++i) {
    for (std::uint32_t j = i + 1; j < 6; ++j) edges.push_back({i, j});
  }
  const auto g = Graph::from_edges(6, edges);
  EXPECT_NEAR(algebraic_connectivity(g), 6.0, 1e-7);
}

TEST(AlgebraicConnectivityTest, StrongerCommunitiesLowerConnectivity) {
  random::Rng rng(2);
  const auto tight = stochastic_block_model({40, 40}, 0.5, 0.01, rng);
  const auto loose = stochastic_block_model({40, 40}, 0.5, 0.2, rng);
  EXPECT_LT(algebraic_connectivity(tight.graph),
            algebraic_connectivity(loose.graph));
}

TEST(AlgebraicConnectivityTest, TooSmallThrows) {
  EXPECT_THROW((void)algebraic_connectivity(Graph::from_edges(1, {})),
               std::invalid_argument);
}

TEST(NormalizedSpectralClusteringTest, RecoversCommunitiesWithHubs) {
  // Degree heterogeneity: hubs distort the raw-adjacency embedding less
  // when the normalized operator is used.
  random::Rng rng(3);
  const auto pg = social_network_model({60, 60}, 0.4, 0.02, 5, rng);
  cluster::SpectralOptions opt;
  opt.num_clusters = 2;
  opt.matrix = cluster::SpectralMatrix::kNormalizedAdjacency;
  const auto res = cluster::spectral_cluster_graph(pg.graph, opt);
  EXPECT_GT(cluster::normalized_mutual_information(res.assignments, pg.labels),
            0.8);
}

TEST(NormalizedSpectralClusteringTest, EmbeddingShape) {
  random::Rng rng(4);
  const auto g = erdos_renyi(40, 0.2, rng);
  const auto emb = cluster::normalized_spectral_embedding(g, 3);
  EXPECT_EQ(emb.rows(), 40u);
  EXPECT_EQ(emb.cols(), 3u);
}

}  // namespace
}  // namespace sgp::graph
