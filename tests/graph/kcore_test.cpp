#include "graph/kcore.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"

namespace sgp::graph {
namespace {

Graph complete(std::size_t n) {
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) edges.push_back({i, j});
  }
  return Graph::from_edges(n, edges);
}

TEST(KCoreTest, EmptyAndEdgeless) {
  EXPECT_TRUE(core_numbers(Graph()).empty());
  const auto g = Graph::from_edges(4, {});
  const auto cores = core_numbers(g);
  for (auto c : cores) EXPECT_EQ(c, 0u);
  EXPECT_EQ(degeneracy(g), 0u);
}

TEST(KCoreTest, CompleteGraphIsNMinusOneCore) {
  const auto g = complete(6);
  const auto cores = core_numbers(g);
  for (auto c : cores) EXPECT_EQ(c, 5u);
  EXPECT_EQ(degeneracy(g), 5u);
}

TEST(KCoreTest, PathIsOneCore) {
  const auto g =
      Graph::from_edges(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}});
  for (auto c : core_numbers(g)) EXPECT_EQ(c, 1u);
}

TEST(KCoreTest, CliqueWithPendants) {
  // Triangle 0-1-2 plus pendant 3 on node 0 and a chain 3-4.
  const auto g = Graph::from_edges(
      5, std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}, {0, 3}, {3, 4}});
  const auto cores = core_numbers(g);
  EXPECT_EQ(cores[0], 2u);
  EXPECT_EQ(cores[1], 2u);
  EXPECT_EQ(cores[2], 2u);
  EXPECT_EQ(cores[3], 1u);
  EXPECT_EQ(cores[4], 1u);
}

TEST(KCoreTest, TwoLevelStructure) {
  // K4 core {0..3} with a cycle of pendatt nodes attached.
  std::vector<Edge> edges;
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = i + 1; j < 4; ++j) edges.push_back({i, j});
  }
  // Cycle 4-5-6-7-4, attached to the clique at node 4-0.
  edges.push_back({4, 5});
  edges.push_back({5, 6});
  edges.push_back({6, 7});
  edges.push_back({7, 4});
  edges.push_back({4, 0});
  const auto g = Graph::from_edges(8, edges);
  const auto cores = core_numbers(g);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(cores[i], 3u) << i;
  for (int i = 4; i < 8; ++i) EXPECT_EQ(cores[i], 2u) << i;
}

TEST(KCoreTest, SatisfiesCoreDefinition) {
  // Property: inside the k-core subgraph, every node has degree >= k.
  random::Rng rng(5);
  const auto g = erdos_renyi(300, 0.03, rng);
  const auto cores = core_numbers(g);
  const std::uint32_t k = degeneracy(g);
  const auto member = k_core_membership(g, k);
  bool any = false;
  for (std::size_t u = 0; u < 300; ++u) {
    if (!member[u]) continue;
    any = true;
    std::size_t internal_degree = 0;
    for (std::uint32_t v : g.neighbors(u)) internal_degree += member[v];
    EXPECT_GE(internal_degree, k) << "node " << u;
  }
  EXPECT_TRUE(any);
}

TEST(KCoreTest, CoreNumberAtMostDegree) {
  random::Rng rng(6);
  const auto g = barabasi_albert(500, 3, rng);
  const auto cores = core_numbers(g);
  for (std::size_t u = 0; u < 500; ++u) {
    EXPECT_LE(cores[u], g.degree(u));
  }
  // BA with attach=3: every node joins with 3 edges → degeneracy is 3.
  EXPECT_EQ(degeneracy(g), 3u);
}

TEST(KCoreTest, MembershipMonotoneInK) {
  random::Rng rng(7);
  const auto g = erdos_renyi(200, 0.05, rng);
  const auto m1 = k_core_membership(g, 1);
  const auto m2 = k_core_membership(g, 2);
  for (std::size_t u = 0; u < 200; ++u) {
    if (m2[u]) {
      EXPECT_TRUE(m1[u]);
    }
  }
}

}  // namespace
}  // namespace sgp::graph
