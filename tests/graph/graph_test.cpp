#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

namespace sgp::graph {
namespace {

Graph triangle_plus_isolated() {
  // Nodes 0-1-2 form a triangle; node 3 isolated.
  return Graph::from_edges(4, std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}});
}

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphTest, NodesWithoutEdges) {
  const auto g = Graph::from_edges(5, {});
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(GraphTest, BasicAdjacency) {
  const auto g = triangle_plus_isolated();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(GraphTest, NeighborsSorted) {
  const auto g = Graph::from_edges(4, std::vector<Edge>{{2, 0}, {2, 3}, {2, 1}});
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 1u);
  EXPECT_EQ(nbrs[2], 3u);
}

TEST(GraphTest, DuplicateEdgesMerged) {
  const auto g =
      Graph::from_edges(2, std::vector<Edge>{{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphTest, SelfLoopRejected) {
  EXPECT_THROW(Graph::from_edges(2, std::vector<Edge>{{1, 1}}),
               std::invalid_argument);
}

TEST(GraphTest, OutOfRangeEndpointRejected) {
  EXPECT_THROW(Graph::from_edges(2, std::vector<Edge>{{0, 2}}),
               std::invalid_argument);
}

TEST(GraphTest, EdgesCanonicalOrder) {
  const auto g = Graph::from_edges(4, std::vector<Edge>{{3, 1}, {2, 0}, {1, 0}});
  const auto es = g.edges();
  ASSERT_EQ(es.size(), 3u);
  EXPECT_EQ(es[0], (Edge{0, 1}));
  EXPECT_EQ(es[1], (Edge{0, 2}));
  EXPECT_EQ(es[2], (Edge{1, 3}));
}

TEST(GraphTest, AdjacencyMatrixSymmetricZeroOne) {
  const auto g = triangle_plus_isolated();
  const auto a = g.adjacency_matrix();
  EXPECT_EQ(a.rows(), 4u);
  EXPECT_EQ(a.cols(), 4u);
  EXPECT_EQ(a.nnz(), 6u);  // 2 per undirected edge
  EXPECT_TRUE(a.is_symmetric());
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 0.0);
}

TEST(GraphTest, AverageDegree) {
  const auto g = triangle_plus_isolated();
  EXPECT_DOUBLE_EQ(g.average_degree(), 6.0 / 4.0);
  EXPECT_DOUBLE_EQ(Graph().average_degree(), 0.0);
}

TEST(ComponentsTest, SingleComponent) {
  const auto g = triangle_plus_isolated();
  const auto cc = connected_components(g);
  EXPECT_EQ(cc.count, 2u);
  EXPECT_EQ(cc.labels[0], cc.labels[1]);
  EXPECT_EQ(cc.labels[1], cc.labels[2]);
  EXPECT_NE(cc.labels[0], cc.labels[3]);
}

TEST(ComponentsTest, AllIsolated) {
  const auto g = Graph::from_edges(4, {});
  const auto cc = connected_components(g);
  EXPECT_EQ(cc.count, 4u);
}

TEST(ComponentsTest, TwoChains) {
  const auto g =
      Graph::from_edges(6, std::vector<Edge>{{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  const auto cc = connected_components(g);
  EXPECT_EQ(cc.count, 2u);
  EXPECT_EQ(cc.labels[0], cc.labels[2]);
  EXPECT_EQ(cc.labels[3], cc.labels[5]);
  EXPECT_NE(cc.labels[0], cc.labels[3]);
}

TEST(BfsTest, PathDistances) {
  const auto g =
      Graph::from_edges(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}});
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], 3u);
}

TEST(BfsTest, UnreachableIsMax) {
  const auto g = triangle_plus_isolated();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[3], std::numeric_limits<std::size_t>::max());
}

TEST(BfsTest, InvalidSourceThrows) {
  const auto g = triangle_plus_isolated();
  EXPECT_THROW(bfs_distances(g, 4), std::invalid_argument);
}

}  // namespace
}  // namespace sgp::graph
