#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "random/distributions.hpp"

namespace sgp::graph {
namespace {

TEST(ModularityTest, SingleCommunityIsZero) {
  // One community: Q = |E|/|E| − 1² = 0.
  std::vector<Edge> edges{{0, 1}, {1, 2}, {0, 2}};
  const auto g = Graph::from_edges(3, edges);
  EXPECT_NEAR(modularity(g, {0, 0, 0}), 0.0, 1e-12);
}

TEST(ModularityTest, TwoCliquesPerfectSplit) {
  // Two triangles joined by one edge; the natural split has high Q.
  const auto g = Graph::from_edges(
      6, std::vector<Edge>{
             {0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
  const double good = modularity(g, {0, 0, 0, 1, 1, 1});
  const double bad = modularity(g, {0, 1, 0, 1, 0, 1});
  EXPECT_GT(good, 0.3);
  EXPECT_GT(good, bad);
}

TEST(ModularityTest, HandComputedValue) {
  // Path 0-1-2-3 split {0,1} | {2,3}: |E|=3, intra=2 (edges 01, 23),
  // vols: {1+2, 2+1} = {3, 3} → Q = 2/3 − 2·(3/6)² = 2/3 − 1/2 = 1/6.
  const auto g =
      Graph::from_edges(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}});
  EXPECT_NEAR(modularity(g, {0, 0, 1, 1}), 1.0 / 6.0, 1e-12);
}

TEST(ModularityTest, EdgelessGraphIsZero) {
  const auto g = Graph::from_edges(4, {});
  EXPECT_DOUBLE_EQ(modularity(g, {0, 1, 2, 3}), 0.0);
}

TEST(ModularityTest, PlantedPartitionScoresHigh) {
  random::Rng rng(3);
  const auto pg = stochastic_block_model({60, 60, 60}, 0.4, 0.01, rng);
  const double planted = modularity(pg.graph, pg.labels);
  std::vector<std::uint32_t> shuffled = pg.labels;
  random::shuffle(rng, shuffled);
  EXPECT_GT(planted, 0.5);
  EXPECT_LT(modularity(pg.graph, shuffled), 0.1);
}

TEST(ModularityTest, SizeMismatchThrows) {
  const auto g = Graph::from_edges(3, std::vector<Edge>{{0, 1}});
  EXPECT_THROW((void)modularity(g, {0, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace sgp::graph
