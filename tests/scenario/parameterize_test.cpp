// Unit tests for the PARAMETERIZE/OPTION/PICK product-set engine
// (core/scenario.hpp): axis construction, label derivation, product
// iteration order and count, and the label-hash seed derivation.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/scenario.hpp"

namespace sgp::core::scenario {
namespace {

SGP_PARAMETERIZE(small_sizes, std::size_t, n,
    SGP_OPTION(n, 2);
    SGP_OPTION(n, 16);
    SGP_OPTION(n, 64);
)

SGP_PARAMETERIZE(growth_rates, double, rate,
    SGP_OPTION(rate, 0.5);
    SGP_OPTION_LABELED(rate, "double", 2.0);
)

enum class Flavor { kPlain, kFancy };

SGP_PARAMETERIZE(flavors, Flavor, flavor,
    SGP_OPTION_LABELED(flavor, "plain", Flavor::kPlain);
    SGP_OPTION_LABELED(flavor, "fancy", Flavor::kFancy);
)

TEST(Parameterize, AxisExposesNameSizeAndLabels) {
  const auto& axis = sgp_axis_small_sizes();
  EXPECT_EQ(axis.name, "small_sizes");
  ASSERT_EQ(axis.size(), 3u);
  EXPECT_EQ(axis.options[0].label, "2");
  EXPECT_EQ(axis.options[0].value, 2u);
  EXPECT_EQ(axis.options[2].label, "64");
  EXPECT_EQ(axis.options[2].value, 64u);
}

TEST(Parameterize, ExplicitLabelsOverrideStringification) {
  const auto& axis = sgp_axis_growth_rates();
  ASSERT_EQ(axis.size(), 2u);
  EXPECT_EQ(axis.options[0].label, "0.5");
  EXPECT_EQ(axis.options[1].label, "double");
  EXPECT_DOUBLE_EQ(axis.options[1].value, 2.0);
}

TEST(Parameterize, PickIteratesEveryOptionInDeclarationOrder) {
  std::vector<std::size_t> seen;
  std::size_t n = 0;
  SGP_PICK(small_sizes, n) seen.push_back(n);
  EXPECT_EQ(seen, (std::vector<std::size_t>{2, 16, 64}));
}

TEST(Parameterize, JuxtaposedPicksVisitTheFullProductExactlyOnce) {
  std::set<std::string> cells;
  std::size_t count = 0;
  [[maybe_unused]] std::size_t n = 0;
  [[maybe_unused]] double rate = 0.0;
  [[maybe_unused]] Flavor flavor = Flavor::kPlain;
  SGP_PICK(small_sizes, n)
  SGP_PICK(growth_rates, rate)
  SGP_PICK(flavors, flavor) {
    cells.insert(join_labels({SGP_PICK_LABEL(n), SGP_PICK_LABEL(rate),
                              SGP_PICK_LABEL(flavor)}));
    ++count;
  }
  EXPECT_EQ(count, sgp_axis_small_sizes().size() *
                       sgp_axis_growth_rates().size() *
                       sgp_axis_flavors().size());
  EXPECT_EQ(cells.size(), count) << "duplicate cells visited";
  EXPECT_TRUE(cells.count("2/0.5/plain"));
  EXPECT_TRUE(cells.count("64/double/fancy"));
}

TEST(Parameterize, PickLabelNamesTheBoundOption) {
  [[maybe_unused]] std::size_t n = 0;
  std::vector<std::string> labels;
  SGP_PICK(small_sizes, n) labels.push_back(SGP_PICK_LABEL(n));
  EXPECT_EQ(labels, (std::vector<std::string>{"2", "16", "64"}));
}

TEST(Parameterize, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Parameterize, CellSeedIsDeterministicAndLabelSensitive) {
  const std::uint64_t s1 = cell_seed(7, "generator=sbm/task=cluster");
  const std::uint64_t s2 = cell_seed(7, "generator=sbm/task=cluster");
  const std::uint64_t s3 = cell_seed(7, "generator=sbm/task=rank");
  const std::uint64_t s4 = cell_seed(8, "generator=sbm/task=cluster");
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, s3);
  EXPECT_NE(s1, s4);
}

TEST(Parameterize, JoinLabelsUsesSlashSeparator) {
  EXPECT_EQ(join_labels({"a=1", "b=2", "c=3"}), "a=1/b=2/c=3");
  EXPECT_EQ(join_labels({"only"}), "only");
  EXPECT_EQ(join_labels({}), "");
}

}  // namespace
}  // namespace sgp::core::scenario
