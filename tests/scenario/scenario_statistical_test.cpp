// Statistical layer of the scenario grid (slow configuration only:
// `ctest -C slow -L slow`): utility tolerance bands per mechanism over the
// SBM cells — NMI/ARI community recovery, ranking overlap, degree-
// distribution distance, and conductance against the non-private baseline.
// All cell seeds are fixed, so every score is a constant of the build and
// the bands cannot flake; they are pinned from observed values and encode
// the honest utility story: the privgraph mechanism's community recovery is
// ε-monotone and real at ε=4, degree structure survives at every ε, the
// node-level variant pays its degree-cap cost, and a projection release
// (an embedding, not a graph) preserves none of the degree profile.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "cluster/louvain.hpp"
#include "cluster/metrics.hpp"
#include "core/mechanism.hpp"
#include "core/scenario.hpp"
#include "graph/generators.hpp"

namespace sgp::core::scenario {
namespace {

struct CellScore {
  double score = 0.0;
  double reference = 0.0;
};

// One sweep over the SBM half of the grid, cached for all assertions.
class ScenarioBands : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    scores_ = new std::map<std::string, CellScore>;
    releases_ = new std::map<std::string, MechanismRelease>;
    planted_ = new std::map<std::string, graph::PlantedGraph>;
    for (const auto& cell : standard_grid()) {
      if (cell.generator != GeneratorKind::kSbm) continue;
      const auto graph = make_scenario_graph(cell.generator, cell.seed);
      const auto release = make_mechanism(cell.mechanism)
                               ->publish(graph.graph, cell_options(cell));
      CellScore entry;
      entry.score = run_task(release, cell.task, graph, cell.seed);
      entry.reference = reference_score(cell.task, graph, cell.seed);
      scores_->emplace(cell.label, entry);
      releases_->emplace(cell.label, release);
      planted_->emplace(cell.label, graph);
    }
  }

  static void TearDownTestSuite() {
    delete scores_;
    delete releases_;
    delete planted_;
    scores_ = nullptr;
    releases_ = nullptr;
    planted_ = nullptr;
  }

  static double score(const std::string& mechanism, const std::string& eps,
                      const std::string& task) {
    const std::string label = "generator=sbm/mechanism=" + mechanism +
                              "/epsilon=" + eps + "/task=" + task;
    auto it = scores_->find(label);
    EXPECT_NE(it, scores_->end()) << label;
    return it == scores_->end() ? -1.0 : it->second.score;
  }

  static double reference(const std::string& mechanism, const std::string& eps,
                          const std::string& task) {
    const std::string label = "generator=sbm/mechanism=" + mechanism +
                              "/epsilon=" + eps + "/task=" + task;
    return scores_->at(label).reference;
  }

  static std::map<std::string, CellScore>* scores_;
  static std::map<std::string, MechanismRelease>* releases_;
  static std::map<std::string, graph::PlantedGraph>* planted_;
};

std::map<std::string, CellScore>* ScenarioBands::scores_ = nullptr;
std::map<std::string, MechanismRelease>* ScenarioBands::releases_ = nullptr;
std::map<std::string, graph::PlantedGraph>* ScenarioBands::planted_ = nullptr;

TEST_F(ScenarioBands, PrivGraphCommunityRecoveryIsEpsilonMonotone) {
  // Observed: 0.025 / 0.032 / 0.398. The low-ε cells are honestly near
  // zero — edge-DP community detection on a 240-node graph has no signal
  // at ε₁ < ~2 — and the ε=4 cell recovers real structure.
  EXPECT_LE(score("privgraph", "1", "cluster"), 0.20);
  EXPECT_LE(score("privgraph", "2", "cluster"), 0.25);
  EXPECT_GE(score("privgraph", "4", "cluster"), 0.30);
  EXPECT_GT(score("privgraph", "4", "cluster"),
            score("privgraph", "1", "cluster") + 0.20);
}

TEST_F(ScenarioBands, PrivGraphSyntheticAgreesOnAriToo) {
  // NMI can overrate shattered partitions; ARI double-checks the ε=4 cell
  // with a chance-corrected index (observed: NMI 0.448, ARI 0.436 for the
  // Louvain partition of the synthetic graph).
  const std::string label =
      "generator=sbm/mechanism=privgraph/epsilon=4/task=cluster";
  const auto& release = releases_->at(label);
  ASSERT_TRUE(release.synthetic.has_value());
  const auto part = cluster::louvain_cluster(*release.synthetic);
  const auto& truth = planted_->at(label).labels;
  EXPECT_GE(cluster::adjusted_rand_index(part.assignments, truth), 0.30);
  EXPECT_GE(cluster::normalized_mutual_information(part.assignments, truth),
            0.30);
}

TEST_F(ScenarioBands, PrivGraphPreservesDegreeDistributionAtEveryEpsilon) {
  // Observed 0.908 / 0.900 / 0.921: the community profile reproduces the
  // degree distribution almost independently of ε (block counts are large
  // relative to their noise at every grid point).
  for (const std::string eps : {"1", "2", "4"}) {
    EXPECT_GE(score("privgraph", eps, "degree"), 0.85) << "epsilon " << eps;
  }
}

TEST_F(ScenarioBands, ProjectionReleasesDoNotExposeDegrees) {
  // An embedding release scores near zero on degree reconstruction
  // (observed 0.029 / 0.062 / 0.121) — the honest contrast that makes the
  // E14 comparison table informative.
  for (const std::string eps : {"1", "2", "4"}) {
    EXPECT_LE(score("projection", eps, "degree"), 0.20) << "epsilon " << eps;
  }
}

TEST_F(ScenarioBands, NodeCommunityPaysItsDegreeCapCost) {
  // Node-level DP clamps degrees before publishing; the degree score lands
  // between the privgraph and projection extremes (observed 0.571 / 0.425 /
  // 0.637) and community recovery stays near zero at every grid ε (the D=16
  // sensitivity multiplier puts ε₁_effective far below recovery threshold).
  for (const std::string eps : {"1", "2", "4"}) {
    const double deg = score("node-community", eps, "degree");
    EXPECT_GE(deg, 0.30) << "epsilon " << eps;
    EXPECT_LE(deg, 0.80) << "epsilon " << eps;
    EXPECT_LE(score("node-community", eps, "cluster"), 0.20)
        << "epsilon " << eps;
  }
}

TEST_F(ScenarioBands, ConductanceApproachesBaselineOnlyAtHighEpsilon) {
  // Observed: privgraph 0.202 / 0.164 / 0.617 against references ~0.78.
  const double high = score("privgraph", "4", "conductance");
  EXPECT_GE(high, 0.45);
  EXPECT_LE(reference("privgraph", "4", "conductance") - high, 0.40);
  EXPECT_LE(score("privgraph", "1", "conductance"), 0.40);
}

TEST_F(ScenarioBands, RankingOverlapStaysHonestlyWeak) {
  // Top-set ranking overlap on SBM (near-uniform degrees) is weak for every
  // mechanism at these budgets (observed max 0.208). The band documents
  // that no mechanism pretends to preserve ranking here; a future
  // ranking-targeted mechanism must move this band up deliberately.
  for (const std::string mech : {"projection", "privgraph",
                                 "node-community"}) {
    for (const std::string eps : {"1", "2", "4"}) {
      const double s = score(mech, eps, "rank");
      EXPECT_GE(s, 0.0) << mech << " epsilon " << eps;
      EXPECT_LE(s, 0.60) << mech << " epsilon " << eps;
    }
  }
}

TEST_F(ScenarioBands, ScoresAreBuildConstants) {
  // Recomputing any cell reproduces the cached score bit-for-bit — the
  // bands above can never flake.
  for (const auto& cell : standard_grid()) {
    if (cell.generator != GeneratorKind::kSbm) continue;
    if (cell.task != TaskKind::kCluster) continue;
    const auto graph = make_scenario_graph(cell.generator, cell.seed);
    const auto release = make_mechanism(cell.mechanism)
                             ->publish(graph.graph, cell_options(cell));
    EXPECT_EQ(run_task(release, cell.task, graph, cell.seed),
              scores_->at(cell.label).score)
        << cell.label;
  }
}

}  // namespace
}  // namespace sgp::core::scenario
