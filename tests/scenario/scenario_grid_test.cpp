// Tier-1 structural suite over the standard mechanism grid (ctest label:
// scenario): every cell of {generator × mechanism × (ε, δ) × task} publishes
// a valid release, charges the budget ledger exactly once with the cell's
// exact (ε, δ), preserves the node count, reproduces byte-identically under
// its cell seed, and scores its task inside [0, 1]. The statistical layer
// (utility bands) lives in scenario_statistical_test.cpp under the `slow`
// configuration.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/ledger.hpp"
#include "core/mechanism.hpp"
#include "core/scenario.hpp"
#include "dp/defaults.hpp"
#include "dp/rdp_accountant.hpp"
#include "util/errors.hpp"

namespace sgp::core::scenario {
namespace {

std::size_t expected_grid_size() {
  return known_generator_names().size() * known_mechanism_names().size() *
         (sizeof(dp::kScenarioEpsilons) / sizeof(dp::kScenarioEpsilons[0])) *
         known_task_names().size();
}

TEST(ScenarioGrid, MaterializesTheFullProductSet) {
  const auto grid = standard_grid();
  ASSERT_EQ(grid.size(), expected_grid_size());
  ASSERT_GE(known_mechanism_names().size(), 3u);
  ASSERT_GE(known_generator_names().size(), 2u);
  ASSERT_GE(known_task_names().size(), 3u);

  std::set<std::string> labels;
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i].index, i);
    EXPECT_EQ(grid[i].seed, cell_seed(kScenarioBaseSeed, grid[i].label));
    labels.insert(grid[i].label);
    seeds.insert(grid[i].seed);
  }
  EXPECT_EQ(labels.size(), grid.size()) << "cell labels must be unique";
  EXPECT_EQ(seeds.size(), grid.size()) << "cell seeds must be unique";
}

TEST(ScenarioGrid, LabelsCarryEveryAxis) {
  for (const auto& cell : standard_grid()) {
    EXPECT_NE(cell.label.find("generator="), std::string::npos) << cell.label;
    EXPECT_NE(cell.label.find("mechanism=" + to_string(cell.mechanism)),
              std::string::npos)
        << cell.label;
    EXPECT_NE(cell.label.find("epsilon="), std::string::npos) << cell.label;
    EXPECT_NE(cell.label.find("task=" + to_string(cell.task)),
              std::string::npos)
        << cell.label;
    EXPECT_EQ(cell.budget.delta, dp::kScenarioDelta);
  }
}

TEST(ScenarioGrid, GridIsStableAcrossCalls) {
  const auto a = standard_grid();
  const auto b = standard_grid();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

// The heavyweight per-cell sweep: one test so the shared setup (nothing) and
// the per-cell ledger/accountant plumbing stay in one auditable loop.
TEST(ScenarioGrid, EveryCellChargesOnceValidatesAndReproduces) {
  const auto grid = standard_grid();
  const std::string ledger_path =
      testing::TempDir() + "/sgp_scenario_grid.ledger";

  for (const auto& cell : grid) {
    SCOPED_TRACE(cell.label);
    const auto planted =
        make_scenario_graph(cell.generator, cell.seed);
    ASSERT_EQ(planted.graph.num_nodes(), kScenarioNodes);

    std::remove(ledger_path.c_str());
    BudgetLedger ledger(ledger_path);
    dp::RdpAccountant accountant;
    MechanismOptions options = cell_options(cell);
    options.ledger = &ledger;
    options.accountant = &accountant;

    const auto mechanism = make_mechanism(cell.mechanism);
    const MechanismRelease release =
        mechanism->publish(planted.graph, options);

    // Budget charged exactly once, with the cell's exact (ε, δ).
    ASSERT_EQ(ledger.size(), 1u);
    const BudgetLedger::Record& record = ledger.records().front();
    EXPECT_EQ(record.index, 1u);
    EXPECT_DOUBLE_EQ(record.epsilon, cell.budget.epsilon);
    EXPECT_DOUBLE_EQ(record.delta, cell.budget.delta);
    EXPECT_GT(record.sigma, 0.0);
    EXPECT_GT(record.sensitivity, 0.0);

    // The accountant saw the release's composition (projection: one
    // Gaussian; community mechanisms: two Laplace phases).
    const std::size_t expected_releases =
        cell.mechanism == MechanismKind::kProjection ? 1u : 2u;
    EXPECT_EQ(accountant.num_releases(), expected_releases);
    const dp::PrivacyParams accounted = accountant.to_dp(cell.budget.delta);
    EXPECT_GT(accounted.epsilon, 0.0);

    // Structural validity.
    EXPECT_TRUE(release.validate());
    EXPECT_EQ(release.kind, cell.mechanism);
    EXPECT_EQ(release.num_nodes, kScenarioNodes);

    // Task scores live in [0, 1], bounded by a sane reference.
    const double score = run_task(release, cell.task, planted, cell.seed);
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
    const double reference = reference_score(cell.task, planted, cell.seed);
    EXPECT_GE(reference, 0.0);
    EXPECT_LE(reference, 1.0);

    // Seed determinism: a second publish under the same cell seed is
    // byte-identical (the ledger/accountant are not part of the bytes).
    const MechanismRelease again =
        mechanism->publish(planted.graph, cell_options(cell));
    EXPECT_EQ(release_fingerprint(release), release_fingerprint(again));
  }
  std::remove(ledger_path.c_str());
}

TEST(ScenarioGrid, PublishWorksWithoutLedgerOrAccountant) {
  const auto grid = standard_grid();
  const auto& cell = grid.front();
  const auto planted = make_scenario_graph(cell.generator, cell.seed);
  const auto release =
      make_mechanism(cell.mechanism)->publish(planted.graph,
                                              cell_options(cell));
  EXPECT_TRUE(release.validate());
}

TEST(ScenarioGrid, InvalidBudgetIsRejectedBeforeCharging) {
  const auto grid = standard_grid();
  const auto& cell = grid.front();
  const auto planted = make_scenario_graph(cell.generator, cell.seed);
  MechanismOptions options = cell_options(cell);
  options.params.epsilon = -1.0;
  EXPECT_THROW(
      make_mechanism(cell.mechanism)->publish(planted.graph, options),
      util::PreconditionError);
}

TEST(ScenarioGrid, ParseRoundTripsEveryAxisName) {
  for (const auto& name : known_mechanism_names()) {
    EXPECT_EQ(to_string(parse_mechanism(name)), name);
  }
  for (const auto& name : known_generator_names()) {
    EXPECT_EQ(to_string(parse_generator(name)), name);
  }
  for (const auto& name : known_task_names()) {
    EXPECT_EQ(to_string(parse_task(name)), name);
  }
  EXPECT_THROW(static_cast<void>(parse_mechanism("nope")),
               util::PreconditionError);
  EXPECT_THROW(static_cast<void>(parse_generator("nope")),
               util::PreconditionError);
  EXPECT_THROW(static_cast<void>(parse_task("nope")), util::PreconditionError);
}

}  // namespace
}  // namespace sgp::core::scenario
