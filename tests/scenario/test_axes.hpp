// Shared product-set axes for the migrated differential/statistical suites.
//
// These axes replace the hand-rolled nested loops that used to live inside
// tests/slow/differential_matrix_test.cpp,
// tests/integration/kernel_differential_test.cpp and
// tests/slow/statistical_deep_test.cpp. Declaring them once here keeps the
// coverage inspectable: tests/scenario/migration_pin_test.cpp pins the exact
// cell counts (and option values) the hand-rolled loops had, so a migration
// can never silently shrink a matrix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "core/scenario.hpp"
#include "random/kernel_variant.hpp"

namespace sgp::test_axes {

/// (shard_rows, threads) pairs — SGP_PARAMETERIZE is a macro, so the pair
/// type needs a comma-free name.
using ShardThread = std::pair<std::size_t, std::size_t>;

/// Node count of the slow differential matrix graphs (the `n` in the
/// single-shard option of the shard-height axis).
inline constexpr std::size_t kDiffNodes = 700;

// --- tests/slow/differential_matrix_test.cpp ------------------------------

// Shard heights: row-per-shard, ragged odd size, a round block, and
// single-shard (= the whole graph).
SGP_PARAMETERIZE(diff_shard_rows, std::size_t, rows,
    SGP_OPTION(rows, 1);
    SGP_OPTION(rows, 7);
    SGP_OPTION(rows, 64);
    SGP_OPTION_LABELED(rows, "700", kDiffNodes);
)

SGP_PARAMETERIZE(diff_threads, std::size_t, threads,
    SGP_OPTION(threads, 1);
    SGP_OPTION(threads, 2);
    SGP_OPTION(threads, 8);
)

SGP_PARAMETERIZE(diff_workers, std::size_t, workers,
    SGP_OPTION(workers, 1);
    SGP_OPTION(workers, 2);
    SGP_OPTION(workers, 4);
)

// Kernel axis of the slow matrix: every variant crossed with shard height ×
// thread count. Unsupported variants skip at runtime; the axis still lists
// them so the coverage contract is machine-checkable.
SGP_PARAMETERIZE(kernel_variants, sgp::random::KernelVariant, kernel,
    SGP_OPTION_LABELED(kernel, "scalar", sgp::random::KernelVariant::kScalar);
    SGP_OPTION_LABELED(kernel, "generic",
                       sgp::random::KernelVariant::kGeneric);
    SGP_OPTION_LABELED(kernel, "avx2", sgp::random::KernelVariant::kAvx2);
    SGP_OPTION_LABELED(kernel, "avx512", sgp::random::KernelVariant::kAvx512);
)

SGP_PARAMETERIZE(kernel_matrix_shard_rows, std::size_t, rows,
    SGP_OPTION(rows, 7);
    SGP_OPTION(rows, 64);
    SGP_OPTION_LABELED(rows, "700", kDiffNodes);
)

SGP_PARAMETERIZE(kernel_matrix_threads, std::size_t, threads,
    SGP_OPTION(threads, 1);
    SGP_OPTION(threads, 8);
)

SGP_PARAMETERIZE(compact_shard_rows, std::size_t, rows,
    SGP_OPTION(rows, 1);
    SGP_OPTION(rows, 17);
    SGP_OPTION(rows, 300);
)

// --- tests/integration/kernel_differential_test.cpp -----------------------

// The tier-1 representative slice of the shard×thread sweep: ragged
// single-threaded, mid-size multi-threaded, and default-height (0 = let the
// planner choose) at higher parallelism.
SGP_PARAMETERIZE(kernel_diff_shard_thread, sgp::test_axes::ShardThread, cell,
    SGP_OPTION_LABELED(cell, "s7t1", sgp::test_axes::ShardThread{7, 1});
    SGP_OPTION_LABELED(cell, "s16t3", sgp::test_axes::ShardThread{16, 3});
    SGP_OPTION_LABELED(cell, "s0t4", sgp::test_axes::ShardThread{0, 4});
)

// --- tests/slow/statistical_deep_test.cpp ---------------------------------

// Polynomial (batch) kernel variants — scalar is the reference, not a cell.
SGP_PARAMETERIZE(poly_kernel_variants, sgp::random::KernelVariant, kernel,
    SGP_OPTION_LABELED(kernel, "generic",
                       sgp::random::KernelVariant::kGeneric);
    SGP_OPTION_LABELED(kernel, "avx2", sgp::random::KernelVariant::kAvx2);
    SGP_OPTION_LABELED(kernel, "avx512", sgp::random::KernelVariant::kAvx512);
)

// Counter-window lags for the cross-window correlation check.
SGP_PARAMETERIZE(noise_lags, std::uint64_t, lag,
    SGP_OPTION(lag, 1);
    SGP_OPTION(lag, 64);
    SGP_OPTION(lag, 4096);
)

}  // namespace sgp::test_axes
