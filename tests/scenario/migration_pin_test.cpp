// Coverage pins for the suites migrated onto the product-set engine: the
// axis products must equal the cell counts of the hand-rolled loops they
// replaced (and the option values must be the same points). A failing pin
// means a migration silently changed test coverage.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "random/kernel_variant.hpp"

#include "test_axes.hpp"

namespace sgp::test_axes {
namespace {

TEST(MigrationPins, SlowShardThreadMatrixKeepsTwelveCells) {
  // tests/slow/differential_matrix_test.cpp used to INSTANTIATE a gtest
  // Combine over shard heights {1, 7, 64, 700} × threads {1, 2, 8}.
  EXPECT_EQ(sgp_axis_diff_shard_rows().size(), 4u);
  EXPECT_EQ(sgp_axis_diff_threads().size(), 3u);
  EXPECT_EQ(sgp_axis_diff_shard_rows().size() * sgp_axis_diff_threads().size(),
            12u);

  std::vector<std::size_t> rows;
  for (const auto& o : sgp_axis_diff_shard_rows().options) {
    rows.push_back(o.value);
  }
  EXPECT_EQ(rows, (std::vector<std::size_t>{1, 7, 64, kDiffNodes}));
  std::vector<std::size_t> threads;
  for (const auto& o : sgp_axis_diff_threads().options) {
    threads.push_back(o.value);
  }
  EXPECT_EQ(threads, (std::vector<std::size_t>{1, 2, 8}));
}

TEST(MigrationPins, SlowWorkerAxisKeepsThreeCells) {
  std::vector<std::size_t> workers;
  for (const auto& o : sgp_axis_diff_workers().options) {
    workers.push_back(o.value);
  }
  EXPECT_EQ(workers, (std::vector<std::size_t>{1, 2, 4}));
}

TEST(MigrationPins, SlowKernelMatrixKeepsTwentyFourCells) {
  // Variants {scalar, generic, avx2, avx512} × shard heights {7, 64, 700} ×
  // threads {1, 8}.
  EXPECT_EQ(sgp_axis_kernel_variants().size(), 4u);
  EXPECT_EQ(sgp_axis_kernel_matrix_shard_rows().size(), 3u);
  EXPECT_EQ(sgp_axis_kernel_matrix_threads().size(), 2u);
  EXPECT_EQ(sgp_axis_kernel_variants().size() *
                sgp_axis_kernel_matrix_shard_rows().size() *
                sgp_axis_kernel_matrix_threads().size(),
            24u);

  std::set<sgp::random::KernelVariant> variants;
  for (const auto& o : sgp_axis_kernel_variants().options) {
    variants.insert(o.value);
  }
  EXPECT_TRUE(variants.count(sgp::random::KernelVariant::kScalar));
  EXPECT_TRUE(variants.count(sgp::random::KernelVariant::kGeneric));
  EXPECT_TRUE(variants.count(sgp::random::KernelVariant::kAvx2));
  EXPECT_TRUE(variants.count(sgp::random::KernelVariant::kAvx512));
}

TEST(MigrationPins, CompactIdShardAxisKeepsThreeCells) {
  std::vector<std::size_t> rows;
  for (const auto& o : sgp_axis_compact_shard_rows().options) {
    rows.push_back(o.value);
  }
  EXPECT_EQ(rows, (std::vector<std::size_t>{1, 17, 300}));
}

TEST(MigrationPins, KernelDifferentialSliceKeepsThreeCells) {
  // tests/integration/kernel_differential_test.cpp used to loop over the
  // initializer list {{7,1}, {16,3}, {0,4}}.
  const auto& axis = sgp_axis_kernel_diff_shard_thread();
  ASSERT_EQ(axis.size(), 3u);
  EXPECT_EQ(axis.options[0].value, (ShardThread{7, 1}));
  EXPECT_EQ(axis.options[1].value, (ShardThread{16, 3}));
  EXPECT_EQ(axis.options[2].value, (ShardThread{0, 4}));
}

TEST(MigrationPins, DeepStatisticalAxesKeepTheirCells) {
  // tests/slow/statistical_deep_test.cpp used to loop over polynomial
  // variants {generic, avx2, avx512} and lags {1, 64, 4096}.
  EXPECT_EQ(sgp_axis_poly_kernel_variants().size(), 3u);
  std::vector<std::uint64_t> lags;
  for (const auto& o : sgp_axis_noise_lags().options) lags.push_back(o.value);
  EXPECT_EQ(lags, (std::vector<std::uint64_t>{1, 64, 4096}));
}

}  // namespace
}  // namespace sgp::test_axes
