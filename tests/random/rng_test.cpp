#include "random/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

namespace sgp::random {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differ = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() != b()) ++differ;
  }
  EXPECT_GT(differ, 90);
}

TEST(RngTest, SplitMix64KnownValues) {
  // Reference values from the canonical splitmix64 implementation with
  // initial state 1234567.
  std::uint64_t state = 1234567;
  const std::uint64_t v1 = splitmix64(state);
  const std::uint64_t v2 = splitmix64(state);
  EXPECT_NE(v1, v2);
  EXPECT_EQ(state, 1234567ULL + 2 * 0x9e3779b97f4a7c15ULL);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(42);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(RngTest, NextBelowApproximatelyUniform) {
  Rng rng(5);
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(bound)];
  for (std::uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], n / static_cast<int>(bound), 500) << "value " << v;
  }
}

TEST(RngTest, JumpProducesDisjointStream) {
  Rng base(123);
  Rng jumped = base;
  jumped.jump();
  std::set<std::uint64_t> head;
  Rng a = base;
  for (int i = 0; i < 1000; ++i) head.insert(a());
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    if (head.count(jumped())) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(RngTest, SplitIsDeterministicAndLeavesOriginalIntact) {
  Rng base(77);
  const Rng snapshot = base;
  Rng s1 = base.split(3);
  Rng s2 = base.split(3);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(s1(), s2());
  // base unchanged by split()
  Rng snap_copy = snapshot;
  for (int i = 0; i < 100; ++i) ASSERT_EQ(base(), snap_copy());
}

TEST(RngTest, BitsLookBalanced) {
  Rng rng(2024);
  int ones = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) ones += __builtin_popcountll(rng());
  const double mean_bits = static_cast<double>(ones) / n;
  EXPECT_NEAR(mean_bits, 32.0, 0.5);
}

}  // namespace
}  // namespace sgp::random
