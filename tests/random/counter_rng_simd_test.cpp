// Contracts of the batched counter-RNG kernels (random/counter_rng_simd.hpp):
//   - bits/uniform batches are bit-identical to the scalar methods under
//     every variant this machine supports;
//   - normal batches under kScalar reproduce CounterRng::normal byte-for-byte;
//   - the polynomial variants (generic/avx2/avx512) are bit-identical to each
//     other, elementwise within 1e-12 of the libm scalar mapping, and pass
//     the same KS / chi-square / moments suite the dp noise layer enforces;
//   - the 2^63 word-doubling guard rejects wrapping counter ranges.
// Everything is fixed-seed and deterministic, so no assertion here can flake.
#include "random/counter_rng_simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "../dp/stat_utils.hpp"
#include "random/counter_rng.hpp"
#include "random/kernel_variant.hpp"
#include "util/errors.hpp"

namespace sgp::random {
namespace {

constexpr std::uint64_t kWordLimit = std::uint64_t{1} << 63;

/// Variants that can actually run in this process (always includes scalar
/// and generic; avx2/avx512 when compiled in and reported by cpuid).
std::vector<KernelVariant> supported_variants() {
  std::vector<KernelVariant> v{KernelVariant::kScalar, KernelVariant::kGeneric};
  if (kernel_supported(KernelVariant::kAvx2)) v.push_back(KernelVariant::kAvx2);
  if (kernel_supported(KernelVariant::kAvx512)) {
    v.push_back(KernelVariant::kAvx512);
  }
  return v;
}

std::vector<KernelVariant> supported_polynomial_variants() {
  auto v = supported_variants();
  v.erase(std::remove(v.begin(), v.end(), KernelVariant::kScalar), v.end());
  return v;
}

/// min(absolute, relative) difference — the elementwise metric the
/// polynomial-vs-libm contract is stated in.
double elementwise_err(double a, double b) {
  const double abs_err = std::abs(a - b);
  const double scale = std::max(std::abs(a), std::abs(b));
  return scale > 0.0 ? std::min(abs_err, abs_err / scale) : abs_err;
}

TEST(CounterRngSimdTest, BitsBatchBitIdenticalUnderEveryVariant) {
  const CounterRng rng(42, 0);
  // An odd count exercises every vector tail; an unaligned begin exercises
  // lane offsets.
  const std::uint64_t begin = 12'345;
  const std::size_t count = 1'027;
  for (const KernelVariant v : supported_variants()) {
    std::vector<std::uint64_t> out(count);
    bits_batch(rng, begin, count, out.data(), v);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(out[i], rng.bits(begin + i))
          << "variant " << to_string(v) << " index " << i;
    }
  }
}

TEST(CounterRngSimdTest, UniformBatchBitIdenticalUnderEveryVariant) {
  const CounterRng rng(7, 1);
  const std::uint64_t begin = 999;
  const std::size_t count = 513;
  for (const KernelVariant v : supported_variants()) {
    std::vector<double> out(count);
    uniform_batch(rng, begin, count, out.data(), v);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(out[i], rng.uniform(begin + i))
          << "variant " << to_string(v) << " index " << i;
    }
  }
}

TEST(CounterRngSimdTest, NormalBatchScalarIsByteIdenticalToCounterRng) {
  const CounterRng rng(97, 1);
  const std::size_t count = 1'000;
  std::vector<double> out(count);
  normal_batch(rng, 0, count, out.data(), KernelVariant::kScalar);
  for (std::size_t i = 0; i < count; ++i) {
    // Bit-level equality, not EXPECT_DOUBLE_EQ: the scalar batch IS the
    // golden path.
    ASSERT_EQ(out[i], rng.normal(i)) << "index " << i;
  }
}

TEST(CounterRngSimdTest, PolynomialVariantsAreBitIdenticalToEachOther) {
  const CounterRng rng(42, 1);
  const std::size_t count = 4'096 + 7;  // ragged tail past every lane width
  std::vector<double> reference(count);
  normal_batch(rng, 31, count, reference.data(), KernelVariant::kGeneric);
  for (const KernelVariant v : supported_polynomial_variants()) {
    std::vector<double> out(count);
    normal_batch(rng, 31, count, out.data(), v);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(out[i], reference[i])
          << "variant " << to_string(v) << " index " << i;
    }
  }
}

TEST(CounterRngSimdTest, PolynomialNormalsTrackScalarElementwise) {
  const CounterRng rng(1234, 1);
  const std::size_t count = 20'000;
  std::vector<double> scalar(count);
  std::vector<double> poly(count);
  normal_batch(rng, 0, count, scalar.data(), KernelVariant::kScalar);
  normal_batch(rng, 0, count, poly.data(), KernelVariant::kGeneric);
  double worst = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    worst = std::max(worst, elementwise_err(poly[i], scalar[i]));
  }
  // Prototype measurement is ~8e-16 (sub-ulp polynomials); 1e-12 leaves
  // three orders of margin while still catching any real coefficient or
  // range-reduction regression.
  EXPECT_LT(worst, 1e-12);
}

TEST(CounterRngSimdTest, EveryVariantPassesTheDpStatisticalSuite) {
  // Same critical values as tests/dp/noise_statistics_test.cpp:
  // P[sqrt(n)·D > 1.95] ≈ 0.001, chi-square(31 dof) P[X > 61.1] ≈ 0.001.
  constexpr double kKsCritical = 1.95;
  constexpr std::size_t kChiBins = 32;
  constexpr double kChiCritical = 61.1;
  const CounterRng rng(97, 1);
  const std::size_t n = 20'000;
  for (const KernelVariant v : supported_variants()) {
    std::vector<double> samples(n);
    normal_batch(rng, 0, n, samples.data(), v);
    const double ks = test_stats::ks_statistic_normal(samples);
    EXPECT_LT(std::sqrt(static_cast<double>(n)) * ks, kKsCritical)
        << "variant " << to_string(v);
    EXPECT_LT(test_stats::chi_square_normal(samples, kChiBins), kChiCritical)
        << "variant " << to_string(v);
    const auto m = test_stats::moments(samples);
    EXPECT_NEAR(m.mean, 0.0, 0.02) << "variant " << to_string(v);
    EXPECT_NEAR(m.variance, 1.0, 0.05) << "variant " << to_string(v);
    EXPECT_NEAR(m.kurtosis, 3.0, 0.15) << "variant " << to_string(v);
  }
}

TEST(CounterRngSimdTest, RaggedCountsMatchScalarForEveryVariant) {
  // Counts 0..33 cover every remainder class of the 4- and 8-lane loops.
  const CounterRng rng(5, 0);
  for (const KernelVariant v : supported_polynomial_variants()) {
    for (std::size_t count = 0; count <= 33; ++count) {
      std::vector<double> out(count + 1, -1.0);
      normal_batch(rng, 100, count, out.data(), v);
      // One-past-the-end must be untouched.
      EXPECT_EQ(out[count], -1.0) << "variant " << to_string(v);
      std::vector<double> generic(count);
      normal_batch(rng, 100, count, generic.data(), KernelVariant::kGeneric);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(out[i], generic[i])
            << "variant " << to_string(v) << " count " << count;
      }
    }
  }
}

TEST(CounterRngSimdTest, ScalarNormalRejectsWordDoublingOverflow) {
  const CounterRng rng(42, 1);
  // 2^63 − 1 is the last legal counter; 2^63 would alias counter 0's words.
  EXPECT_NO_THROW((void)rng.normal(kWordLimit - 1));
  EXPECT_THROW((void)rng.normal(kWordLimit), util::PreconditionError);
  EXPECT_THROW((void)rng.normal(~std::uint64_t{0}), util::PreconditionError);
}

TEST(CounterRngSimdTest, ScalarNormalBoundaryIsNotAnAliasOfCounterZero) {
  // Regression shape for the wrap: before the guard, counter 2^63 consumed
  // words (0, 1) — exactly counter 0's draw. The last legal counter must
  // produce a value unrelated to counter 0.
  const CounterRng rng(42, 1);
  EXPECT_NE(rng.normal(kWordLimit - 1), rng.normal(0));
}

TEST(CounterRngSimdTest, NormalBatchRejectsRangesReachingTheLimit) {
  const CounterRng rng(42, 1);
  double out[4];
  // Last legal window of 4: [2^63 − 4, 2^63 − 1].
  EXPECT_NO_THROW(
      normal_batch(rng, kWordLimit - 4, 4, out, KernelVariant::kScalar));
  for (const KernelVariant v : supported_variants()) {
    EXPECT_THROW(normal_batch(rng, kWordLimit - 3, 4, out, v),
                 util::PreconditionError)
        << "variant " << to_string(v);
    EXPECT_THROW(normal_batch(rng, kWordLimit, 1, out, v),
                 util::PreconditionError)
        << "variant " << to_string(v);
  }
  // An empty batch is a no-op wherever it starts, matching bits/uniform.
  EXPECT_NO_THROW(
      normal_batch(rng, ~std::uint64_t{0}, 0, out, KernelVariant::kScalar));
}

TEST(CounterRngSimdTest, PolynomialVariantsAgreeAtTheCounterBoundary) {
  // The highest legal counters stress the lane-index arithmetic (adding the
  // lane offset to a counter near 2^63 − 1 must not wrap internally).
  const CounterRng rng(42, 1);
  const std::size_t count = 37;
  const std::uint64_t begin = kWordLimit - count;
  std::vector<double> reference(count);
  normal_batch(rng, begin, count, reference.data(), KernelVariant::kGeneric);
  for (const KernelVariant v : supported_polynomial_variants()) {
    std::vector<double> out(count);
    normal_batch(rng, begin, count, out.data(), v);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(out[i], reference[i]) << "variant " << to_string(v);
    }
    for (const double x : out) {
      ASSERT_TRUE(std::isfinite(x)) << "variant " << to_string(v);
    }
  }
}

TEST(KernelVariantTest, NamesRoundTrip) {
  for (const KernelVariant v :
       {KernelVariant::kAuto, KernelVariant::kScalar, KernelVariant::kGeneric,
        KernelVariant::kAvx2, KernelVariant::kAvx512}) {
    EXPECT_EQ(parse_kernel_variant(to_string(v)), v);
  }
  EXPECT_THROW((void)parse_kernel_variant("sse9"), util::ParseError);
  EXPECT_THROW((void)parse_kernel_variant(""), util::ParseError);
}

TEST(KernelVariantTest, ScalarAndGenericAreAlwaysSupported) {
  EXPECT_TRUE(kernel_supported(KernelVariant::kScalar));
  EXPECT_TRUE(kernel_supported(KernelVariant::kGeneric));
}

TEST(KernelVariantTest, ResolutionPolicy) {
  // Env-free resolution: normals pin to scalar (byte stability), exact ops
  // pick the fastest supported variant, and explicit requests resolve to
  // themselves. The env override path is exercised by the CLI integration
  // tests; mutating the environment here would race other test threads.
  if (forced_kernel_from_env() == KernelVariant::kAuto) {
    EXPECT_EQ(resolve_normal_kernel(KernelVariant::kAuto),
              KernelVariant::kScalar);
    EXPECT_NE(resolve_exact_kernel(KernelVariant::kAuto),
              KernelVariant::kAuto);
  }
  EXPECT_EQ(resolve_normal_kernel(KernelVariant::kGeneric),
            KernelVariant::kGeneric);
  EXPECT_EQ(resolve_exact_kernel(KernelVariant::kScalar),
            KernelVariant::kScalar);
}

TEST(KernelVariantTest, PolynomialMappingClassifier) {
  EXPECT_FALSE(uses_polynomial_normals(KernelVariant::kScalar));
  EXPECT_TRUE(uses_polynomial_normals(KernelVariant::kGeneric));
  EXPECT_TRUE(uses_polynomial_normals(KernelVariant::kAvx2));
  EXPECT_TRUE(uses_polynomial_normals(KernelVariant::kAvx512));
  EXPECT_THROW((void)uses_polynomial_normals(KernelVariant::kAuto),
               util::PreconditionError);
  // best_polynomial_kernel never lands on a non-polynomial variant and is
  // always runnable.
  const KernelVariant best = best_polynomial_kernel();
  EXPECT_TRUE(uses_polynomial_normals(best));
  EXPECT_TRUE(kernel_supported(best));
}

}  // namespace
}  // namespace sgp::random
