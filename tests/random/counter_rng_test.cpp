#include "random/counter_rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

namespace sgp::random {
namespace {

TEST(CounterRngTest, PureFunctionOfCounter) {
  const CounterRng rng(42, 0);
  const std::uint64_t first = rng.bits(17);
  // Query other counters in arbitrary order; 17 must not change.
  (void)rng.bits(0);
  (void)rng.bits(1'000'000);
  (void)rng.bits(17);
  EXPECT_EQ(rng.bits(17), first);
}

TEST(CounterRngTest, EqualKeysEqualSequences) {
  const CounterRng a(7, 3);
  const CounterRng b(7, 3);
  EXPECT_EQ(a, b);
  for (std::uint64_t c = 0; c < 100; ++c) {
    ASSERT_EQ(a.bits(c), b.bits(c)) << "counter " << c;
  }
}

TEST(CounterRngTest, StreamsAreIndependent) {
  const CounterRng p(42, 0);
  const CounterRng noise(42, 1);
  EXPECT_NE(p, noise);
  std::size_t collisions = 0;
  for (std::uint64_t c = 0; c < 1000; ++c) {
    if (p.bits(c) == noise.bits(c)) ++collisions;
  }
  EXPECT_EQ(collisions, 0u);
}

TEST(CounterRngTest, AdjacentSeedsDecorrelated) {
  const CounterRng a(1, 0);
  const CounterRng b(2, 0);
  std::size_t collisions = 0;
  for (std::uint64_t c = 0; c < 1000; ++c) {
    if (a.bits(c) == b.bits(c)) ++collisions;
  }
  EXPECT_EQ(collisions, 0u);
}

TEST(CounterRngTest, BitsHaveNoObviousCollisions) {
  const CounterRng rng(9, 0);
  std::set<std::uint64_t> seen;
  for (std::uint64_t c = 0; c < 10000; ++c) seen.insert(rng.bits(c));
  // 10k draws from 2^64: any collision would be astronomically unlikely.
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(CounterRngTest, UniformInUnitInterval) {
  const CounterRng rng(5, 0);
  double sum = 0.0;
  const std::size_t kDraws = 100000;
  for (std::uint64_t c = 0; c < kDraws; ++c) {
    const double u = rng.uniform(c);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(CounterRngTest, NormalMomentsMatchStandardGaussian) {
  const CounterRng rng(6, 0);
  const std::size_t kDraws = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (std::uint64_t c = 0; c < kDraws; ++c) {
    const double x = rng.normal(c);
    ASSERT_TRUE(std::isfinite(x));
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kDraws;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kDraws - mean * mean, 1.0, 0.03);
}

TEST(CounterRngTest, NormalTailsWithinReason) {
  const CounterRng rng(8, 2);
  std::size_t beyond3 = 0;
  const std::size_t kDraws = 100000;
  for (std::uint64_t c = 0; c < kDraws; ++c) {
    if (std::fabs(rng.normal(c)) > 3.0) ++beyond3;
  }
  // P(|Z| > 3) ≈ 0.27%; allow [0.1%, 0.6%].
  EXPECT_GT(beyond3, kDraws / 1000);
  EXPECT_LT(beyond3, kDraws * 6 / 1000);
}

TEST(CounterRngTest, GoldenValuesPinned) {
  // Cross-platform reproducibility contract: these exact outputs are part of
  // the release format (counter-v1 releases regenerate P from them). If this
  // test ever fails, old releases stop round-tripping — do not update the
  // constants; fix the regression.
  const CounterRng rng(42, 0);
  EXPECT_EQ(rng.bits(0), 0xb670fab97805f0a8ULL);
  EXPECT_EQ(rng.bits(1), 0xdb31ce6a0e5690f1ULL);
  EXPECT_EQ(rng.bits(12345), 0x046cc7205fab28cdULL);
  EXPECT_DOUBLE_EQ(rng.uniform(7), 0.83311230749158327);
  EXPECT_DOUBLE_EQ(rng.normal(3), 0.54774435421049639);
}

}  // namespace
}  // namespace sgp::random
