#include "random/distributions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sgp::random {
namespace {

constexpr int kSamples = 200000;

struct Moments {
  double mean = 0;
  double var = 0;
};

template <typename Draw>
Moments estimate(Draw draw) {
  double sum = 0, sum2 = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = draw();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kSamples;
  return {mean, sum2 / kSamples - mean * mean};
}

TEST(NormalTest, MomentsMatch) {
  Rng rng(1);
  const auto m = estimate([&] { return normal(rng, 2.0, 3.0); });
  EXPECT_NEAR(m.mean, 2.0, 0.05);
  EXPECT_NEAR(m.var, 9.0, 0.2);
}

TEST(NormalTest, StandardNormalTails) {
  Rng rng(2);
  int outside3 = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (std::fabs(normal(rng)) > 3.0) ++outside3;
  }
  // P(|Z| > 3) ~ 0.0027
  EXPECT_NEAR(outside3 / static_cast<double>(kSamples), 0.0027, 0.001);
}

TEST(NormalTest, NegativeStddevThrows) {
  Rng rng(1);
  EXPECT_THROW(normal(rng, 0.0, -1.0), std::invalid_argument);
}

TEST(NormalTest, ZeroStddevIsConstant) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(normal(rng, 5.0, 0.0), 5.0);
}

TEST(LaplaceTest, MomentsMatch) {
  Rng rng(3);
  const double b = 2.0;
  const auto m = estimate([&] { return laplace(rng, 1.0, b); });
  EXPECT_NEAR(m.mean, 1.0, 0.05);
  EXPECT_NEAR(m.var, 2 * b * b, 0.3);  // Var = 2b^2
}

TEST(LaplaceTest, SymmetricAroundMean) {
  Rng rng(4);
  int above = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (laplace(rng, 0.0, 1.0) > 0) ++above;
  }
  EXPECT_NEAR(above / static_cast<double>(kSamples), 0.5, 0.01);
}

TEST(LaplaceTest, NonPositiveScaleThrows) {
  Rng rng(1);
  EXPECT_THROW(laplace(rng, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(laplace(rng, 0.0, -1.0), std::invalid_argument);
}

TEST(ExponentialTest, MomentsMatch) {
  Rng rng(5);
  const double rate = 0.5;
  const auto m = estimate([&] { return exponential(rng, rate); });
  EXPECT_NEAR(m.mean, 1.0 / rate, 0.05);
  EXPECT_NEAR(m.var, 1.0 / (rate * rate), 0.2);
}

TEST(ExponentialTest, AlwaysNonNegative) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) ASSERT_GE(exponential(rng, 2.0), 0.0);
}

TEST(ExponentialTest, NonPositiveRateThrows) {
  Rng rng(1);
  EXPECT_THROW(exponential(rng, 0.0), std::invalid_argument);
}

TEST(BernoulliTest, FrequencyMatchesP) {
  Rng rng(7);
  for (double p : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    int hits = 0;
    for (int i = 0; i < 50000; ++i) hits += bernoulli(rng, p) ? 1 : 0;
    EXPECT_NEAR(hits / 50000.0, p, 0.01) << "p=" << p;
  }
}

TEST(BernoulliTest, OutOfRangeThrows) {
  Rng rng(1);
  EXPECT_THROW(bernoulli(rng, -0.1), std::invalid_argument);
  EXPECT_THROW(bernoulli(rng, 1.1), std::invalid_argument);
}

TEST(UniformTest, StaysInRangeAndCentered) {
  Rng rng(8);
  double sum = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = uniform(rng, -2.0, 6.0);
    ASSERT_GE(x, -2.0);
    ASSERT_LT(x, 6.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kSamples, 2.0, 0.05);
}

TEST(UniformTest, InvertedRangeThrows) {
  Rng rng(1);
  EXPECT_THROW(uniform(rng, 1.0, 0.0), std::invalid_argument);
}

TEST(GeometricTest, MeanMatches) {
  Rng rng(9);
  const double p = 0.25;
  double sum = 0;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(geometric(rng, p));
  }
  EXPECT_NEAR(sum / kSamples, (1 - p) / p, 0.05);
}

TEST(GeometricTest, PEqualOneIsZero) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(geometric(rng, 1.0), 0u);
}

TEST(GeometricTest, InvalidPThrows) {
  Rng rng(1);
  EXPECT_THROW(geometric(rng, 0.0), std::invalid_argument);
  EXPECT_THROW(geometric(rng, 1.5), std::invalid_argument);
}

TEST(AliasTableTest, MatchesWeights) {
  Rng rng(10);
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  AliasTable table(weights);
  std::vector<int> counts(weights.size(), 0);
  const int n = 400000;
  for (int i = 0; i < n; ++i) ++counts[table.sample(rng)];
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), weights[i] / total, 0.01)
        << "index " << i;
  }
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  Rng rng(11);
  AliasTable table({1.0, 0.0, 1.0});
  for (int i = 0; i < 10000; ++i) ASSERT_NE(table.sample(rng), 1u);
}

TEST(AliasTableTest, SingleEntry) {
  Rng rng(12);
  AliasTable table({5.0});
  for (int i = 0; i < 100; ++i) ASSERT_EQ(table.sample(rng), 0u);
}

TEST(AliasTableTest, InvalidWeightsThrow) {
  EXPECT_THROW(AliasTable({}), std::invalid_argument);
  EXPECT_THROW(AliasTable({-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable({0.0, 0.0}), std::invalid_argument);
}

TEST(ShuffleTest, IsPermutation) {
  Rng rng(13);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  shuffle(rng, shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
  EXPECT_NE(v, shuffled);  // astronomically unlikely to be identity
}

TEST(ShuffleTest, UniformFirstPosition) {
  Rng rng(14);
  std::vector<int> counts(5, 0);
  for (int trial = 0; trial < 50000; ++trial) {
    std::vector<int> v{0, 1, 2, 3, 4};
    shuffle(rng, v);
    ++counts[v[0]];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 400);
}

TEST(SampleWithoutReplacementTest, DistinctSortedWithinRange) {
  Rng rng(15);
  const auto sample = sample_without_replacement(rng, 100, 10);
  ASSERT_EQ(sample.size(), 10u);
  for (std::size_t i = 0; i < sample.size(); ++i) {
    ASSERT_LT(sample[i], 100u);
    if (i > 0) {
      ASSERT_LT(sample[i - 1], sample[i]);
    }
  }
}

TEST(SampleWithoutReplacementTest, FullSampleIsIdentitySet) {
  Rng rng(16);
  const auto sample = sample_without_replacement(rng, 5, 5);
  const std::vector<std::size_t> expect{0, 1, 2, 3, 4};
  EXPECT_EQ(sample, expect);
}

TEST(SampleWithoutReplacementTest, KGreaterThanNThrows) {
  Rng rng(1);
  EXPECT_THROW(sample_without_replacement(rng, 3, 4), std::invalid_argument);
}

TEST(SampleWithoutReplacementTest, ApproximatelyUniformInclusion) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  for (int trial = 0; trial < 20000; ++trial) {
    for (std::size_t idx : sample_without_replacement(rng, 10, 3)) {
      ++counts[idx];
    }
  }
  for (int c : counts) EXPECT_NEAR(c, 6000, 300);  // 20000 * 3/10
}

}  // namespace
}  // namespace sgp::random
