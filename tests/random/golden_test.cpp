// Golden-value regression tests: the exact output streams of the RNG and
// distributions are part of the library contract (experiments must be
// bit-reproducible across machines and releases). Any change to these
// values is a breaking change and must be deliberate.
#include <gtest/gtest.h>

#include "random/distributions.hpp"
#include "random/rng.hpp"

namespace sgp::random {
namespace {

TEST(GoldenTest, Xoshiro256ppStream) {
  Rng rng(42);
  EXPECT_EQ(rng(), 15021278609987233951ULL);
  EXPECT_EQ(rng(), 5881210131331364753ULL);
  EXPECT_EQ(rng(), 18149643915985481100ULL);
}

TEST(GoldenTest, UnitDoubles) {
  Rng rng(42);
  EXPECT_DOUBLE_EQ(rng.next_double(), 0.81430514512290986);
  EXPECT_DOUBLE_EQ(rng.next_double(), 0.31882104006166112);
}

TEST(GoldenTest, NormalStream) {
  Rng rng(7);
  EXPECT_DOUBLE_EQ(normal(rng), 1.674036445441065);
  EXPECT_DOUBLE_EQ(normal(rng), 0.53789816819896552);
}

TEST(GoldenTest, LaplaceStream) {
  Rng rng(7);
  EXPECT_DOUBLE_EQ(laplace(rng, 0.0, 1.0), -2.2007429027809056);
}

TEST(GoldenTest, JumpedStream) {
  Rng rng(42);
  rng.jump();
  EXPECT_EQ(rng(), 13886555598616206053ULL);
}

}  // namespace
}  // namespace sgp::random
