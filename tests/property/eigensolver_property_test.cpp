// Cross-solver property suite: three independent symmetric eigensolvers
// (cyclic Jacobi, Lanczos, deflated power iteration) must agree on the
// top-of-spectrum across qualitatively different matrix families. Any
// disagreement localizes a solver bug immediately.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "linalg/eigen_sym.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/power_iteration.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"

namespace sgp::linalg {
namespace {

enum class Family {
  kRandomDense,       // GOE-like: continuous spectrum
  kClustered,         // many near-equal eigenvalues (hard for Lanczos)
  kLowRank,           // rank 3 + zeros (hard for power iteration deflation)
  kGraphLike,         // 0/1 symmetric with planted block structure
  kIllConditioned,    // eigenvalues spanning 10 orders of magnitude
};

std::string family_name(Family f) {
  switch (f) {
    case Family::kRandomDense: return "random_dense";
    case Family::kClustered: return "clustered";
    case Family::kLowRank: return "low_rank";
    case Family::kGraphLike: return "graph_like";
    case Family::kIllConditioned: return "ill_conditioned";
  }
  return "?";
}

DenseMatrix make_matrix(Family family, std::size_t n, std::uint64_t seed) {
  random::Rng rng(seed);
  DenseMatrix a(n, n);
  switch (family) {
    case Family::kRandomDense: {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
          const double v = random::normal(rng);
          a(i, j) = v;
          a(j, i) = v;
        }
      }
      break;
    }
    case Family::kClustered: {
      // Q diag(10, 10+ε, 10+2ε, 1, 1, ..., 1) Qᵀ via random rotations.
      DenseMatrix base(n, n);
      for (std::size_t i = 0; i < n; ++i) {
        base(i, i) = i < 3 ? 10.0 + 1e-4 * static_cast<double>(i) : 1.0;
      }
      // Random orthogonal similarity: apply Jacobi rotations.
      for (int sweep = 0; sweep < 3; ++sweep) {
        for (std::size_t p = 0; p + 1 < n; ++p) {
          const double theta = random::uniform(rng, 0.0, 3.14159);
          const double c = std::cos(theta), s = std::sin(theta);
          const std::size_t q = (p + 1 + rng.next_below(n - 1)) % n;
          if (q == p) continue;
          for (std::size_t i = 0; i < n; ++i) {
            const double bp = base(i, p), bq = base(i, q);
            base(i, p) = c * bp - s * bq;
            base(i, q) = s * bp + c * bq;
          }
          for (std::size_t i = 0; i < n; ++i) {
            const double bp = base(p, i), bq = base(q, i);
            base(p, i) = c * bp - s * bq;
            base(q, i) = s * bp + c * bq;
          }
        }
      }
      a = base;
      break;
    }
    case Family::kLowRank: {
      DenseMatrix u(n, 3);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < 3; ++j) u(i, j) = random::normal(rng);
      }
      const double scales[3] = {9.0, 4.0, 1.5};
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = r; c < n; ++c) {
          double v = 0;
          for (std::size_t j = 0; j < 3; ++j) {
            v += scales[j] * u(r, j) * u(c, j) / static_cast<double>(n);
          }
          a(r, c) = v;
          a(c, r) = v;
        }
      }
      break;
    }
    case Family::kGraphLike: {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
          const bool same_block = (i < n / 2) == (j < n / 2);
          const double p = same_block ? 0.5 : 0.05;
          const double v = random::bernoulli(rng, p) ? 1.0 : 0.0;
          a(i, j) = v;
          a(j, i) = v;
        }
      }
      break;
    }
    case Family::kIllConditioned: {
      // Distinct eigenvalues spanning ~8 orders of magnitude. (Exact
      // repeated eigenvalues are excluded by design: residual-based Lanczos
      // cannot detect missing multiplicities without exhausting the space —
      // see the documented limitation in linalg/lanczos.hpp; the
      // IdentityOperatorDegenerateSpectrum test covers the exhaustion path.)
      for (std::size_t i = 0; i < n; ++i) {
        a(i, i) = std::pow(10.0, -static_cast<double>(i) / 3.0);
      }
      break;
    }
  }
  return a;
}

SymmetricOperator dense_op(const DenseMatrix& a) {
  return {a.rows(), [&a](std::span<const double> x, std::span<double> y) {
            const auto r = a.multiply_vector(x);
            std::copy(r.begin(), r.end(), y.begin());
          }};
}

class EigensolverAgreement
    : public testing::TestWithParam<std::tuple<Family, std::uint64_t>> {};

TEST_P(EigensolverAgreement, TopOfSpectrumMatchesAcrossSolvers) {
  const auto [family, seed] = GetParam();
  const std::size_t n = 24;
  const auto a = make_matrix(family, n, seed);
  const double scale_ref = std::max(1.0, a.frobenius_norm());

  const auto jacobi = jacobi_eigen(a, EigenOrder::kDescendingMagnitude);

  LanczosOptions lopt;
  lopt.k = 3;
  lopt.max_iterations = n;
  lopt.order = EigenOrder::kDescendingMagnitude;
  const auto lanczos = lanczos_topk(dense_op(a), lopt);

  PowerIterationOptions popt;
  popt.k = 3;
  popt.max_iterations = 200000;
  popt.tolerance = 1e-13;
  const auto power = power_iteration_topk(dense_op(a), popt);

  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(lanczos.values[i], jacobi.values[i], 1e-7 * scale_ref)
        << family_name(family) << " lanczos idx " << i;
    // Power iteration struggles on near-ties; allow a looser budget there.
    const double power_tol =
        family == Family::kClustered ? 2e-4 * scale_ref : 1e-6 * scale_ref;
    EXPECT_NEAR(power.values[i], jacobi.values[i], power_tol)
        << family_name(family) << " power idx " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, EigensolverAgreement,
    testing::Combine(testing::Values(Family::kRandomDense, Family::kClustered,
                                     Family::kLowRank, Family::kGraphLike,
                                     Family::kIllConditioned),
                     testing::Values(1ULL, 2ULL, 3ULL)));

}  // namespace
}  // namespace sgp::linalg
