// Shard-plan invariants, swept over (num_rows, shard_rows) grids: the plan
// must tile [0, num_rows) exactly once with in-order, non-empty, half-open
// ranges, and the memory-derived shard height must honor its documented
// budget split for every (budget, m) pair.
#include <gtest/gtest.h>

#include <tuple>

#include "core/sharded_publish.hpp"

namespace sgp::core {
namespace {

class ShardPlanProperty
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ShardPlanProperty, CoversRowRangeExactlyOnce) {
  const auto [num_rows, shard_rows] = GetParam();
  const ShardPlan plan = plan_shards(num_rows, shard_rows);

  std::size_t expected_begin = 0;
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    const auto [begin, end] = plan.shard_range(s);
    EXPECT_EQ(begin, expected_begin) << "gap or overlap before shard " << s;
    EXPECT_LT(begin, end) << "empty shard " << s;
    EXPECT_LE(end, num_rows);
    if (s + 1 < plan.num_shards()) {
      EXPECT_EQ(end - begin, plan.shard_rows) << "short interior shard " << s;
    }
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, num_rows) << "rows left uncovered";
}

TEST_P(ShardPlanProperty, ShardCountMatchesCeilDivision) {
  const auto [num_rows, shard_rows] = GetParam();
  const ShardPlan plan = plan_shards(num_rows, shard_rows);
  if (num_rows == 0) {
    EXPECT_EQ(plan.num_shards(), 0u);
  } else {
    EXPECT_EQ(plan.num_shards(),
              (num_rows + plan.shard_rows - 1) / plan.shard_rows);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShardPlanProperty,
    testing::Combine(
        // num_rows: degenerate 0/1, around shard boundaries, and bigger.
        testing::Values(std::size_t{0}, std::size_t{1}, std::size_t{2},
                        std::size_t{7}, std::size_t{8}, std::size_t{9},
                        std::size_t{64}, std::size_t{1000},
                        std::size_t{65537}),
        // shard_rows: 0 = single shard, 1 = row-per-shard, plus odd sizes
        // and shard_rows > num_rows.
        testing::Values(std::size_t{0}, std::size_t{1}, std::size_t{2},
                        std::size_t{7}, std::size_t{64},
                        std::size_t{100000})));

class ShardMemoryProperty
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ShardMemoryProperty, TileStaysWithinHalfTheBudget) {
  const auto [max_memory_mb, m] = GetParam();
  const std::size_t shard_rows = shard_rows_for_memory(max_memory_mb, m);
  ASSERT_GE(shard_rows, 1u);  // progress is guaranteed even on tiny budgets
  // The documented split (docs/scaling.md): the output tile takes at most
  // half the budget — unless the budget is too small for even one row, in
  // which case the single-row minimum wins.
  const std::size_t tile_bytes = shard_rows * m * sizeof(double);
  const std::size_t half_budget = max_memory_mb * (1ULL << 20) / 2;
  if (shard_rows > 1) {
    EXPECT_LE(tile_bytes, half_budget);
    // Maximal under the cap: one more row would overflow it.
    EXPECT_GT(tile_bytes + m * sizeof(double), half_budget);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShardMemoryProperty,
    testing::Combine(testing::Values(std::size_t{0}, std::size_t{1},
                                     std::size_t{16}, std::size_t{256},
                                     std::size_t{4096}),
                     testing::Values(std::size_t{1}, std::size_t{50},
                                     std::size_t{100}, std::size_t{1000})));

}  // namespace
}  // namespace sgp::core
