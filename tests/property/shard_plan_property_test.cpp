// Shard-plan invariants, swept over (num_rows, shard_rows) grids: the plan
// must tile [0, num_rows) exactly once with in-order, non-empty, half-open
// ranges, and the memory-derived shard height must honor its documented
// budget split for every (budget, m) pair.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <tuple>

#include "core/sharded_publish.hpp"
#include "util/errors.hpp"

namespace sgp::core {
namespace {

constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();

class ShardPlanProperty
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ShardPlanProperty, CoversRowRangeExactlyOnce) {
  const auto [num_rows, shard_rows] = GetParam();
  const ShardPlan plan = plan_shards(num_rows, shard_rows);

  std::size_t expected_begin = 0;
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    const auto [begin, end] = plan.shard_range(s);
    EXPECT_EQ(begin, expected_begin) << "gap or overlap before shard " << s;
    EXPECT_LT(begin, end) << "empty shard " << s;
    EXPECT_LE(end, num_rows);
    if (s + 1 < plan.num_shards()) {
      EXPECT_EQ(end - begin, plan.shard_rows) << "short interior shard " << s;
    }
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, num_rows) << "rows left uncovered";
}

TEST_P(ShardPlanProperty, ShardCountMatchesCeilDivision) {
  const auto [num_rows, shard_rows] = GetParam();
  const ShardPlan plan = plan_shards(num_rows, shard_rows);
  if (num_rows == 0) {
    EXPECT_EQ(plan.num_shards(), 0u);
  } else {
    EXPECT_EQ(plan.num_shards(),
              (num_rows + plan.shard_rows - 1) / plan.shard_rows);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShardPlanProperty,
    testing::Combine(
        // num_rows: degenerate 0/1, around shard boundaries, and bigger.
        testing::Values(std::size_t{0}, std::size_t{1}, std::size_t{2},
                        std::size_t{7}, std::size_t{8}, std::size_t{9},
                        std::size_t{64}, std::size_t{1000},
                        std::size_t{65537}),
        // shard_rows: 0 = single shard, 1 = row-per-shard, plus odd sizes
        // and shard_rows > num_rows.
        testing::Values(std::size_t{0}, std::size_t{1}, std::size_t{2},
                        std::size_t{7}, std::size_t{64},
                        std::size_t{100000})));

// Adversarial pins at the top of the size_t range: the naive forms —
// (num_rows + shard_rows − 1) / shard_rows and begin + shard_rows — both
// wrap for these inputs and would silently corrupt the plan; the
// overflow-free forms must keep tiling exactly.
TEST(ShardPlanOverflow, SingleHugeShardDoesNotWrapCeilDivision) {
  // num_rows == shard_rows == SIZE_MAX: the naive ceil numerator is
  // 2·SIZE_MAX − 1 (wraps to SIZE_MAX − 2), which would yield 0 shards.
  const ShardPlan plan = plan_shards(kMax, kMax);
  EXPECT_EQ(plan.num_shards(), 1u);
  const auto [begin, end] = plan.shard_range(0);
  EXPECT_EQ(begin, 0u);
  EXPECT_EQ(end, kMax);
}

TEST(ShardPlanOverflow, ZeroShardRowsMeansOneHugeShard) {
  const ShardPlan plan = plan_shards(kMax, 0);
  EXPECT_EQ(plan.shard_rows, kMax);
  EXPECT_EQ(plan.num_shards(), 1u);
}

TEST(ShardPlanOverflow, LastShardEndDoesNotWrapPastNumRows) {
  // begin(2) = 2·(SIZE_MAX/2) = SIZE_MAX − 1; the naive begin + shard_rows
  // wraps to SIZE_MAX/2 − 2. The clamped form ends exactly at num_rows.
  const ShardPlan plan = plan_shards(kMax, kMax / 2);
  ASSERT_EQ(plan.num_shards(), 3u);
  std::size_t expected_begin = 0;
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    const auto [begin, end] = plan.shard_range(s);
    EXPECT_EQ(begin, expected_begin);
    EXPECT_GT(end, begin);
    EXPECT_LE(end, kMax);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, kMax);
  EXPECT_EQ(plan.shard_range(2).second - plan.shard_range(2).first, 1u);
}

TEST(ShardPlanOverflow, HugeShardRowsOnSmallPlanClampsToNumRows) {
  const ShardPlan plan = plan_shards(10, kMax);
  EXPECT_EQ(plan.num_shards(), 1u);
  EXPECT_EQ(plan.shard_range(0).second, 10u);
}

TEST(ShardPlanOverflow, OutOfRangeShardIndexIsRejected) {
  const ShardPlan plan = plan_shards(100, 10);
  // void-cast inside EXPECT_THROW: the accessors are [[nodiscard]] and the
  // -Werror build rejects a silently dropped return value.
  EXPECT_THROW(static_cast<void>(plan.shard_range(plan.num_shards())),
               util::PreconditionError);
  EXPECT_THROW(static_cast<void>(plan.shard_range(kMax)),
               util::PreconditionError);
}

TEST(ShardPlanOverflow, ZeroShardRowsFieldIsRejected) {
  // A hand-built plan (bypassing plan_shards) with shard_rows == 0 would
  // divide by zero; the guard must refuse it on every accessor.
  ShardPlan plan;
  plan.num_rows = 5;
  plan.shard_rows = 0;
  EXPECT_THROW(static_cast<void>(plan.num_shards()), util::PreconditionError);
  EXPECT_THROW(static_cast<void>(plan.shard_range(0)),
               util::PreconditionError);
}

class ShardMemoryProperty
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ShardMemoryProperty, TileStaysWithinHalfTheBudget) {
  const auto [max_memory_mb, m] = GetParam();
  const std::size_t shard_rows = shard_rows_for_memory(max_memory_mb, m);
  ASSERT_GE(shard_rows, 1u);  // progress is guaranteed even on tiny budgets
  // The documented split (docs/scaling.md): the output tile takes at most
  // half the budget — unless the budget is too small for even one row, in
  // which case the single-row minimum wins.
  const std::size_t tile_bytes = shard_rows * m * sizeof(double);
  const std::size_t half_budget = max_memory_mb * (1ULL << 20) / 2;
  if (shard_rows > 1) {
    EXPECT_LE(tile_bytes, half_budget);
    // Maximal under the cap: one more row would overflow it.
    EXPECT_GT(tile_bytes + m * sizeof(double), half_budget);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShardMemoryProperty,
    testing::Combine(testing::Values(std::size_t{0}, std::size_t{1},
                                     std::size_t{16}, std::size_t{256},
                                     std::size_t{4096}),
                     testing::Values(std::size_t{1}, std::size_t{50},
                                     std::size_t{100}, std::size_t{1000})));

}  // namespace
}  // namespace sgp::core
