// Adversarial-shape sweep of CsrMatrix::multiply_generated: for every
// (n, b_cols, tile_rows, tile_cols) grid point — including ragged tails,
// tiles larger than the matrix, and the SIZE_MAX shapes that used to
// overflow the scratch-buffer sizing — the fused product must be
// bit-identical to multiply_dense of the materialized operand. The filler
// is the real counter-based projection generator, so this also pins the
// exact accumulation-order contract the publisher relies on.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <limits>
#include <tuple>
#include <vector>

#include "core/projection.hpp"
#include "linalg/dense_matrix.hpp"
#include "linalg/sparse_matrix.hpp"
#include "random/counter_rng.hpp"
#include "util/thread_pool.hpp"

namespace sgp {
namespace {

/// Deterministic symmetric CSR matrix with an irregular pattern: entry
/// (i, j) present iff bits(i·n + j) has its low byte < 96 (≈3/8 density),
/// symmetrized by construction, self-loops included on a stride.
linalg::CsrMatrix symmetric_fixture(std::size_t n) {
  const random::CounterRng pattern(2024, 5);
  std::vector<linalg::Triplet> trips;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      if (i == j && i % 3 != 0) continue;
      const std::uint64_t word =
          pattern.bits(static_cast<std::uint64_t>(i) * n + j);
      if ((word & 0xff) >= 96) continue;
      const double v = 1.0 + static_cast<double>(word >> 56) / 16.0;
      trips.push_back({static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(j), v});
      if (i != j) {
        trips.push_back({static_cast<std::uint32_t>(j),
                         static_cast<std::uint32_t>(i), v});
      }
    }
  }
  return linalg::CsrMatrix::from_triplets(n, n, trips);
}

class FusedTileShapeProperty
    : public testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>> {};

TEST_P(FusedTileShapeProperty, MatchesMaterializedProductBitForBit) {
  const auto [n, b_cols, tile_rows, tile_cols] = GetParam();
  const linalg::CsrMatrix a = symmetric_fixture(n);
  const random::CounterRng rng(7, 0);

  // Materialized operand, filled through the same generator the fused path
  // tiles over.
  linalg::DenseMatrix b(n, b_cols);
  core::fill_projection_tile(rng, b_cols, core::ProjectionKind::kGaussian, 0,
                             n, 0, b_cols, b.row(0).data());
  const linalg::DenseMatrix expected = a.multiply_dense(b);

  linalg::GeneratedTileOptions opts;
  opts.tile_rows = tile_rows;
  opts.tile_cols = tile_cols;
  const linalg::DenseMatrix got = a.multiply_generated(
      b_cols,
      [&](std::size_t r0, std::size_t r1, std::size_t c0, std::size_t c1,
          double* out) {
        core::fill_projection_tile(rng, b_cols,
                                   core::ProjectionKind::kGaussian, r0, r1, c0,
                                   c1, out);
      },
      opts);

  ASSERT_EQ(got.rows(), expected.rows());
  ASSERT_EQ(got.cols(), expected.cols());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < b_cols; ++c) {
      // Bit-identity, not tolerance: the tiling contract is exact.
      ASSERT_EQ(got(i, c), expected(i, c)) << "cell (" << i << ", " << c
                                           << ") tile " << tile_rows << "x"
                                           << tile_cols;
    }
  }
}

constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();

INSTANTIATE_TEST_SUITE_P(
    AdversarialShapes, FusedTileShapeProperty,
    testing::Combine(
        /*n=*/testing::Values<std::size_t>(1, 7, 33),
        /*b_cols=*/testing::Values<std::size_t>(1, 5, 17),
        // tile_rows: degenerate 1, ragged 3 and 5, larger-than-n, and the
        // SIZE_MAX shape that used to overflow tile_rows·tile_cols when
        // sizing the per-thread scratch buffer.
        /*tile_rows=*/testing::Values<std::size_t>(1, 3, 5, 64, kMax),
        // tile_cols: 0 = auto, ragged odd widths, wider-than-b, SIZE_MAX.
        /*tile_cols=*/testing::Values<std::size_t>(0, 1, 3, 64, kMax)));

// The zero-tile_rows knob is documented as "max(1, ...)": it must behave as
// one-row tiles, not crash or hang.
TEST(FusedTileShapeTest, ZeroTileRowsFallsBackToOne) {
  const linalg::CsrMatrix a = symmetric_fixture(9);
  const random::CounterRng rng(7, 0);
  linalg::DenseMatrix b(9, 4);
  core::fill_projection_tile(rng, 4, core::ProjectionKind::kGaussian, 0, 9, 0,
                             4, b.row(0).data());
  const linalg::DenseMatrix expected = a.multiply_dense(b);
  linalg::GeneratedTileOptions opts;
  opts.tile_rows = 0;
  const linalg::DenseMatrix got = a.multiply_generated(
      4,
      [&](std::size_t r0, std::size_t r1, std::size_t c0, std::size_t c1,
          double* out) {
        core::fill_projection_tile(rng, 4, core::ProjectionKind::kGaussian, r0,
                                   r1, c0, c1, out);
      },
      opts);
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t c = 0; c < 4; ++c) {
      ASSERT_EQ(got(i, c), expected(i, c));
    }
  }
}

}  // namespace
}  // namespace sgp
