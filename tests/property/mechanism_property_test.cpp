// Property tests for the community mechanism family: the synthetic graphs
// resampled from a noisy community profile must conserve the source graph's
// total edge count to within the Laplace noise added to the block counts,
// at every (ε, δ) point of the scenario grid and under fresh seeds.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "core/mechanism.hpp"
#include "core/scenario.hpp"
#include "dp/budget.hpp"
#include "dp/defaults.hpp"
#include "dp/mechanisms.hpp"

namespace sgp::core {
namespace {

using scenario::GeneratorKind;
using scenario::kScenarioBaseSeed;
using scenario::make_scenario_graph;

double count_noise_bound(double epsilon, std::size_t communities) {
  // Each of the k(k+1)/2 block counts carries independent Laplace noise at
  // the counts phase's scale; |Lap(b)| exceeds 8b with probability e^-8, so
  // an 8b-per-block allowance over every block is effectively certain under
  // the fixed test seeds (and rounding adds at most half an edge per block).
  const dp::PrivacyParams total{epsilon, dp::kScenarioDelta};
  const dp::BudgetSplit split =
      dp::split_budget(total, dp::kDefaultPartitionShare);
  const double scale = dp::laplace_scale(1.0, split.counts.epsilon);
  const double blocks =
      static_cast<double>(communities * (communities + 1)) / 2.0;
  return blocks * (8.0 * scale + 0.5);
}

TEST(MechanismProperty, PrivGraphSyntheticConservesEdgeCount) {
  for (const double epsilon : dp::kScenarioEpsilons) {
    for (const std::uint64_t salt : {0ULL, 1ULL, 2ULL}) {
      const std::uint64_t seed = scenario::cell_seed(
          kScenarioBaseSeed + salt, "property=edge-conservation");
      const auto planted = make_scenario_graph(GeneratorKind::kSbm, seed);
      MechanismOptions options;
      options.params = {epsilon, dp::kScenarioDelta};
      options.seed = seed;
      const auto release =
          make_mechanism(MechanismKind::kPrivGraph)->publish(planted.graph,
                                                             options);
      ASSERT_TRUE(release.synthetic.has_value());
      EXPECT_EQ(release.synthetic->num_nodes(), planted.graph.num_nodes());

      const double original =
          static_cast<double>(planted.graph.num_edges());
      const double synthetic =
          static_cast<double>(release.synthetic->num_edges());
      EXPECT_LE(std::abs(synthetic - original),
                count_noise_bound(epsilon, release.num_communities))
          << "epsilon=" << epsilon << " salt=" << salt
          << " original=" << original << " synthetic=" << synthetic;
    }
  }
}

TEST(MechanismProperty, NodeCommunitySyntheticConservesCappedEdgeCount) {
  // The node-DP variant resamples from the *degree-capped* graph, so the
  // conservation target is the capped edge count; capping at
  // kDefaultMaxDegree removes edges, so the synthetic must also stay below
  // the uncapped total plus noise.
  for (const double epsilon : dp::kScenarioEpsilons) {
    const std::uint64_t seed =
        scenario::cell_seed(kScenarioBaseSeed, "property=node-capped");
    const auto planted = make_scenario_graph(GeneratorKind::kSbm, seed);
    MechanismOptions options;
    options.params = {epsilon, dp::kScenarioDelta};
    options.seed = seed;
    const auto release =
        make_mechanism(MechanismKind::kNodeCommunity)->publish(planted.graph,
                                                               options);
    ASSERT_TRUE(release.synthetic.has_value());
    EXPECT_EQ(release.synthetic->num_nodes(), planted.graph.num_nodes());

    const double uncapped = static_cast<double>(planted.graph.num_edges());
    const double synthetic =
        static_cast<double>(release.synthetic->num_edges());
    // Sensitivity is the degree cap D, so the per-block scale is D× wider.
    const double bound =
        static_cast<double>(options.max_degree) *
        count_noise_bound(epsilon, release.num_communities);
    EXPECT_LE(synthetic, uncapped + bound) << "epsilon=" << epsilon;
    EXPECT_GT(synthetic, 0.0) << "epsilon=" << epsilon;
  }
}

TEST(MechanismProperty, ResampleIsSeedSensitive) {
  // Different cell seeds must produce different synthetic graphs (the
  // resample streams are keyed on the seed); identical seeds reproduce.
  const auto planted =
      make_scenario_graph(GeneratorKind::kSbm, kScenarioBaseSeed);
  MechanismOptions a;
  a.params = {4.0, dp::kScenarioDelta};
  a.seed = 1;
  MechanismOptions b = a;
  b.seed = 2;
  const auto mech = make_mechanism(MechanismKind::kPrivGraph);
  const auto ra = mech->publish(planted.graph, a);
  const auto rb = mech->publish(planted.graph, b);
  const auto ra2 = mech->publish(planted.graph, a);
  EXPECT_EQ(scenario::release_fingerprint(ra),
            scenario::release_fingerprint(ra2));
  EXPECT_NE(scenario::release_fingerprint(ra),
            scenario::release_fingerprint(rb));
}

}  // namespace
}  // namespace sgp::core
