// Property-based sweeps over parameter grids (TEST_P /
// INSTANTIATE_TEST_SUITE_P): invariants that must hold at *every* grid
// point, not just the hand-picked cases of the unit suites.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <tuple>

#include "cluster/metrics.hpp"
#include "core/serialization.hpp"
#include "core/projection.hpp"
#include "core/publisher.hpp"
#include "core/theory.hpp"
#include "dp/mechanisms.hpp"
#include "graph/generators.hpp"
#include "linalg/vector_ops.hpp"
#include "ranking/metrics.hpp"

namespace sgp {
namespace {

// ---------------------------------------------------------------------------
// Gaussian-mechanism calibration: for every (ε, δ, m) the analytic σ must be
// positive, no looser than the classic bound for ε <= 1, and sensitivity must
// stay in (1, 2].
class CalibrationProperty
    : public testing::TestWithParam<std::tuple<double, double, std::size_t>> {};

TEST_P(CalibrationProperty, SigmaWellFormed) {
  const auto [epsilon, delta, m] = GetParam();
  const dp::PrivacyParams params{epsilon, delta};
  const auto cal = core::calibrate_noise(m, params);
  EXPECT_GT(cal.sigma, 0.0);
  EXPECT_GT(cal.sensitivity, 1.0);
  EXPECT_LE(cal.sensitivity, 2.5);
  if (epsilon <= 1.0) {
    const auto classic = core::calibrate_noise(m, params, false);
    EXPECT_LE(cal.sigma, classic.sigma * (1.0 + 1e-9));
  }
}

TEST_P(CalibrationProperty, SigmaMonotoneInEpsilon) {
  const auto [epsilon, delta, m] = GetParam();
  const auto tighter = core::calibrate_noise(m, {epsilon, delta});
  const auto looser = core::calibrate_noise(m, {epsilon * 2.0, delta});
  EXPECT_GT(tighter.sigma, looser.sigma);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CalibrationProperty,
    testing::Combine(testing::Values(0.1, 0.5, 1.0, 2.0, 8.0),
                     testing::Values(1e-7, 1e-5, 1e-3),
                     testing::Values(std::size_t{16}, std::size_t{64},
                                     std::size_t{256})));

// ---------------------------------------------------------------------------
// Projection JL property: for every (m, kind), projecting a fixed sparse
// vector preserves its norm within the JL tolerance (checked at 3 stddevs of
// the chi-square concentration).
class ProjectionProperty
    : public testing::TestWithParam<std::tuple<std::size_t,
                                               core::ProjectionKind>> {};

TEST_P(ProjectionProperty, NormPreservedWithinConcentrationBound) {
  const auto [m, kind] = GetParam();
  random::Rng rng(42 + m);
  const std::size_t n = 600;
  const auto p = core::make_projection(n, m, kind, rng);
  std::vector<double> x(n, 0.0);
  for (std::size_t i = 0; i < 30; ++i) x[i * 20] = 1.0;
  const double true_norm2 = 30.0;
  const auto y = p.transpose_multiply_vector(x);
  const double ratio = linalg::norm2_squared(y) / true_norm2;
  // ‖xP‖²/‖x‖² concentrates around 1 with relative std ≈ sqrt(2/m)
  // (exact for Gaussian; Achlioptas matches the first two moments).
  const double tolerance = 4.5 * std::sqrt(2.0 / static_cast<double>(m));
  EXPECT_NEAR(ratio, 1.0, tolerance);
}

TEST_P(ProjectionProperty, EntriesHaveUnitColumnVariance) {
  const auto [m, kind] = GetParam();
  random::Rng rng(7 + m);
  const auto p = core::make_projection(500, m, kind, rng);
  double sum2 = 0.0;
  for (double v : p.data()) sum2 += v * v;
  const double per_entry = sum2 / static_cast<double>(500 * m);
  EXPECT_NEAR(per_entry * static_cast<double>(m), 1.0, 0.12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProjectionProperty,
    testing::Combine(testing::Values(std::size_t{16}, std::size_t{64},
                                     std::size_t{128}, std::size_t{384}),
                     testing::Values(core::ProjectionKind::kGaussian,
                                     core::ProjectionKind::kAchlioptas)));

// ---------------------------------------------------------------------------
// Kendall tau vs brute force across sizes and tie densities.
class KendallProperty
    : public testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(KendallProperty, MatchesBruteForce) {
  const auto [n, tie_levels] = GetParam();
  random::Rng rng(1000 + n * 10 + tie_levels);
  std::vector<double> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    // tie_levels limits distinct values → forces ties when small.
    a[i] = static_cast<double>(rng.next_below(tie_levels));
    b[i] = static_cast<double>(rng.next_below(tie_levels));
  }
  double concordant = 0, discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double prod = (a[i] - a[j]) * (b[i] - b[j]);
      if (prod > 0) ++concordant;
      if (prod < 0) ++discordant;
    }
  }
  const double total =
      static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  EXPECT_NEAR(ranking::kendall_tau(a, b), (concordant - discordant) / total,
              1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KendallProperty,
    testing::Combine(testing::Values(std::size_t{2}, std::size_t{5},
                                     std::size_t{23}, std::size_t{64}),
                     testing::Values(2, 5, 1000)));

// ---------------------------------------------------------------------------
// Clustering-metric axioms across partition shapes: identity scores 1,
// metrics are symmetric, and values stay in range.
class ClusterMetricProperty
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ClusterMetricProperty, AxiomsHold) {
  const auto [n, k] = GetParam();
  random::Rng rng(99 + n + k);
  std::vector<std::uint32_t> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<std::uint32_t>(rng.next_below(k));
    b[i] = static_cast<std::uint32_t>(rng.next_below(k));
  }
  // Identity.
  EXPECT_NEAR(cluster::normalized_mutual_information(a, a), 1.0, 1e-9);
  EXPECT_NEAR(cluster::adjusted_rand_index(a, a), 1.0, 1e-9);
  // Symmetry.
  EXPECT_NEAR(cluster::normalized_mutual_information(a, b),
              cluster::normalized_mutual_information(b, a), 1e-12);
  EXPECT_NEAR(cluster::adjusted_rand_index(a, b),
              cluster::adjusted_rand_index(b, a), 1e-12);
  // Ranges.
  const double nmi = cluster::normalized_mutual_information(a, b);
  EXPECT_GE(nmi, 0.0);
  EXPECT_LE(nmi, 1.0);
  const double pur = cluster::purity(a, b);
  EXPECT_GT(pur, 0.0);
  EXPECT_LE(pur, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ClusterMetricProperty,
    testing::Combine(testing::Values(std::size_t{1}, std::size_t{17},
                                     std::size_t{200}),
                     testing::Values(std::size_t{1}, std::size_t{3},
                                     std::size_t{12})));

// ---------------------------------------------------------------------------
// Publisher invariants at every (kind, calibration, ε): deterministic,
// correctly shaped, positively calibrated. (Empirical σ verification lives
// in PublisherTest.NoiseMagnitudeMatchesCalibration.)
class PublisherProperty
    : public testing::TestWithParam<
          std::tuple<core::ProjectionKind, bool, double>> {};

TEST_P(PublisherProperty, ReleaseInvariantsHold) {
  const auto [kind, analytic, epsilon] = GetParam();
  random::Rng rng(5);
  const auto g = graph::erdos_renyi(250, 0.05, rng);

  core::RandomProjectionPublisher::Options opt;
  opt.projection_dim = 40;
  opt.params = {epsilon, 1e-6};
  opt.projection = kind;
  opt.analytic_calibration = analytic;
  opt.seed = 77;
  const core::RandomProjectionPublisher publisher(opt);
  const auto pub1 = publisher.publish(g);
  const auto pub2 = publisher.publish(g);
  EXPECT_EQ(pub1.data, pub2.data);
  EXPECT_EQ(pub1.data.rows(), 250u);
  EXPECT_EQ(pub1.data.cols(), 40u);
  EXPECT_GT(pub1.calibration.sigma, 0.0);
  EXPECT_EQ(pub1.projection, kind);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PublisherProperty,
    testing::Combine(testing::Values(core::ProjectionKind::kGaussian,
                                     core::ProjectionKind::kAchlioptas),
                     testing::Bool(), testing::Values(0.5, 2.0, 10.0)));

// ---------------------------------------------------------------------------
// Serialization round trip across every (kind, m, ε) configuration.
class SerializationProperty
    : public testing::TestWithParam<
          std::tuple<core::ProjectionKind, std::size_t, double>> {};

TEST_P(SerializationProperty, RoundTripIsExact) {
  const auto [kind, m, epsilon] = GetParam();
  random::Rng rng(3);
  const auto g = graph::erdos_renyi(80, 0.1, rng);
  core::RandomProjectionPublisher::Options opt;
  opt.projection_dim = m;
  opt.params = {epsilon, 1e-6};
  opt.projection = kind;
  opt.seed = 5;
  const auto original = core::RandomProjectionPublisher(opt).publish(g);

  std::stringstream buffer;
  core::save_published(original, buffer);
  const auto loaded = core::load_published(buffer);
  EXPECT_EQ(loaded.data, original.data);
  EXPECT_DOUBLE_EQ(loaded.calibration.sigma, original.calibration.sigma);
  EXPECT_EQ(loaded.projection, original.projection);

  // Streaming path must be byte-identical too.
  std::stringstream streamed;
  core::publish_to_stream(g, opt, streamed);
  std::stringstream reference;
  core::save_published(original, reference);
  EXPECT_EQ(streamed.str(), reference.str());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SerializationProperty,
    testing::Combine(testing::Values(core::ProjectionKind::kGaussian,
                                     core::ProjectionKind::kAchlioptas),
                     testing::Values(std::size_t{1}, std::size_t{16},
                                     std::size_t{64}),
                     testing::Values(0.5, 4.0)));

// ---------------------------------------------------------------------------
// Generator sanity across the (p_in, p_out) grid: planted labels align with
// density structure whenever p_in > p_out.
class SbmProperty
    : public testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SbmProperty, WithinDensityDominatesWhenAssortative) {
  const auto [p_in, p_out] = GetParam();
  random::Rng rng(123);
  const auto pg = graph::stochastic_block_model({80, 80}, p_in, p_out, rng);
  double within = 0, cross = 0;
  for (const auto& e : pg.graph.edges()) {
    (pg.labels[e.u] == pg.labels[e.v] ? within : cross) += 1;
  }
  // Normalize by pair counts: 2*C(80,2) within pairs vs 6400 cross pairs.
  const double within_density = within / (2.0 * 80 * 79 / 2.0);
  const double cross_density = cross / 6400.0;
  if (p_in > 2.0 * p_out + 0.02) {
    EXPECT_GT(within_density, cross_density);
  }
  EXPECT_NEAR(within_density, p_in, 5.0 * std::sqrt(p_in / 6320.0) + 0.01);
  EXPECT_NEAR(cross_density, p_out, 5.0 * std::sqrt(p_out / 6400.0) + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SbmProperty,
    testing::Combine(testing::Values(0.05, 0.2, 0.5),
                     testing::Values(0.0, 0.01, 0.05)));

}  // namespace
}  // namespace sgp
