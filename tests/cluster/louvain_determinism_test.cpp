// Louvain determinism under scenario seeds: the partitions consumed by the
// mechanism grid (and by the statistical band suite, which runs Louvain on
// synthetic releases) must be bit-stable — same seed, same partition — no
// matter how many threads are hammering the clusterer concurrently, and the
// partition of the E14 reference graph is pinned as a golden so an
// accidental tie-break or iteration-order change cannot slip through.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/louvain.hpp"
#include "cluster/metrics.hpp"
#include "core/scenario.hpp"
#include "util/thread_pool.hpp"

namespace sgp::cluster {
namespace {

using core::scenario::GeneratorKind;
using core::scenario::kScenarioBaseSeed;
using core::scenario::make_scenario_graph;

std::uint64_t partition_hash(const std::vector<std::uint32_t>& labels) {
  std::string joined;
  for (const std::uint32_t l : labels) {
    joined += std::to_string(l);
    joined += ',';
  }
  return core::scenario::fnv1a64(joined);
}

TEST(LouvainDeterminism, SameSeedSamePartitionAcrossThreadCounts) {
  // Run the identical clustering job from 1, 2, and 8 concurrent pool
  // threads; every invocation must reproduce the single-threaded baseline
  // exactly (assignments, community count, and modularity). Louvain keeps
  // no hidden global state, so concurrency must not be able to perturb it.
  const auto planted = make_scenario_graph(GeneratorKind::kSbm,
                                           kScenarioBaseSeed);
  LouvainOptions options;
  options.seed = kScenarioBaseSeed;
  const LouvainResult baseline = louvain_cluster(planted.graph, options);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    util::ThreadPool pool(threads);
    std::vector<LouvainResult> results(threads);
    std::vector<std::future<void>> pending;
    pending.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      pending.push_back(pool.submit([&, t] {
        results[t] = louvain_cluster(planted.graph, options);
      }));
    }
    for (auto& f : pending) f.get();
    for (std::size_t t = 0; t < threads; ++t) {
      EXPECT_EQ(results[t].assignments, baseline.assignments)
          << "threads=" << threads << " slot=" << t;
      EXPECT_EQ(results[t].num_communities, baseline.num_communities);
      EXPECT_EQ(results[t].modularity, baseline.modularity);
    }
  }
}

TEST(LouvainDeterminism, ScenarioSeedsChangeOnlyTheVisitOrder) {
  // Different scenario cell seeds may shuffle the node-visit order, but on
  // a well-separated SBM every seed must land on the same planted structure
  // (NMI 1.0 against ground truth would be too strict for Louvain; demand
  // the community count instead plus near-perfect agreement between seeds).
  const auto planted = make_scenario_graph(GeneratorKind::kSbm,
                                           kScenarioBaseSeed);
  LouvainOptions a;
  a.seed = core::scenario::cell_seed(kScenarioBaseSeed, "louvain=a");
  LouvainOptions b;
  b.seed = core::scenario::cell_seed(kScenarioBaseSeed, "louvain=b");
  const LouvainResult ra = louvain_cluster(planted.graph, a);
  const LouvainResult rb = louvain_cluster(planted.graph, b);
  EXPECT_EQ(ra.num_communities, rb.num_communities);
  EXPECT_GE(normalized_mutual_information(ra.assignments, rb.assignments),
            0.95);
}

TEST(LouvainDeterminism, GoldenPartitionOfTheReferenceGraph) {
  // Pinned partition of the E14 reference graph (the SBM scenario graph at
  // the grid's base seed). If this golden moves, either Louvain's
  // tie-breaking or the scenario generator changed — both must be
  // deliberate, release-noted events (they invalidate every pinned band in
  // tests/scenario/scenario_statistical_test.cpp).
  const auto planted = make_scenario_graph(GeneratorKind::kSbm,
                                           kScenarioBaseSeed);
  LouvainOptions options;
  options.seed = kScenarioBaseSeed;
  const LouvainResult result = louvain_cluster(planted.graph, options);
  EXPECT_EQ(result.num_communities, 4u);
  EXPECT_NEAR(result.modularity, 0.5098, 0.0005);
  EXPECT_GE(normalized_mutual_information(result.assignments, planted.labels),
            0.95);
  EXPECT_EQ(partition_hash(result.assignments), 0xE2248DAE64191815ULL);
}

TEST(LouvainDeterminism, WeightedEntryPointIsSeedDeterministic) {
  // The weighted overload feeds signed (noisy) adjacencies; repeated runs
  // under one seed must agree exactly even with negative weights present.
  const auto planted = make_scenario_graph(GeneratorKind::kSbm,
                                           kScenarioBaseSeed);
  std::vector<WeightedEdge> edges;
  for (std::size_t u = 0; u < planted.graph.num_nodes(); ++u) {
    for (const auto v : planted.graph.neighbors(u)) {
      if (u < v) {
        edges.push_back({static_cast<std::uint32_t>(u),
                         static_cast<std::uint32_t>(v),
                         (u + v) % 7 == 0 ? -0.25 : 1.0});
      }
    }
  }
  const LouvainResult first =
      louvain_cluster_weighted(planted.graph.num_nodes(), edges);
  const LouvainResult second =
      louvain_cluster_weighted(planted.graph.num_nodes(), edges);
  EXPECT_EQ(first.assignments, second.assignments);
  EXPECT_EQ(first.modularity, second.modularity);
}

}  // namespace
}  // namespace sgp::cluster
