#include "cluster/select_k.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/publisher.hpp"
#include "graph/generators.hpp"
#include "linalg/svd.hpp"
#include "random/distributions.hpp"

namespace sgp::cluster {
namespace {

TEST(EigengapTest, ObviousGap) {
  EXPECT_EQ(eigengap_k({100, 95, 90, 5, 4, 3}), 3u);
}

TEST(EigengapTest, GapAtOne) {
  EXPECT_EQ(eigengap_k({50, 1, 0.9, 0.8}), 1u);
}

TEST(EigengapTest, TrailingZerosIgnored) {
  EXPECT_EQ(eigengap_k({10, 9, 8, 0.0, 0.0}), 2u);
}

TEST(EigengapTest, Validation) {
  EXPECT_THROW((void)eigengap_k({1.0}), std::invalid_argument);
  EXPECT_THROW((void)eigengap_k({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(EigengapTest, RecoversPlantedKFromRelease) {
  // 4 planted communities: the release's singular values should show the
  // gap after position 4.
  random::Rng rng(1);
  const auto pg = graph::stochastic_block_model(
      std::vector<std::size_t>(4, 120), 0.5, 0.01, rng);
  core::RandomProjectionPublisher::Options opt;
  opt.projection_dim = 40;
  opt.params = {8.0, 1e-6};
  const auto pub = core::RandomProjectionPublisher(opt).publish(pg.graph);
  const auto svd = linalg::svd_gram(pub.data, 12);
  EXPECT_EQ(eigengap_k(svd.singular_values), 4u);
}

TEST(SilhouetteSelectKTest, FindsPlantedKOnBlobs) {
  random::Rng rng(2);
  // Three tight blobs in 2D.
  linalg::DenseMatrix pts(90, 2);
  const double centers[3][2] = {{0, 0}, {20, 0}, {0, 20}};
  for (std::size_t i = 0; i < 90; ++i) {
    pts(i, 0) = centers[i / 30][0] + random::normal(rng, 0, 0.5);
    pts(i, 1) = centers[i / 30][1] + random::normal(rng, 0, 0.5);
  }
  const auto sel = silhouette_select_k(pts, 2, 6);
  EXPECT_EQ(sel.best_k, 3u);
  EXPECT_EQ(sel.silhouette_per_k.size(), 5u);
}

TEST(SilhouetteSelectKTest, Validation) {
  linalg::DenseMatrix pts(10, 2);
  EXPECT_THROW((void)silhouette_select_k(pts, 1, 3), std::invalid_argument);
  EXPECT_THROW((void)silhouette_select_k(pts, 3, 2), std::invalid_argument);
  EXPECT_THROW((void)silhouette_select_k(pts, 2, 11), std::invalid_argument);
}

}  // namespace
}  // namespace sgp::cluster
