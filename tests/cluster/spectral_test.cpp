#include "cluster/spectral.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cluster/metrics.hpp"
#include "graph/generators.hpp"

namespace sgp::cluster {
namespace {

TEST(SpectralTest, EmbeddingShape) {
  random::Rng rng(1);
  const auto pg = graph::stochastic_block_model({40, 40}, 0.4, 0.02, rng);
  const auto emb = adjacency_spectral_embedding(pg.graph, 3);
  EXPECT_EQ(emb.rows(), 80u);
  EXPECT_EQ(emb.cols(), 3u);
}

TEST(SpectralTest, RecoversTwoPlantedCommunities) {
  random::Rng rng(2);
  const auto pg = graph::stochastic_block_model({60, 60}, 0.4, 0.02, rng);
  SpectralOptions opt;
  opt.num_clusters = 2;
  const auto res = spectral_cluster_graph(pg.graph, opt);
  const double nmi =
      normalized_mutual_information(res.assignments, pg.labels);
  EXPECT_GT(nmi, 0.9);
}

TEST(SpectralTest, RecoversFourPlantedCommunities) {
  random::Rng rng(3);
  const auto pg =
      graph::stochastic_block_model({50, 50, 50, 50}, 0.4, 0.01, rng);
  SpectralOptions opt;
  opt.num_clusters = 4;
  opt.seed = 11;
  const auto res = spectral_cluster_graph(pg.graph, opt);
  EXPECT_GT(normalized_mutual_information(res.assignments, pg.labels), 0.85);
}

TEST(SpectralTest, WeakStructureScoresLowerThanStrong) {
  random::Rng rng(4);
  const auto strong = graph::stochastic_block_model({60, 60}, 0.5, 0.01, rng);
  const auto weak = graph::stochastic_block_model({60, 60}, 0.12, 0.08, rng);
  SpectralOptions opt;
  opt.num_clusters = 2;
  const auto rs = spectral_cluster_graph(strong.graph, opt);
  const auto rw = spectral_cluster_graph(weak.graph, opt);
  EXPECT_GE(normalized_mutual_information(rs.assignments, strong.labels),
            normalized_mutual_information(rw.assignments, weak.labels));
}

TEST(SpectralTest, EmbeddingDimTruncates) {
  random::Rng rng(5);
  const auto pg = graph::stochastic_block_model({30, 30}, 0.4, 0.02, rng);
  const auto emb = adjacency_spectral_embedding(pg.graph, 5);
  SpectralOptions opt;
  opt.num_clusters = 2;
  opt.embedding_dim = 2;
  const auto res = cluster_embedding(emb, opt);
  EXPECT_EQ(res.centroids.cols(), 2u);
}

TEST(SpectralTest, HandlesIsolatedNodes) {
  // Two triangles plus two isolated nodes; normalize_rows must not divide
  // by ~zero on the isolated rows.
  const auto g = graph::Graph::from_edges(
      8, std::vector<graph::Edge>{
             {0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  SpectralOptions opt;
  opt.num_clusters = 2;
  const auto res = spectral_cluster_graph(g, opt);
  EXPECT_EQ(res.assignments.size(), 8u);
}

TEST(SpectralTest, InvalidDimThrows) {
  random::Rng rng(6);
  const auto g = graph::erdos_renyi(10, 0.5, rng);
  EXPECT_THROW(adjacency_spectral_embedding(g, 0), std::invalid_argument);
  EXPECT_THROW(adjacency_spectral_embedding(g, 11), std::invalid_argument);
}

TEST(SpectralTest, DeterministicForSeed) {
  random::Rng rng(7);
  const auto pg = graph::stochastic_block_model({40, 40}, 0.3, 0.02, rng);
  SpectralOptions opt;
  opt.num_clusters = 2;
  opt.seed = 99;
  const auto r1 = spectral_cluster_graph(pg.graph, opt);
  const auto r2 = spectral_cluster_graph(pg.graph, opt);
  EXPECT_EQ(r1.assignments, r2.assignments);
}

}  // namespace
}  // namespace sgp::cluster
