#include "cluster/silhouette.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "cluster/kmeans.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"

namespace sgp::cluster {
namespace {

linalg::DenseMatrix two_blobs(double separation, std::uint64_t seed) {
  random::Rng rng(seed);
  linalg::DenseMatrix pts(60, 2);
  for (std::size_t i = 0; i < 60; ++i) {
    const double cx = i < 30 ? 0.0 : separation;
    pts(i, 0) = cx + random::normal(rng, 0, 0.5);
    pts(i, 1) = random::normal(rng, 0, 0.5);
  }
  return pts;
}

std::vector<std::uint32_t> blob_labels() {
  std::vector<std::uint32_t> labels(60, 0);
  for (std::size_t i = 30; i < 60; ++i) labels[i] = 1;
  return labels;
}

TEST(SilhouetteTest, WellSeparatedScoresNearOne) {
  const auto pts = two_blobs(50.0, 1);
  EXPECT_GT(silhouette_score(pts, blob_labels()), 0.9);
}

TEST(SilhouetteTest, OverlappingScoresNearZero) {
  const auto pts = two_blobs(0.0, 2);
  const double s = silhouette_score(pts, blob_labels());
  EXPECT_LT(std::fabs(s), 0.2);
}

TEST(SilhouetteTest, WrongLabelsScoreNegative) {
  const auto pts = two_blobs(50.0, 3);
  // Assign half of each blob to the other cluster: worse than random.
  std::vector<std::uint32_t> scrambled(60);
  for (std::size_t i = 0; i < 60; ++i) scrambled[i] = i % 2;
  EXPECT_LT(silhouette_score(pts, scrambled),
            silhouette_score(pts, blob_labels()));
}

TEST(SilhouetteTest, SeparationMonotone) {
  const double weak = silhouette_score(two_blobs(1.0, 4), blob_labels());
  const double strong = silhouette_score(two_blobs(10.0, 4), blob_labels());
  EXPECT_GT(strong, weak);
}

TEST(SilhouetteTest, SingleClusterIsZero) {
  const auto pts = two_blobs(10.0, 5);
  EXPECT_DOUBLE_EQ(silhouette_score(pts, std::vector<std::uint32_t>(60, 0)),
                   0.0);
}

TEST(SilhouetteTest, SampledApproximatesExact) {
  const auto pts = two_blobs(5.0, 6);
  const double exact = silhouette_score(pts, blob_labels());
  const double sampled = silhouette_score(pts, blob_labels(), 30, 9);
  EXPECT_NEAR(sampled, exact, 0.15);
}

TEST(SilhouetteTest, AgreesWithKMeansQuality) {
  // k-means on well-separated blobs should produce a high-silhouette
  // partition; a deliberately bad k (k = 5) scores lower.
  const auto pts = two_blobs(20.0, 7);
  KMeansOptions k2;
  k2.k = 2;
  KMeansOptions k5;
  k5.k = 5;
  const auto good = kmeans(pts, k2);
  const auto bad = kmeans(pts, k5);
  EXPECT_GT(silhouette_score(pts, good.assignments),
            silhouette_score(pts, bad.assignments));
}

TEST(SilhouetteTest, InvalidArgsThrow) {
  const auto pts = two_blobs(1.0, 8);
  EXPECT_THROW((void)silhouette_score(pts, std::vector<std::uint32_t>(10, 0)),
               std::invalid_argument);
  linalg::DenseMatrix single(1, 2);
  EXPECT_THROW((void)silhouette_score(single, {0}), std::invalid_argument);
}

}  // namespace
}  // namespace sgp::cluster
