#include "cluster/louvain.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "cluster/metrics.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "random/distributions.hpp"

namespace sgp::cluster {
namespace {

TEST(LouvainTest, EmptyGraph) {
  const auto res = louvain_cluster(graph::Graph());
  EXPECT_TRUE(res.assignments.empty());
}

TEST(LouvainTest, EdgelessGraphSingletons) {
  const auto g = graph::Graph::from_edges(5, {});
  const auto res = louvain_cluster(g);
  EXPECT_EQ(res.num_communities, 5u);
  EXPECT_DOUBLE_EQ(res.modularity, 0.0);
}

TEST(LouvainTest, TwoCliquesSeparated) {
  // Two triangles joined by a single bridge edge.
  const auto g = graph::Graph::from_edges(
      6, std::vector<graph::Edge>{
             {0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
  const auto res = louvain_cluster(g);
  EXPECT_EQ(res.num_communities, 2u);
  EXPECT_EQ(res.assignments[0], res.assignments[1]);
  EXPECT_EQ(res.assignments[1], res.assignments[2]);
  EXPECT_EQ(res.assignments[3], res.assignments[4]);
  EXPECT_EQ(res.assignments[4], res.assignments[5]);
  EXPECT_NE(res.assignments[0], res.assignments[3]);
  EXPECT_GT(res.modularity, 0.3);
}

TEST(LouvainTest, RecoversPlantedSbmCommunities) {
  random::Rng rng(3);
  const auto pg = graph::stochastic_block_model({80, 80, 80}, 0.3, 0.01, rng);
  const auto res = louvain_cluster(pg.graph);
  EXPECT_GT(normalized_mutual_information(res.assignments, pg.labels), 0.85);
  EXPECT_GT(res.modularity, 0.4);
}

TEST(LouvainTest, ModularityMatchesMetricFunction) {
  random::Rng rng(4);
  const auto pg = graph::stochastic_block_model({50, 50}, 0.3, 0.02, rng);
  const auto res = louvain_cluster(pg.graph);
  EXPECT_NEAR(res.modularity,
              graph::modularity(pg.graph, res.assignments), 1e-12);
}

TEST(LouvainTest, LabelsAreDense) {
  random::Rng rng(5);
  const auto g = graph::erdos_renyi(120, 0.05, rng);
  const auto res = louvain_cluster(g);
  std::set<std::uint32_t> seen(res.assignments.begin(), res.assignments.end());
  EXPECT_EQ(seen.size(), res.num_communities);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), res.num_communities - 1);
}

TEST(LouvainTest, DeterministicForSeed) {
  random::Rng rng(6);
  const auto g = graph::erdos_renyi(100, 0.08, rng);
  LouvainOptions opt;
  opt.seed = 9;
  const auto a = louvain_cluster(g, opt);
  const auto b = louvain_cluster(g, opt);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_DOUBLE_EQ(a.modularity, b.modularity);
}

TEST(LouvainTest, BeatsRandomPartitionModularity) {
  random::Rng rng(7);
  const auto pg = graph::stochastic_block_model({60, 60}, 0.25, 0.02, rng);
  const auto res = louvain_cluster(pg.graph);
  std::vector<std::uint32_t> shuffled = pg.labels;
  random::shuffle(rng, shuffled);
  EXPECT_GT(res.modularity, graph::modularity(pg.graph, shuffled) + 0.2);
}

TEST(LouvainTest, CompleteGraphSingleCommunity) {
  std::vector<graph::Edge> edges;
  for (std::uint32_t i = 0; i < 10; ++i) {
    for (std::uint32_t j = i + 1; j < 10; ++j) edges.push_back({i, j});
  }
  const auto g = graph::Graph::from_edges(10, edges);
  const auto res = louvain_cluster(g);
  EXPECT_EQ(res.num_communities, 1u);
}

TEST(LouvainTest, InvalidOptionsThrow) {
  const auto g = graph::Graph::from_edges(3, std::vector<graph::Edge>{{0, 1}});
  LouvainOptions opt;
  opt.max_levels = 0;
  EXPECT_THROW(louvain_cluster(g, opt), std::invalid_argument);
  opt.max_levels = 1;
  opt.max_sweeps = 0;
  EXPECT_THROW(louvain_cluster(g, opt), std::invalid_argument);
}

}  // namespace
}  // namespace sgp::cluster
