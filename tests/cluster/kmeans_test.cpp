#include "cluster/kmeans.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

#include "random/distributions.hpp"
#include "random/rng.hpp"

namespace sgp::cluster {
namespace {

/// Three well-separated Gaussian blobs in 2D; 50 points each.
linalg::DenseMatrix blobs(std::uint64_t seed, double spread = 0.2) {
  random::Rng rng(seed);
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  linalg::DenseMatrix pts(150, 2);
  for (std::size_t i = 0; i < 150; ++i) {
    const auto& c = centers[i / 50];
    pts(i, 0) = c[0] + random::normal(rng, 0.0, spread);
    pts(i, 1) = c[1] + random::normal(rng, 0.0, spread);
  }
  return pts;
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  KMeansOptions opt;
  opt.k = 3;
  opt.seed = 1;
  const auto res = kmeans(blobs(1), opt);
  // Each blob maps to a single cluster, clusters distinct.
  std::set<std::uint32_t> ids;
  for (std::size_t blob = 0; blob < 3; ++blob) {
    const std::uint32_t first = res.assignments[blob * 50];
    for (std::size_t i = 0; i < 50; ++i) {
      ASSERT_EQ(res.assignments[blob * 50 + i], first) << "blob " << blob;
    }
    ids.insert(first);
  }
  EXPECT_EQ(ids.size(), 3u);
}

TEST(KMeansTest, InertiaIsSumOfSquaredDistances) {
  KMeansOptions opt;
  opt.k = 3;
  opt.seed = 2;
  const auto pts = blobs(2);
  const auto res = kmeans(pts, opt);
  double manual = 0.0;
  for (std::size_t i = 0; i < pts.rows(); ++i) {
    const auto c = res.centroids.row(res.assignments[i]);
    double d2 = 0;
    for (std::size_t j = 0; j < 2; ++j) {
      const double d = pts(i, j) - c[j];
      d2 += d * d;
    }
    manual += d2;
  }
  EXPECT_NEAR(res.inertia, manual, 1e-9 * (1.0 + manual));
}

TEST(KMeansTest, KEqualsOneCentroidIsMean) {
  linalg::DenseMatrix pts(4, 1, {1, 2, 3, 6});
  KMeansOptions opt;
  opt.k = 1;
  const auto res = kmeans(pts, opt);
  EXPECT_NEAR(res.centroids(0, 0), 3.0, 1e-12);
  for (auto a : res.assignments) EXPECT_EQ(a, 0u);
}

TEST(KMeansTest, KEqualsNPerfectFit) {
  linalg::DenseMatrix pts(3, 1, {0, 5, 10});
  KMeansOptions opt;
  opt.k = 3;
  const auto res = kmeans(pts, opt);
  EXPECT_NEAR(res.inertia, 0.0, 1e-12);
  std::set<std::uint32_t> ids(res.assignments.begin(), res.assignments.end());
  EXPECT_EQ(ids.size(), 3u);
}

TEST(KMeansTest, DeterministicForSeed) {
  KMeansOptions opt;
  opt.k = 3;
  opt.seed = 42;
  const auto pts = blobs(3);
  const auto r1 = kmeans(pts, opt);
  const auto r2 = kmeans(pts, opt);
  EXPECT_EQ(r1.assignments, r2.assignments);
  EXPECT_DOUBLE_EQ(r1.inertia, r2.inertia);
}

TEST(KMeansTest, MoreRestartsNeverWorse) {
  const auto pts = blobs(4, 2.0);  // noisy blobs → local optima exist
  KMeansOptions one;
  one.k = 3;
  one.seed = 9;
  one.restarts = 1;
  KMeansOptions many = one;
  many.restarts = 8;
  EXPECT_LE(kmeans(pts, many).inertia, kmeans(pts, one).inertia + 1e-9);
}

TEST(KMeansTest, DuplicatePointsDoNotCrash) {
  linalg::DenseMatrix pts(6, 2);  // all at origin
  KMeansOptions opt;
  opt.k = 3;
  const auto res = kmeans(pts, opt);
  EXPECT_NEAR(res.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, InvalidArgsThrow) {
  linalg::DenseMatrix pts(3, 2);
  KMeansOptions opt;
  opt.k = 0;
  EXPECT_THROW(kmeans(pts, opt), std::invalid_argument);
  opt.k = 4;
  EXPECT_THROW(kmeans(pts, opt), std::invalid_argument);
  opt.k = 2;
  opt.restarts = 0;
  EXPECT_THROW(kmeans(pts, opt), std::invalid_argument);
  EXPECT_THROW(kmeans(linalg::DenseMatrix(), opt), std::invalid_argument);
}

}  // namespace
}  // namespace sgp::cluster
