#include "cluster/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "random/rng.hpp"

namespace sgp::cluster {
namespace {

using Labels = std::vector<std::uint32_t>;

TEST(NmiTest, IdenticalPartitionsGiveOne) {
  const Labels a{0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(normalized_mutual_information(a, a), 1.0, 1e-12);
}

TEST(NmiTest, RelabelingInvariant) {
  const Labels a{0, 0, 1, 1, 2, 2};
  const Labels b{2, 2, 0, 0, 1, 1};
  EXPECT_NEAR(normalized_mutual_information(a, b), 1.0, 1e-12);
}

TEST(NmiTest, IndependentPartitionsNearZero) {
  // Large random labelings are nearly independent.
  random::Rng rng(1);
  Labels a(10000), b(10000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::uint32_t>(rng.next_below(4));
    b[i] = static_cast<std::uint32_t>(rng.next_below(4));
  }
  EXPECT_LT(normalized_mutual_information(a, b), 0.01);
}

TEST(NmiTest, PartialAgreementBetweenZeroAndOne) {
  const Labels a{0, 0, 0, 0, 1, 1, 1, 1};
  const Labels b{0, 0, 0, 1, 1, 1, 1, 0};
  const double nmi = normalized_mutual_information(a, b);
  EXPECT_GT(nmi, 0.05);
  EXPECT_LT(nmi, 0.95);
}

TEST(NmiTest, DegenerateSingleCluster) {
  const Labels single{0, 0, 0};
  const Labels split{0, 1, 2};
  EXPECT_DOUBLE_EQ(normalized_mutual_information(single, single), 1.0);
  EXPECT_DOUBLE_EQ(normalized_mutual_information(single, split), 0.0);
}

TEST(NmiTest, SymmetricInArguments) {
  const Labels a{0, 0, 1, 1, 2, 2, 0, 1};
  const Labels b{0, 1, 1, 1, 2, 0, 0, 2};
  EXPECT_NEAR(normalized_mutual_information(a, b),
              normalized_mutual_information(b, a), 1e-12);
}

TEST(NmiTest, SizeMismatchThrows) {
  EXPECT_THROW(normalized_mutual_information({0, 1}, {0}),
               std::invalid_argument);
  EXPECT_THROW(normalized_mutual_information({}, {}), std::invalid_argument);
}

TEST(AriTest, IdenticalIsOne) {
  const Labels a{0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(adjusted_rand_index(a, a), 1.0, 1e-12);
}

TEST(AriTest, RelabelingInvariant) {
  const Labels a{0, 0, 1, 1};
  const Labels b{5, 5, 3, 3};
  EXPECT_NEAR(adjusted_rand_index(a, b), 1.0, 1e-12);
}

TEST(AriTest, RandomLabelingsNearZero) {
  random::Rng rng(2);
  Labels a(10000), b(10000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::uint32_t>(rng.next_below(3));
    b[i] = static_cast<std::uint32_t>(rng.next_below(3));
  }
  EXPECT_NEAR(adjusted_rand_index(a, b), 0.0, 0.02);
}

TEST(AriTest, CanBeNegative) {
  // Systematically anti-correlated partition.
  const Labels a{0, 0, 1, 1};
  const Labels b{0, 1, 0, 1};
  EXPECT_LT(adjusted_rand_index(a, b), 1e-12);
}

TEST(AriTest, BothTrivialPartitionsIsOne) {
  const Labels a{0, 0, 0};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, a), 1.0);
}

TEST(PurityTest, PerfectClusteringIsOne) {
  const Labels pred{1, 1, 0, 0};
  const Labels truth{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(purity(pred, truth), 1.0);
}

TEST(PurityTest, KnownMixedValue) {
  // Cluster 0 holds truths {0,0,1} → 2; cluster 1 holds {1,1,0} → 2.
  const Labels pred{0, 0, 0, 1, 1, 1};
  const Labels truth{0, 0, 1, 1, 1, 0};
  EXPECT_NEAR(purity(pred, truth), 4.0 / 6.0, 1e-12);
}

TEST(PurityTest, SingletonClustersAlwaysPure) {
  const Labels pred{0, 1, 2, 3};
  const Labels truth{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(purity(pred, truth), 1.0);
}

}  // namespace
}  // namespace sgp::cluster
