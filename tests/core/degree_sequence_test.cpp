#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "cluster/metrics.hpp"
#include "cluster/spectral.hpp"
#include "core/baselines.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace sgp::core {
namespace {

TEST(DegreeSequenceTest, ReleaseIsSortedNonIncreasing) {
  random::Rng rng(1);
  const auto g = graph::barabasi_albert(300, 3, rng);
  const DegreeSequencePublisher publisher(1.0, 5);
  const auto release = publisher.publish(g);
  ASSERT_EQ(release.noisy_sorted_degrees.size(), 300u);
  EXPECT_TRUE(std::is_sorted(release.noisy_sorted_degrees.begin(),
                             release.noisy_sorted_degrees.end(),
                             std::less<double>()) ||
              std::is_sorted(release.noisy_sorted_degrees.rbegin(),
                             release.noisy_sorted_degrees.rend()));
  // Explicit non-increasing check.
  for (std::size_t i = 1; i < 300; ++i) {
    ASSERT_LE(release.noisy_sorted_degrees[i],
              release.noisy_sorted_degrees[i - 1] + 1e-12);
  }
  EXPECT_DOUBLE_EQ(release.params.delta, 0.0);  // pure DP
}

TEST(DegreeSequenceTest, HighBudgetTracksTrueSequence) {
  random::Rng rng(2);
  const auto g = graph::barabasi_albert(200, 4, rng);
  const DegreeSequencePublisher publisher(100.0, 7);
  const auto release = publisher.publish(g);
  std::vector<double> truth(200);
  for (std::size_t u = 0; u < 200; ++u) {
    truth[u] = static_cast<double>(g.degree(u));
  }
  std::sort(truth.begin(), truth.end(), std::greater<double>());
  double err = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    err += std::fabs(release.noisy_sorted_degrees[i] - truth[i]);
  }
  EXPECT_LT(err / 200.0, 0.5);
}

TEST(DegreeSequenceTest, SynthesizedGraphMatchesDegreeShape) {
  random::Rng rng(3);
  const auto g = graph::barabasi_albert(400, 5, rng);
  const DegreeSequencePublisher publisher(50.0, 9);
  const auto synthetic = publisher.synthesize(publisher.publish(g));
  EXPECT_EQ(synthetic.num_nodes(), 400u);
  // Total edges approximately preserved (configuration model drops a few).
  const double truth = static_cast<double>(g.num_edges());
  EXPECT_NEAR(static_cast<double>(synthetic.num_edges()), truth, 0.1 * truth);
  // Max degree in the same ballpark.
  const auto s_stats = graph::degree_stats(synthetic);
  const auto g_stats = graph::degree_stats(g);
  EXPECT_NEAR(static_cast<double>(s_stats.max),
              static_cast<double>(g_stats.max),
              0.35 * static_cast<double>(g_stats.max));
}

TEST(DegreeSequenceTest, CommunitiesDoNotSurvive) {
  // The paper's point about degree-only baselines: structure is destroyed.
  random::Rng rng(4);
  const auto pg = graph::stochastic_block_model({80, 80}, 0.4, 0.02, rng);
  const DegreeSequencePublisher publisher(100.0, 11);
  const auto synthetic = publisher.synthesize(publisher.publish(pg.graph));
  cluster::SpectralOptions opt;
  opt.num_clusters = 2;
  const auto res = cluster::spectral_cluster_graph(synthetic, opt);
  EXPECT_LT(cluster::normalized_mutual_information(res.assignments, pg.labels),
            0.2);
}

TEST(DegreeSequenceTest, NoiseScaleShrinksWithEpsilon) {
  random::Rng rng(5);
  const auto g = graph::erdos_renyi(200, 0.1, rng);
  std::vector<double> truth(200);
  for (std::size_t u = 0; u < 200; ++u) {
    truth[u] = static_cast<double>(g.degree(u));
  }
  std::sort(truth.begin(), truth.end(), std::greater<double>());
  auto error_at = [&](double eps) {
    const DegreeSequencePublisher publisher(eps, 13);
    const auto release = publisher.publish(g);
    double err = 0;
    for (std::size_t i = 0; i < 200; ++i) {
      err += std::fabs(release.noisy_sorted_degrees[i] - truth[i]);
    }
    return err;
  };
  EXPECT_GT(error_at(0.05), error_at(50.0));
}

TEST(DegreeSequenceTest, DeterministicForSeed) {
  random::Rng rng(6);
  const auto g = graph::erdos_renyi(100, 0.1, rng);
  const DegreeSequencePublisher a(1.0, 17), b(1.0, 17);
  EXPECT_EQ(a.publish(g).noisy_sorted_degrees,
            b.publish(g).noisy_sorted_degrees);
  EXPECT_EQ(a.synthesize(a.publish(g)).edges(),
            b.synthesize(b.publish(g)).edges());
}

TEST(DegreeSequenceTest, InvalidArgsThrow) {
  EXPECT_THROW(DegreeSequencePublisher(0.0), std::invalid_argument);
  const DegreeSequencePublisher publisher(1.0);
  EXPECT_THROW((void)publisher.publish(graph::Graph()),
               std::invalid_argument);
  DegreeSequencePublisher::Release empty;
  EXPECT_THROW((void)publisher.synthesize(empty), std::invalid_argument);
}

}  // namespace
}  // namespace sgp::core
