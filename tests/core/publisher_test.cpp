#include "core/publisher.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "cluster/metrics.hpp"
#include "graph/generators.hpp"
#include "ranking/centrality.hpp"
#include "ranking/metrics.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"

namespace sgp::core {
namespace {

// Community eigenvalues s·(p_in − p_out) ≈ 73 sit well above the spike
// detection threshold σ·(n·m)^{1/4} ≈ 33 at ε = 2, m = 60 — the regime the
// mechanism's utility theorems address.
graph::PlantedGraph test_sbm(std::uint64_t seed = 1) {
  random::Rng rng(seed);
  return graph::stochastic_block_model({150, 150, 150}, 0.5, 0.01, rng);
}

TEST(PublisherTest, ReleaseShapeAndMetadata) {
  const auto pg = test_sbm();
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 50;
  opt.params = {1.0, 1e-6};
  const RandomProjectionPublisher publisher(opt);
  const auto pub = publisher.publish(pg.graph);
  EXPECT_EQ(pub.data.rows(), 450u);
  EXPECT_EQ(pub.data.cols(), 50u);
  EXPECT_EQ(pub.num_nodes, 450u);
  EXPECT_EQ(pub.projection_dim, 50u);
  EXPECT_DOUBLE_EQ(pub.params.epsilon, 1.0);
  EXPECT_GT(pub.calibration.sigma, 0.0);
  EXPECT_EQ(pub.published_bytes(), 450u * 50u * sizeof(double));
}

TEST(PublisherTest, DeterministicForSeed) {
  const auto pg = test_sbm();
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 30;
  opt.seed = 42;
  const RandomProjectionPublisher publisher(opt);
  const auto a = publisher.publish(pg.graph);
  const auto b = publisher.publish(pg.graph);
  EXPECT_EQ(a.data, b.data);
}

TEST(PublisherTest, DifferentSeedsDifferentReleases) {
  const auto pg = test_sbm();
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 30;
  opt.seed = 1;
  const auto a = RandomProjectionPublisher(opt).publish(pg.graph);
  opt.seed = 2;
  const auto b = RandomProjectionPublisher(opt).publish(pg.graph);
  EXPECT_NE(a.data, b.data);
}

TEST(PublisherTest, ReleaseRecordsCounterRng) {
  const auto pg = test_sbm();
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 30;
  const auto pub = RandomProjectionPublisher(opt).publish(pg.graph);
  EXPECT_EQ(pub.projection_rng, ProjectionRngKind::kCounterV1);
}

TEST(PublisherTest, ProjectionRngTagRoundTrips) {
  EXPECT_EQ(to_string(ProjectionRngKind::kCounterV1), "counter-v1");
  EXPECT_EQ(to_string(ProjectionRngKind::kSequentialLegacy), "sequential-v0");
  EXPECT_EQ(parse_projection_rng("counter-v1"), ProjectionRngKind::kCounterV1);
  EXPECT_EQ(parse_projection_rng("sequential-v0"),
            ProjectionRngKind::kSequentialLegacy);
  EXPECT_THROW(static_cast<void>(parse_projection_rng("quantum")),
               util::ParseError);
}

// The fused kernel must equal the explicit three-step pipeline — materialize
// the counter-based P, SpMM, perturb — bit for bit, for both kinds. This is
// the reference the memory-saving fusion is allowed to deviate from by
// exactly nothing.
TEST(PublisherTest, FusedPublishMatchesMaterializedReference) {
  const auto pg = test_sbm(2);
  for (ProjectionKind kind :
       {ProjectionKind::kGaussian, ProjectionKind::kAchlioptas}) {
    RandomProjectionPublisher::Options opt;
    opt.projection_dim = 40;
    opt.projection = kind;
    opt.seed = 19;
    const auto pub = RandomProjectionPublisher(opt).publish(pg.graph);

    const auto p = make_projection_counter(pub.num_nodes, 40, kind, 19);
    linalg::DenseMatrix reference =
        pg.graph.adjacency_matrix().multiply_dense(p);
    const random::CounterRng noise = noise_counter_rng(19);
    for (std::size_t i = 0; i < reference.rows(); ++i) {
      auto row = reference.row(i);
      const std::uint64_t base = static_cast<std::uint64_t>(i) * 40;
      for (std::size_t c = 0; c < 40; ++c) {
        row[c] += pub.calibration.sigma * noise.normal(base + c);
      }
    }
    ASSERT_EQ(pub.data, reference) << to_string(kind);
  }
}

TEST(PublisherTest, AllocFaultSurfacesAsResourceError) {
  const std::vector<graph::Edge> edges{{0, 1}};
  const auto g = graph::Graph::from_edges(20, edges);
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 5;
  const RandomProjectionPublisher publisher(opt);
  util::arm_fault("alloc");
  EXPECT_THROW((void)publisher.publish(g), util::ResourceError);
  util::disarm_all_faults();
}

TEST(PublisherTest, NoiseMagnitudeMatchesCalibration) {
  // Publish an edgeless graph: Y = 0, so Ỹ is pure noise whose empirical
  // stddev must match σ.
  const auto g = graph::Graph::from_edges(300, {});
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 100;
  opt.params = {1.0, 1e-6};
  const auto pub = RandomProjectionPublisher(opt).publish(g);
  double sum2 = 0;
  for (double v : pub.data.data()) sum2 += v * v;
  const double empirical =
      std::sqrt(sum2 / static_cast<double>(pub.data.data().size()));
  EXPECT_NEAR(empirical, pub.calibration.sigma,
              0.05 * pub.calibration.sigma);
}

TEST(PublisherTest, HigherEpsilonLessNoise) {
  const auto pg = test_sbm();
  RandomProjectionPublisher::Options lo;
  lo.projection_dim = 40;
  lo.params = {0.2, 1e-6};
  RandomProjectionPublisher::Options hi = lo;
  hi.params = {5.0, 1e-6};
  const auto pub_lo = RandomProjectionPublisher(lo).publish(pg.graph);
  const auto pub_hi = RandomProjectionPublisher(hi).publish(pg.graph);
  EXPECT_GT(pub_lo.calibration.sigma, pub_hi.calibration.sigma);
}

TEST(PublisherTest, InvalidOptionsThrow) {
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 0;
  EXPECT_THROW(RandomProjectionPublisher{opt}, std::invalid_argument);
  opt.projection_dim = 10;
  opt.params = {0.0, 1e-6};
  EXPECT_THROW(RandomProjectionPublisher{opt}, std::invalid_argument);
}

TEST(PublisherTest, ProjectionDimExceedingNThrows) {
  const auto g = graph::Graph::from_edges(5, {});
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 10;
  const RandomProjectionPublisher publisher(opt);
  EXPECT_THROW((void)publisher.publish(g), std::invalid_argument);
}

TEST(PublisherTest, AchlioptasProjectionWorks) {
  const auto pg = test_sbm();
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 60;
  opt.projection = ProjectionKind::kAchlioptas;
  opt.params = {5.0, 1e-6};
  const auto pub = RandomProjectionPublisher(opt).publish(pg.graph);
  EXPECT_EQ(pub.projection, ProjectionKind::kAchlioptas);
  const auto res = cluster_published(pub, 3);
  EXPECT_GT(cluster::normalized_mutual_information(res.assignments, pg.labels),
            0.5);
}

TEST(PublisherIntegrationTest, ClusteringUtilityAtModerateEpsilon) {
  // On this SBM the utility transition sits near ε ≈ 3 (where the community
  // singular values ≈ 73 cross the noise spectral norm σ(√n + √m)); ε = 6 is
  // comfortably on the recovered side.
  const auto pg = test_sbm(3);
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 60;
  opt.params = {6.0, 1e-6};
  const auto pub = RandomProjectionPublisher(opt).publish(pg.graph);
  const auto res = cluster_published(pub, 3);
  const double nmi =
      cluster::normalized_mutual_information(res.assignments, pg.labels);
  EXPECT_GT(nmi, 0.7) << "clustering utility collapsed at eps=6";
}

TEST(PublisherIntegrationTest, UtilityDegradesGracefullyWithEpsilon) {
  const auto pg = test_sbm(4);
  auto nmi_at = [&](double eps) {
    RandomProjectionPublisher::Options opt;
    opt.projection_dim = 60;
    opt.params = {eps, 1e-6};
    opt.seed = 11;
    const auto pub = RandomProjectionPublisher(opt).publish(pg.graph);
    const auto res = cluster_published(pub, 3);
    return cluster::normalized_mutual_information(res.assignments, pg.labels);
  };
  // Very high budget should beat a starving budget.
  EXPECT_GT(nmi_at(8.0) + 0.05, nmi_at(0.05));
}

TEST(PublisherIntegrationTest, DegreeRankingUtilityOnHubGraph) {
  // Row norms of the release estimate degrees (JL): on a hub-dominated BA
  // graph the top-50 degree ranking survives publication at moderate ε and
  // drowns at starving ε.
  random::Rng rng(5);
  const auto g = graph::barabasi_albert(1000, 5, rng);
  const auto truth = ranking::degree_centrality(g);

  auto overlap_at = [&](double eps) {
    RandomProjectionPublisher::Options opt;
    opt.projection_dim = 100;
    opt.params = {eps, 1e-6};
    opt.seed = 8;
    const auto pub = RandomProjectionPublisher(opt).publish(g);
    return ranking::top_k_overlap(truth, degree_scores(pub), 50);
  };
  EXPECT_GT(overlap_at(10.0), 0.35);
  EXPECT_GT(overlap_at(10.0), overlap_at(0.5));
}

TEST(PublisherIntegrationTest, EigenRankingUtilityAtGenerousBudget) {
  random::Rng rng(5);
  const auto g = graph::barabasi_albert(1000, 5, rng);
  const auto truth = ranking::eigenvector_centrality(g);
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 100;
  opt.params = {100.0, 1e-6};
  const auto pub = RandomProjectionPublisher(opt).publish(g);
  EXPECT_GT(ranking::top_k_overlap(truth, centrality_scores(pub), 50), 0.4);
}

TEST(PublisherTest, DegreeScoresDebiasedOnEmptyGraph) {
  // Empty graph: every true degree is 0, so debiased scores should center
  // on 0 rather than on m·σ².
  const auto g = graph::Graph::from_edges(400, {});
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 100;
  opt.params = {1.0, 1e-6};
  const auto pub = RandomProjectionPublisher(opt).publish(g);
  const auto scores = degree_scores(pub);
  double mean = 0;
  for (double s : scores) mean += s;
  mean /= static_cast<double>(scores.size());
  const double sigma2 = pub.calibration.sigma * pub.calibration.sigma;
  EXPECT_LT(std::fabs(mean), 0.2 * 100.0 * sigma2);
}

TEST(PublisherIntegrationTest, SpectralEmbeddingApproximatesTopEigenvector) {
  const auto pg = test_sbm(6);
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 80;
  opt.params = {8.0, 1e-6};
  const auto pub = RandomProjectionPublisher(opt).publish(pg.graph);
  const auto emb = spectral_embedding(pub, 1);
  const auto truth = ranking::eigenvector_centrality(pg.graph);
  // |cos| similarity between |u1| of the release and the true Perron vector.
  double dot = 0, nrm = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    dot += std::fabs(emb(i, 0)) * truth[i];
    nrm += emb(i, 0) * emb(i, 0);
  }
  EXPECT_GT(dot / std::sqrt(nrm), 0.85);
}

TEST(PublisherTest, SpectralEmbeddingInvalidKThrows) {
  const auto pg = test_sbm(7);
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 20;
  const auto pub = RandomProjectionPublisher(opt).publish(pg.graph);
  EXPECT_THROW((void)spectral_embedding(pub, 0), std::invalid_argument);
  EXPECT_THROW((void)spectral_embedding(pub, 21), std::invalid_argument);
}

}  // namespace
}  // namespace sgp::core
