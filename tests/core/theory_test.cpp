#include "core/theory.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/projection.hpp"
#include "linalg/vector_ops.hpp"
#include "random/rng.hpp"

namespace sgp::core {
namespace {

TEST(SensitivityTest, DecreasesTowardOneWithM) {
  const double delta_p = 1e-6;
  const double s32 = projected_row_sensitivity(32, delta_p);
  const double s128 = projected_row_sensitivity(128, delta_p);
  const double s4096 = projected_row_sensitivity(4096, delta_p);
  EXPECT_GT(s32, s128);
  EXPECT_GT(s128, s4096);
  EXPECT_GT(s4096, 1.0);
  EXPECT_LT(s4096, 1.2);
}

TEST(SensitivityTest, TighterDeltaMeansLargerBound) {
  EXPECT_GT(projected_row_sensitivity(100, 1e-9),
            projected_row_sensitivity(100, 1e-3));
}

TEST(SensitivityTest, BoundActuallyHoldsEmpirically) {
  // Draw many projection rows; the bound at δ_p should be violated at rate
  // ≤ δ_p — with δ_p = 0.01 and 2000 trials we allow a small margin.
  random::Rng rng(7);
  const std::size_t m = 64;
  const double bound = projected_row_sensitivity(m, 0.01);
  int violations = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    const auto p = gaussian_projection(1, m, rng);
    if (linalg::norm2(p.row(0)) > bound) ++violations;
  }
  EXPECT_LE(violations, 40);  // 0.01 * 2000 = 20 expected at most; 2x slack
}

TEST(SensitivityTest, DenseIsSqrtTwo) {
  EXPECT_DOUBLE_EQ(dense_row_sensitivity(), std::sqrt(2.0));
}

TEST(SensitivityTest, InvalidArgsThrow) {
  EXPECT_THROW(projected_row_sensitivity(0, 0.1), std::invalid_argument);
  EXPECT_THROW(projected_row_sensitivity(10, 0.0), std::invalid_argument);
  EXPECT_THROW(projected_row_sensitivity(10, 1.0), std::invalid_argument);
}

TEST(CalibrationTest, SplitsDelta) {
  const dp::PrivacyParams params{1.0, 1e-5};
  const auto cal = calibrate_noise(100, params);
  EXPECT_NEAR(cal.delta_projection, 5e-6, 1e-12);
  EXPECT_NEAR(cal.delta_gaussian, 5e-6, 1e-12);
  EXPECT_GT(cal.sigma, 0.0);
  EXPECT_GT(cal.sensitivity, 1.0);
}

TEST(CalibrationTest, SigmaShrinksWithEpsilon) {
  const auto lo = calibrate_noise(100, {0.5, 1e-6});
  const auto hi = calibrate_noise(100, {2.0, 1e-6});
  EXPECT_GT(lo.sigma, hi.sigma);
}

TEST(CalibrationTest, NoiseIsSmallClaimHolds) {
  // The headline claim: at ε = 1, δ = 1e-6 the per-entry noise σ is a small
  // constant (≈ sqrt(2 ln 1e6)) regardless of graph size n — it depends only
  // on m through the vanishing sensitivity correction.
  const auto cal = calibrate_noise(200, {1.0, 1e-6});
  EXPECT_LT(cal.sigma, 8.0);
  // And the dense mechanism at the same budget needs comparable σ per cell
  // but over n²/m times more cells.
}

TEST(CalibrationTest, AnalyticNoLooserThanClassic) {
  const dp::PrivacyParams params{0.5, 1e-6};
  const auto analytic = calibrate_noise(100, params, true);
  const auto classic = calibrate_noise(100, params, false);
  EXPECT_LE(analytic.sigma, classic.sigma + 1e-12);
}

TEST(CalibrationTest, CustomDeltaSplit) {
  const dp::PrivacyParams params{1.0, 1e-5};
  const auto cal = calibrate_noise(100, params, true, 0.1);
  EXPECT_NEAR(cal.delta_projection, 1e-6, 1e-15);
  EXPECT_NEAR(cal.delta_gaussian, 9e-6, 1e-15);
}

TEST(CalibrationTest, InvalidSplitThrows) {
  EXPECT_THROW(calibrate_noise(100, {1.0, 1e-5}, true, 0.0),
               std::invalid_argument);
  EXPECT_THROW(calibrate_noise(100, {1.0, 1e-5}, true, 1.0),
               std::invalid_argument);
}

TEST(JlDimTest, Formula) {
  const std::size_t m = johnson_lindenstrauss_dim(10000, 0.5);
  const double denom = 0.25 / 2.0 - 0.125 / 3.0;
  EXPECT_EQ(m, static_cast<std::size_t>(
                   std::ceil(4.0 * std::log(10000.0) / denom)));
}

TEST(JlDimTest, MonotoneInPointsAndDistortion) {
  EXPECT_GT(johnson_lindenstrauss_dim(100000, 0.3),
            johnson_lindenstrauss_dim(1000, 0.3));
  EXPECT_GT(johnson_lindenstrauss_dim(1000, 0.1),
            johnson_lindenstrauss_dim(1000, 0.5));
}

TEST(JlDimTest, InvalidArgsThrow) {
  EXPECT_THROW(johnson_lindenstrauss_dim(1, 0.5), std::invalid_argument);
  EXPECT_THROW(johnson_lindenstrauss_dim(100, 0.0), std::invalid_argument);
  EXPECT_THROW(johnson_lindenstrauss_dim(100, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace sgp::core
