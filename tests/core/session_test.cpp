#include "core/session.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "graph/generators.hpp"
#include "util/errors.hpp"

namespace sgp::core {
namespace {

graph::Graph small_graph(std::uint64_t seed = 1) {
  random::Rng rng(seed);
  return graph::erdos_renyi(100, 0.1, rng);
}

PublishingSession::Options session_options(double per_eps, double total_eps) {
  PublishingSession::Options opt;
  opt.publisher.projection_dim = 20;
  opt.publisher.params = {per_eps, 1e-7};
  opt.publisher.seed = 5;
  opt.total_budget = {total_eps, 1e-5};
  return opt;
}

TEST(SessionTest, StartsEmpty) {
  PublishingSession session(session_options(1.0, 10.0));
  EXPECT_EQ(session.num_releases(), 0u);
  EXPECT_DOUBLE_EQ(session.spent().epsilon, 0.0);
  EXPECT_DOUBLE_EQ(session.remaining_epsilon(), 10.0);
}

TEST(SessionTest, PublishChargesBudget) {
  PublishingSession session(session_options(1.0, 10.0));
  const auto g = small_graph();
  (void)session.publish(g);
  EXPECT_EQ(session.num_releases(), 1u);
  EXPECT_GT(session.spent().epsilon, 0.0);
  EXPECT_LE(session.spent().epsilon, 1.0 + 1e-9);
  EXPECT_LT(session.remaining_epsilon(), 10.0);
}

TEST(SessionTest, RefusesToExceedCap) {
  PublishingSession session(session_options(1.0, 2.5));
  const auto g = small_graph();
  bool refused = false;
  std::size_t published = 0;
  for (int i = 0; i < 100; ++i) {
    try {
      (void)session.publish(g);
      ++published;
      // Invariant: the spent budget never exceeds the cap.
      ASSERT_LE(session.spent().epsilon, 2.5 + 1e-9);
    } catch (const std::runtime_error&) {
      refused = true;
      break;
    }
  }
  EXPECT_TRUE(refused) << "session never enforced the cap";
  EXPECT_GE(published, 2u);  // cap allows at least basic 2 x 1.0
  EXPECT_EQ(session.num_releases(), published);  // refusal not charged
}

TEST(SessionTest, PerReleaseAboveCapRejectedAtConstruction) {
  EXPECT_THROW(PublishingSession(session_options(5.0, 2.0)),
               std::invalid_argument);
}

TEST(SessionTest, ReleasesUseFreshRandomness) {
  PublishingSession session(session_options(1.0, 10.0));
  const auto g = small_graph();
  const auto a = session.publish(g);
  const auto b = session.publish(g);
  EXPECT_NE(a.data, b.data);
}

TEST(SessionTest, RdpBeatsBasicForManySmallReleases) {
  // 50 releases at eps=0.2: basic composition says 10; RDP should do
  // noticeably better, leaving headroom under a cap of 10.
  auto opt = session_options(0.2, 10.0);
  PublishingSession session(opt);
  const auto g = small_graph();
  for (int i = 0; i < 50; ++i) (void)session.publish(g);
  EXPECT_LT(session.spent().epsilon, 10.0 * 0.9);
  EXPECT_GT(session.remaining_epsilon(), 0.0);
}

TEST(SessionTest, ReleaseExactlyAtTheCapIsAllowed) {
  // Two releases of ε=1.0 under a cap of exactly 2.0: sequential composition
  // lands exactly on the cap, which is "<=", not "past" — both must succeed.
  PublishingSession session(session_options(1.0, 2.0));
  const auto g = small_graph();
  (void)session.publish(g);
  (void)session.publish(g);
  EXPECT_EQ(session.num_releases(), 2u);
  EXPECT_LE(session.spent().epsilon, 2.0 + 1e-12);
}

TEST(SessionTest, RefusalIsTypedAndUncharged) {
  PublishingSession session(session_options(1.0, 2.0));
  const auto g = small_graph();
  bool refused = false;
  for (int i = 0; i < 50 && !refused; ++i) {
    try {
      (void)session.publish(g);
    } catch (const util::BudgetExhaustedError&) {
      refused = true;
    }
  }
  ASSERT_TRUE(refused);
  const auto releases_at_refusal = session.num_releases();
  const auto spent_at_refusal = session.spent().epsilon;
  // A refused publish charges nothing: state identical after another refusal.
  EXPECT_THROW((void)session.publish(g), util::BudgetExhaustedError);
  EXPECT_EQ(session.num_releases(), releases_at_refusal);
  EXPECT_DOUBLE_EQ(session.spent().epsilon, spent_at_refusal);
}

TEST(SessionTest, LedgerBackedSessionRecoversSpentBudget) {
  const std::string path = testing::TempDir() + "/sgp_session_ledger_test.ledger";
  std::remove(path.c_str());
  const auto g = small_graph();
  double spent = 0.0;
  {
    PublishingSession session(session_options(0.5, 10.0), path);
    ASSERT_TRUE(session.has_ledger());
    (void)session.publish(g);
    (void)session.publish(g);
    spent = session.spent().epsilon;
  }
  PublishingSession recovered(session_options(0.5, 10.0), path);
  EXPECT_EQ(recovered.num_releases(), 2u);
  EXPECT_DOUBLE_EQ(recovered.spent().epsilon, spent);
  std::remove(path.c_str());
}

TEST(SessionTest, SpentIsMonotone) {
  PublishingSession session(session_options(0.5, 20.0));
  const auto g = small_graph();
  double last = 0.0;
  for (int i = 0; i < 5; ++i) {
    (void)session.publish(g);
    const double now = session.spent().epsilon;
    EXPECT_GT(now, last);
    last = now;
  }
}

}  // namespace
}  // namespace sgp::core
