// publish_sharded: the differential layer. The out-of-core path must be
// byte-identical to the in-memory publish_to_stream reference for every
// shard size and thread count, resume from a checkpoint after a mid-shard
// crash without changing a byte, and refuse stale checkpoints. The large
// shard×thread matrix lives in tests/slow/differential_matrix_test.cpp;
// this file keeps a representative fast slice in the default suite.
#include "core/sharded_publish.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/serialization.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "random/rng.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"

namespace sgp::core {
namespace {

class ShardedPublishTest : public testing::Test {
 protected:
  void SetUp() override {
    const std::string stem =
        testing::TempDir() + "/sgp_sharded_" +
        testing::UnitTest::GetInstance()->current_test_info()->name();
    edges_path_ = stem + ".edges";
    out_path_ = stem + ".bin";
    random::Rng rng(31);
    graph_ = graph::erdos_renyi(90, 0.08, rng);
    graph::write_edge_list_file(graph_, edges_path_);
  }
  void TearDown() override {
    util::disarm_all_faults();
    std::remove(edges_path_.c_str());
    std::remove(out_path_.c_str());
    std::remove((out_path_ + ".ckpt").c_str());
  }

  RandomProjectionPublisher::Options publish_options() const {
    RandomProjectionPublisher::Options opt;
    opt.projection_dim = 16;
    opt.seed = 1234;
    return opt;
  }

  /// The in-memory reference bytes for the same file and options.
  std::string reference_bytes() const {
    const graph::Graph g =
        graph::read_edge_list_file(edges_path_, graph::IdPolicy::kPreserve);
    std::ostringstream out(std::ios::binary);
    publish_to_stream(g, publish_options(), out);
    return out.str();
  }

  std::string out_bytes() const {
    std::ifstream in(out_path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  ShardedPublishResult run(std::size_t shard_rows, std::size_t threads,
                           bool resume = true) const {
    graph::EdgeListShardReader reader(edges_path_, graph::IdPolicy::kPreserve);
    ShardedPublishOptions opt;
    opt.publish = publish_options();
    opt.shard_rows = shard_rows;
    opt.threads = threads;
    opt.resume = resume;
    return publish_sharded(reader, opt, out_path_);
  }

  graph::Graph graph_;
  std::string edges_path_;
  std::string out_path_;
};

TEST_F(ShardedPublishTest, ByteIdenticalAcrossShardSizesAndThreads) {
  const std::string reference = reference_bytes();
  const std::size_t n = graph_.num_nodes();
  for (const std::size_t shard_rows : {std::size_t{1}, std::size_t{7}, n}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
      const ShardedPublishResult result = run(shard_rows, threads);
      EXPECT_EQ(result.num_nodes, n);
      EXPECT_EQ(result.shards_resumed, 0u);
      ASSERT_EQ(out_bytes(), reference)
          << "shard_rows=" << shard_rows << " threads=" << threads;
    }
  }
}

TEST_F(ShardedPublishTest, SingleShardDefaultMatchesReference) {
  const ShardedPublishResult result = run(/*shard_rows=*/0, /*threads=*/1);
  EXPECT_EQ(result.shards_total, 1u);
  EXPECT_EQ(out_bytes(), reference_bytes());
}

TEST_F(ShardedPublishTest, OutputLoadsAsPublishedGraph) {
  run(/*shard_rows=*/16, /*threads=*/2);
  const PublishedGraph pub = load_published_file(out_path_);
  EXPECT_EQ(pub.num_nodes, graph_.num_nodes());
  EXPECT_EQ(pub.projection_dim, 16u);
  EXPECT_EQ(pub.projection_rng, ProjectionRngKind::kCounterV1);
}

TEST_F(ShardedPublishTest, CheckpointIsDeletedOnSuccess) {
  run(/*shard_rows=*/16, /*threads=*/1);
  EXPECT_FALSE(std::filesystem::exists(out_path_ + ".ckpt"));
}

TEST_F(ShardedPublishTest, ResumesAfterCrashDuringShardWrite) {
  util::arm_fault("io.shard.write", {.after = 2});
  EXPECT_THROW(run(/*shard_rows=*/16, /*threads=*/1), util::IoError);
  util::disarm_all_faults();
  // Two shards were written and checkpointed before the crash.
  EXPECT_TRUE(std::filesystem::exists(out_path_ + ".ckpt"));

  const ShardedPublishResult result = run(/*shard_rows=*/16, /*threads=*/1);
  EXPECT_EQ(result.shards_resumed, 2u);
  EXPECT_EQ(out_bytes(), reference_bytes());
  EXPECT_FALSE(std::filesystem::exists(out_path_ + ".ckpt"));
}

TEST_F(ShardedPublishTest, ResumesAfterCrashBetweenPayloadAndCheckpoint) {
  // The shard's bytes hit the release file but the checkpoint record does
  // not: resume must distrust the unlogged tail and redo exactly one shard.
  util::arm_fault("io.shard.checkpoint", {.after = 2});
  EXPECT_THROW(run(/*shard_rows=*/16, /*threads=*/1), util::IoError);
  util::disarm_all_faults();

  const ShardedPublishResult result = run(/*shard_rows=*/16, /*threads=*/1);
  EXPECT_EQ(result.shards_resumed, 2u);
  EXPECT_EQ(out_bytes(), reference_bytes());
}

TEST_F(ShardedPublishTest, StaleCheckpointFromOtherSeedIsIgnored) {
  util::arm_fault("io.shard.write", {.after = 2});
  EXPECT_THROW(run(/*shard_rows=*/16, /*threads=*/1), util::IoError);
  util::disarm_all_faults();

  graph::EdgeListShardReader reader(edges_path_, graph::IdPolicy::kPreserve);
  ShardedPublishOptions opt;
  opt.publish = publish_options();
  opt.publish.seed = 999;  // different release — checkpoint must not apply
  opt.shard_rows = 16;
  const ShardedPublishResult result = publish_sharded(reader, opt, out_path_);
  EXPECT_EQ(result.shards_resumed, 0u);

  const graph::Graph g =
      graph::read_edge_list_file(edges_path_, graph::IdPolicy::kPreserve);
  std::ostringstream expected(std::ios::binary);
  publish_to_stream(g, opt.publish, expected);
  EXPECT_EQ(out_bytes(), expected.str());
}

TEST_F(ShardedPublishTest, ResumeDisabledStartsFresh) {
  util::arm_fault("io.shard.write", {.after = 2});
  EXPECT_THROW(run(/*shard_rows=*/16, /*threads=*/1), util::IoError);
  util::disarm_all_faults();

  const ShardedPublishResult result =
      run(/*shard_rows=*/16, /*threads=*/1, /*resume=*/false);
  EXPECT_EQ(result.shards_resumed, 0u);
  EXPECT_EQ(out_bytes(), reference_bytes());
}

TEST_F(ShardedPublishTest, TruncatedReleaseFileInvalidatesCheckpoint) {
  util::arm_fault("io.shard.write", {.after = 2});
  EXPECT_THROW(run(/*shard_rows=*/16, /*threads=*/1), util::IoError);
  util::disarm_all_faults();
  // The release file lost bytes the checkpoint vouches for (e.g. replaced
  // by an operator): the checkpoint must be discarded, not trusted.
  std::filesystem::resize_file(out_path_, 10);

  const ShardedPublishResult result = run(/*shard_rows=*/16, /*threads=*/1);
  EXPECT_EQ(result.shards_resumed, 0u);
  EXPECT_EQ(out_bytes(), reference_bytes());
}

TEST_F(ShardedPublishTest, CompactPolicyMatchesCompactReference) {
  graph::EdgeListShardReader reader(edges_path_, graph::IdPolicy::kCompact);
  ShardedPublishOptions opt;
  opt.publish = publish_options();
  opt.shard_rows = 7;
  opt.threads = 2;
  publish_sharded(reader, opt, out_path_);

  const graph::Graph g =
      graph::read_edge_list_file(edges_path_, graph::IdPolicy::kCompact);
  std::ostringstream expected(std::ios::binary);
  publish_to_stream(g, opt.publish, expected);
  EXPECT_EQ(out_bytes(), expected.str());
}

TEST_F(ShardedPublishTest, RejectsBadDimensions) {
  graph::EdgeListShardReader reader(edges_path_, graph::IdPolicy::kPreserve);
  ShardedPublishOptions opt;
  opt.publish = publish_options();
  opt.publish.projection_dim = graph_.num_nodes() + 1;
  EXPECT_THROW(publish_sharded(reader, opt, out_path_),
               util::PreconditionError);
}

}  // namespace
}  // namespace sgp::core
