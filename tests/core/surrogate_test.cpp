#include "core/surrogate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "cluster/metrics.hpp"
#include "cluster/spectral.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace sgp::core {
namespace {

struct Setup {
  graph::PlantedGraph planted;
  PublishedGraph pub;
};

Setup make_setup(double epsilon, std::uint64_t seed = 3) {
  Setup s;
  random::Rng rng(seed);
  s.planted = graph::stochastic_block_model({100, 100}, 0.4, 0.02, rng);
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 60;
  opt.params = {epsilon, 1e-6};
  opt.seed = seed;
  s.pub = RandomProjectionPublisher(opt).publish(s.planted.graph);
  return s;
}

TEST(RdpgPositionsTest, ShapeAndScaling) {
  const auto s = make_setup(8.0);
  const auto x = rdpg_positions(s.pub, 4);
  EXPECT_EQ(x.rows(), 200u);
  EXPECT_EQ(x.cols(), 4u);
  // Column norms should equal the singular values^{1/2}·1 = sqrt(σ_j)·‖u_j‖
  // = sqrt(σ_j); leading column dominated by the top singular value.
  double lead = 0, trail = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    lead += x(i, 0) * x(i, 0);
    trail += x(i, 3) * x(i, 3);
  }
  EXPECT_GT(lead, trail);
}

TEST(RdpgPositionsTest, InvalidRankThrows) {
  const auto s = make_setup(4.0);
  EXPECT_THROW((void)rdpg_positions(s.pub, 0), std::invalid_argument);
  EXPECT_THROW((void)rdpg_positions(s.pub, 61), std::invalid_argument);
}

TEST(SurrogateTest, EdgeCountRoughlyPreservedAtHighBudget) {
  const auto s = make_setup(50.0);
  SurrogateOptions opt;
  opt.rank = 4;
  const auto surrogate = sample_surrogate_graph(s.pub, opt);
  const double truth = static_cast<double>(s.planted.graph.num_edges());
  EXPECT_EQ(surrogate.num_nodes(), 200u);
  EXPECT_NEAR(static_cast<double>(surrogate.num_edges()), truth, 0.35 * truth);
}

TEST(SurrogateTest, CommunityStructureSurvives) {
  const auto s = make_setup(50.0);
  SurrogateOptions opt;
  opt.rank = 4;
  opt.seed = 11;
  const auto surrogate = sample_surrogate_graph(s.pub, opt);
  // Cluster the surrogate itself; communities should match the planted ones.
  cluster::SpectralOptions copt;
  copt.num_clusters = 2;
  const auto res = cluster::spectral_cluster_graph(surrogate, copt);
  EXPECT_GT(cluster::normalized_mutual_information(res.assignments,
                                                   s.planted.labels),
            0.7);
}

TEST(SurrogateTest, WithinCommunityDensityHigher) {
  const auto s = make_setup(50.0);
  SurrogateOptions opt;
  opt.rank = 4;
  const auto surrogate = sample_surrogate_graph(s.pub, opt);
  std::size_t within = 0, cross = 0;
  for (const auto& e : surrogate.edges()) {
    (s.planted.labels[e.u] == s.planted.labels[e.v] ? within : cross) += 1;
  }
  EXPECT_GT(within, 2 * cross);
}

TEST(SurrogateTest, DeterministicForSeed) {
  const auto s = make_setup(10.0);
  SurrogateOptions opt;
  opt.rank = 3;
  opt.seed = 21;
  const auto a = sample_surrogate_graph(s.pub, opt);
  const auto b = sample_surrogate_graph(s.pub, opt);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(SurrogateTest, MaxProbabilityCapsDensity) {
  const auto s = make_setup(50.0);
  SurrogateOptions loose;
  loose.rank = 4;
  SurrogateOptions tight = loose;
  tight.max_probability = 0.05;
  const auto dense = sample_surrogate_graph(s.pub, loose);
  const auto sparse = sample_surrogate_graph(s.pub, tight);
  EXPECT_LT(sparse.num_edges(), dense.num_edges());
}

TEST(SurrogateTest, InvalidOptionsThrow) {
  const auto s = make_setup(4.0);
  SurrogateOptions opt;
  opt.max_probability = 0.0;
  EXPECT_THROW((void)sample_surrogate_graph(s.pub, opt),
               std::invalid_argument);
  opt.max_probability = 1.5;
  EXPECT_THROW((void)sample_surrogate_graph(s.pub, opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace sgp::core
