#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "cluster/metrics.hpp"
#include "cluster/spectral.hpp"
#include "dp/mechanisms.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace sgp::core {
namespace {

graph::PlantedGraph small_sbm(std::uint64_t seed = 1) {
  random::Rng rng(seed);
  return graph::stochastic_block_model({40, 40}, 0.4, 0.02, rng);
}

TEST(DenseGaussianTest, ReleaseIsSymmetricFullMatrix) {
  const auto pg = small_sbm();
  const DenseGaussianPublisher publisher({1.0, 1e-6}, 3);
  const auto pub = publisher.publish(pg.graph);
  EXPECT_EQ(pub.data.rows(), 80u);
  EXPECT_EQ(pub.data.cols(), 80u);
  for (std::size_t i = 0; i < 80; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      ASSERT_DOUBLE_EQ(pub.data(i, j), pub.data(j, i));
    }
  }
}

TEST(DenseGaussianTest, SigmaMatchesMechanism) {
  const DenseGaussianPublisher publisher({1.0, 1e-6});
  const auto pub = publisher.publish(small_sbm().graph);
  EXPECT_NEAR(pub.sigma,
              dp::analytic_gaussian_sigma(std::sqrt(2.0), {1.0, 1e-6}), 1e-9);
}

TEST(DenseGaussianTest, PublishedBytesQuadratic) {
  const auto pub = DenseGaussianPublisher({1.0, 1e-6}).publish(small_sbm().graph);
  EXPECT_EQ(pub.published_bytes(), 80u * 80u * sizeof(double));
}

TEST(DenseGaussianTest, EmbeddingRecoversCommunitiesAtHighBudget) {
  const auto pg = small_sbm(2);
  const DenseGaussianPublisher publisher({8.0, 1e-6}, 5);
  const auto pub = publisher.publish(pg.graph);
  const auto emb = dense_spectral_embedding(pub, 2);
  cluster::SpectralOptions opt;
  opt.num_clusters = 2;
  const auto res = cluster::cluster_embedding(emb, opt);
  EXPECT_GT(cluster::normalized_mutual_information(res.assignments, pg.labels),
            0.6);
}

TEST(DenseGaussianTest, InvalidParamsThrow) {
  EXPECT_THROW(DenseGaussianPublisher({0.0, 1e-6}), std::invalid_argument);
}

TEST(LnppTest, ReleaseShape) {
  const auto pg = small_sbm(3);
  LnppPublisher::Options opt;
  opt.k = 4;
  opt.epsilon = 2.0;
  const LnppPublisher publisher(opt);
  const auto rel = publisher.publish(pg.graph);
  EXPECT_EQ(rel.eigenvalues.size(), 4u);
  EXPECT_EQ(rel.eigenvectors.rows(), 80u);
  EXPECT_EQ(rel.eigenvectors.cols(), 4u);
  EXPECT_DOUBLE_EQ(rel.params.epsilon, 2.0);
  EXPECT_DOUBLE_EQ(rel.params.delta, 0.0);  // pure DP
}

TEST(LnppTest, EigenvaluesRoughlyTrackTruthAtHugeBudget) {
  const auto pg = small_sbm(4);
  LnppPublisher::Options opt;
  opt.k = 2;
  opt.epsilon = 1000.0;  // effectively no noise
  const auto rel = LnppPublisher(opt).publish(pg.graph);
  // SBM(40,40 @ 0.4/0.02): λ1 ≈ within-degree ≈ 16 + cross, λ2 smaller.
  EXPECT_GT(rel.eigenvalues[0], 10.0);
  EXPECT_GT(rel.eigenvalues[0], rel.eigenvalues[1]);
}

TEST(LnppTest, NoiseGrowsAsEpsilonShrinks) {
  const auto pg = small_sbm(5);
  auto value_error = [&](double eps) {
    LnppPublisher::Options opt;
    opt.k = 2;
    opt.epsilon = eps;
    opt.seed = 9;
    const auto rel = LnppPublisher(opt).publish(pg.graph);
    LnppPublisher::Options clean_opt = opt;
    clean_opt.epsilon = 1e6;
    const auto clean = LnppPublisher(clean_opt).publish(pg.graph);
    return std::fabs(rel.eigenvalues[0] - clean.eigenvalues[0]);
  };
  // Average over a few seeds implicitly via single draw: use generous margin.
  EXPECT_GT(value_error(0.01) + 1e-9, value_error(100.0));
}

TEST(LnppTest, InvalidOptionsThrow) {
  LnppPublisher::Options opt;
  opt.k = 0;
  EXPECT_THROW(LnppPublisher{opt}, std::invalid_argument);
  opt.k = 2;
  opt.epsilon = 0.0;
  EXPECT_THROW(LnppPublisher{opt}, std::invalid_argument);
  opt.epsilon = 1.0;
  opt.value_share = 1.0;
  EXPECT_THROW(LnppPublisher{opt}, std::invalid_argument);
}

TEST(LnppTest, KLargerThanNThrows) {
  const auto g = graph::Graph::from_edges(3, std::vector<graph::Edge>{{0, 1}});
  LnppPublisher::Options opt;
  opt.k = 5;
  const LnppPublisher publisher(opt);
  EXPECT_THROW((void)publisher.publish(g), std::invalid_argument);
}

TEST(EdgeFlipTest, HugeEpsilonPreservesGraph) {
  const auto pg = small_sbm(6);
  const EdgeFlipPublisher publisher(50.0, 3);
  const auto flipped = publisher.publish(pg.graph);
  EXPECT_EQ(flipped.num_nodes(), pg.graph.num_nodes());
  EXPECT_EQ(flipped.edges(), pg.graph.edges());
}

TEST(EdgeFlipTest, TinyEpsilonApproachesCoinFlips) {
  const auto g = graph::Graph::from_edges(100, {});  // empty graph
  const EdgeFlipPublisher publisher(1e-6, 4);
  const auto flipped = publisher.publish(g);
  // keep ≈ 0.5 → about half of C(100,2) = 4950 pairs become edges.
  EXPECT_NEAR(static_cast<double>(flipped.num_edges()), 2475.0, 200.0);
}

TEST(EdgeFlipTest, FlipRateMatchesTheory) {
  const auto pg = small_sbm(7);
  const double eps = 1.5;
  const EdgeFlipPublisher publisher(eps, 5);
  const auto flipped = publisher.publish(pg.graph);
  const double keep = dp::randomized_response_keep_probability(eps);
  // Count surviving original edges.
  std::size_t survived = 0;
  for (const graph::Edge& e : pg.graph.edges()) {
    if (flipped.has_edge(e.u, e.v)) ++survived;
  }
  const double rate =
      static_cast<double>(survived) / static_cast<double>(pg.graph.num_edges());
  EXPECT_NEAR(rate, keep, 0.05);
}

TEST(EdgeFlipTest, DeterministicForSeed) {
  const auto pg = small_sbm(8);
  const EdgeFlipPublisher a(1.0, 11), b(1.0, 11);
  EXPECT_EQ(a.publish(pg.graph).edges(), b.publish(pg.graph).edges());
}

TEST(EdgeFlipTest, InvalidEpsilonThrows) {
  EXPECT_THROW(EdgeFlipPublisher(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace sgp::core
