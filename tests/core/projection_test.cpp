#include "core/projection.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "linalg/vector_ops.hpp"

namespace sgp::core {
namespace {

TEST(ProjectionTest, GaussianShapeAndScale) {
  random::Rng rng(1);
  const std::size_t n = 400, m = 100;
  const auto p = gaussian_projection(n, m, rng);
  EXPECT_EQ(p.rows(), n);
  EXPECT_EQ(p.cols(), m);
  // Entry variance should be 1/m.
  double sum2 = 0;
  for (double v : p.data()) sum2 += v * v;
  EXPECT_NEAR(sum2 / static_cast<double>(n * m), 1.0 / m, 0.1 / m);
}

TEST(ProjectionTest, GaussianRowNormsConcentrateAroundOne) {
  random::Rng rng(2);
  const auto p = gaussian_projection(200, 128, rng);
  for (std::size_t i = 0; i < p.rows(); ++i) {
    const double nrm = linalg::norm2(p.row(i));
    ASSERT_GT(nrm, 0.6) << "row " << i;
    ASSERT_LT(nrm, 1.5) << "row " << i;
  }
}

TEST(ProjectionTest, AchlioptasEntriesTernary) {
  random::Rng rng(3);
  const std::size_t m = 27;
  const auto p = achlioptas_projection(100, m, rng);
  const double mag = std::sqrt(3.0 / m);
  std::size_t zeros = 0;
  for (double v : p.data()) {
    ASSERT_TRUE(v == 0.0 || std::fabs(std::fabs(v) - mag) < 1e-12);
    if (v == 0.0) ++zeros;
  }
  // Two thirds should be zero.
  EXPECT_NEAR(static_cast<double>(zeros) / (100.0 * m), 2.0 / 3.0, 0.03);
}

TEST(ProjectionTest, AchlioptasUnitVarianceColumns) {
  random::Rng rng(4);
  const std::size_t n = 300, m = 64;
  const auto p = achlioptas_projection(n, m, rng);
  double sum2 = 0;
  for (double v : p.data()) sum2 += v * v;
  EXPECT_NEAR(sum2 / static_cast<double>(n * m), 1.0 / m, 0.15 / m);
}

TEST(ProjectionTest, PreservesNormsApproximately) {
  // JL property: ‖xP‖ ≈ ‖x‖ for a fixed sparse row x.
  random::Rng rng(5);
  const std::size_t n = 1000, m = 256;
  for (ProjectionKind kind :
       {ProjectionKind::kGaussian, ProjectionKind::kAchlioptas}) {
    const auto p = make_projection(n, m, kind, rng);
    std::vector<double> x(n, 0.0);
    for (std::size_t i = 0; i < 40; ++i) x[i * 25] = 1.0;  // ‖x‖ = √40
    const auto y = p.transpose_multiply_vector(x);
    EXPECT_NEAR(linalg::norm2(y), std::sqrt(40.0), 1.2)
        << to_string(kind);
  }
}

TEST(ProjectionTest, DeterministicGivenRngState) {
  random::Rng r1(9), r2(9);
  const auto p1 = gaussian_projection(50, 10, r1);
  const auto p2 = gaussian_projection(50, 10, r2);
  EXPECT_EQ(p1, p2);
}

TEST(ProjectionTest, InvalidDimensionsThrow) {
  random::Rng rng(1);
  EXPECT_THROW(gaussian_projection(0, 5, rng), std::invalid_argument);
  EXPECT_THROW(achlioptas_projection(5, 0, rng), std::invalid_argument);
}

TEST(ProjectionTest, ToStringNames) {
  EXPECT_EQ(to_string(ProjectionKind::kGaussian), "gaussian");
  EXPECT_EQ(to_string(ProjectionKind::kAchlioptas), "achlioptas");
}

}  // namespace
}  // namespace sgp::core
