#include "core/projection.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "linalg/vector_ops.hpp"
#include "util/errors.hpp"
#include "util/thread_pool.hpp"

namespace sgp::core {
namespace {

TEST(ProjectionTest, GaussianShapeAndScale) {
  random::Rng rng(1);
  const std::size_t n = 400, m = 100;
  const auto p = gaussian_projection(n, m, rng);
  EXPECT_EQ(p.rows(), n);
  EXPECT_EQ(p.cols(), m);
  // Entry variance should be 1/m.
  double sum2 = 0;
  for (double v : p.data()) sum2 += v * v;
  EXPECT_NEAR(sum2 / static_cast<double>(n * m), 1.0 / m, 0.1 / m);
}

TEST(ProjectionTest, GaussianRowNormsConcentrateAroundOne) {
  random::Rng rng(2);
  const auto p = gaussian_projection(200, 128, rng);
  for (std::size_t i = 0; i < p.rows(); ++i) {
    const double nrm = linalg::norm2(p.row(i));
    ASSERT_GT(nrm, 0.6) << "row " << i;
    ASSERT_LT(nrm, 1.5) << "row " << i;
  }
}

TEST(ProjectionTest, AchlioptasEntriesTernary) {
  random::Rng rng(3);
  const std::size_t m = 27;
  const auto p = achlioptas_projection(100, m, rng);
  const double mag = std::sqrt(3.0 / m);
  std::size_t zeros = 0;
  for (double v : p.data()) {
    ASSERT_TRUE(v == 0.0 || std::fabs(std::fabs(v) - mag) < 1e-12);
    if (v == 0.0) ++zeros;
  }
  // Two thirds should be zero.
  EXPECT_NEAR(static_cast<double>(zeros) / (100.0 * m), 2.0 / 3.0, 0.03);
}

TEST(ProjectionTest, AchlioptasUnitVarianceColumns) {
  random::Rng rng(4);
  const std::size_t n = 300, m = 64;
  const auto p = achlioptas_projection(n, m, rng);
  double sum2 = 0;
  for (double v : p.data()) sum2 += v * v;
  EXPECT_NEAR(sum2 / static_cast<double>(n * m), 1.0 / m, 0.15 / m);
}

TEST(ProjectionTest, PreservesNormsApproximately) {
  // JL property: ‖xP‖ ≈ ‖x‖ for a fixed sparse row x.
  random::Rng rng(5);
  const std::size_t n = 1000, m = 256;
  for (ProjectionKind kind :
       {ProjectionKind::kGaussian, ProjectionKind::kAchlioptas}) {
    const auto p = make_projection(n, m, kind, rng);
    std::vector<double> x(n, 0.0);
    for (std::size_t i = 0; i < 40; ++i) x[i * 25] = 1.0;  // ‖x‖ = √40
    const auto y = p.transpose_multiply_vector(x);
    EXPECT_NEAR(linalg::norm2(y), std::sqrt(40.0), 1.2)
        << to_string(kind);
  }
}

TEST(ProjectionTest, DeterministicGivenRngState) {
  random::Rng r1(9), r2(9);
  const auto p1 = gaussian_projection(50, 10, r1);
  const auto p2 = gaussian_projection(50, 10, r2);
  EXPECT_EQ(p1, p2);
}

TEST(ProjectionTest, InvalidDimensionsThrow) {
  random::Rng rng(1);
  EXPECT_THROW(gaussian_projection(0, 5, rng), std::invalid_argument);
  EXPECT_THROW(achlioptas_projection(5, 0, rng), std::invalid_argument);
}

TEST(ProjectionTest, ToStringNames) {
  EXPECT_EQ(to_string(ProjectionKind::kGaussian), "gaussian");
  EXPECT_EQ(to_string(ProjectionKind::kAchlioptas), "achlioptas");
}

TEST(ProjectionTest, UnknownKindIsInternalError) {
  random::Rng rng(1);
  EXPECT_THROW(make_projection(4, 2, static_cast<ProjectionKind>(99), rng),
               util::InternalError);
}

// achlioptas_projection writes only the non-zero entries and relies on
// DenseMatrix(n, m) zero-initializing the 2/3 that stay zero. Pin that
// contract explicitly so a future DenseMatrix change (e.g. uninitialized
// storage for speed) cannot silently corrupt projections.
TEST(ProjectionTest, DenseMatrixZeroInitBacksAchlioptasZeros) {
  const linalg::DenseMatrix fresh(17, 13);
  for (double v : fresh.data()) {
    ASSERT_EQ(v, 0.0);
  }
}

TEST(ProjectionTest, AchlioptasFrequenciesMatchOneSixthSplit) {
  random::Rng rng(11);
  const std::size_t n = 600, m = 100;
  const auto p = achlioptas_projection(n, m, rng);
  const double mag = std::sqrt(3.0 / m);
  std::size_t plus = 0, minus = 0, zero = 0;
  for (double v : p.data()) {
    if (v == 0.0) {
      ++zero;
    } else if (std::fabs(v - mag) < 1e-12) {
      ++plus;
    } else {
      ASSERT_NEAR(v, -mag, 1e-12);
      ++minus;
    }
  }
  const double total = static_cast<double>(n * m);
  EXPECT_NEAR(static_cast<double>(plus) / total, 1.0 / 6.0, 0.01);
  EXPECT_NEAR(static_cast<double>(minus) / total, 1.0 / 6.0, 0.01);
  EXPECT_NEAR(static_cast<double>(zero) / total, 2.0 / 3.0, 0.01);
}

// --- counter-based projection ---------------------------------------------

TEST(CounterProjectionTest, MatchesTileFillOnFullRange) {
  const std::size_t n = 60, m = 33;
  for (ProjectionKind kind :
       {ProjectionKind::kGaussian, ProjectionKind::kAchlioptas}) {
    const auto p = make_projection_counter(n, m, kind, 42);
    const random::CounterRng rng = projection_counter_rng(42);
    // Any sub-tile must reproduce the same entries bit-for-bit.
    std::vector<double> tile(20 * 7);
    fill_projection_tile(rng, m, kind, 30, 50, 5, 12, tile.data());
    for (std::size_t i = 0; i < 20; ++i) {
      for (std::size_t j = 0; j < 7; ++j) {
        ASSERT_EQ(tile[i * 7 + j], p(30 + i, 5 + j))
            << to_string(kind) << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(CounterProjectionTest, BitIdenticalAcrossThreadCounts) {
  // Generate the same projection through pools of 1, 2, and 8 workers by
  // tiling it with parallel_for; every tiling must agree bit-for-bit
  // because each entry is a pure function of (seed, i·m + j).
  const std::size_t n = 128, m = 48;
  const random::CounterRng rng = projection_counter_rng(7);
  const auto reference = make_projection_counter(n, m,
                                                 ProjectionKind::kGaussian, 7);
  for (std::size_t threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    linalg::DenseMatrix p(n, m);
    util::parallel_for(
        pool, 0, n,
        [&](std::size_t lo, std::size_t hi) {
          fill_projection_tile(rng, m, ProjectionKind::kGaussian, lo, hi, 0, m,
                               p.row(lo).data());
        },
        8);
    ASSERT_EQ(p, reference) << threads << " threads";
  }
}

TEST(CounterProjectionTest, GaussianStatisticsHold) {
  const std::size_t n = 400, m = 100;
  const auto p = make_projection_counter(n, m, ProjectionKind::kGaussian, 3);
  double sum2 = 0;
  for (double v : p.data()) sum2 += v * v;
  EXPECT_NEAR(sum2 / static_cast<double>(n * m), 1.0 / m, 0.1 / m);
}

TEST(CounterProjectionTest, AchlioptasStatisticsHold) {
  const std::size_t n = 400, m = 100;
  const auto p = make_projection_counter(n, m, ProjectionKind::kAchlioptas, 3);
  const double mag = std::sqrt(3.0 / m);
  std::size_t zeros = 0;
  for (double v : p.data()) {
    ASSERT_TRUE(v == 0.0 || std::fabs(std::fabs(v) - mag) < 1e-12);
    if (v == 0.0) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(n * m),
              2.0 / 3.0, 0.02);
}

TEST(CounterProjectionTest, SeedAndStreamSeparateGenerators) {
  EXPECT_EQ(projection_counter_rng(5), projection_counter_rng(5));
  EXPECT_NE(projection_counter_rng(5), projection_counter_rng(6));
  EXPECT_NE(projection_counter_rng(5), noise_counter_rng(5));
}

TEST(CounterProjectionTest, TileBoundsValidated) {
  const random::CounterRng rng = projection_counter_rng(1);
  std::vector<double> tile(16);
  EXPECT_THROW(
      fill_projection_tile(rng, 4, ProjectionKind::kGaussian, 0, 2, 3, 5,
                           tile.data()),
      std::invalid_argument);
  EXPECT_THROW(make_projection_counter(0, 4, ProjectionKind::kGaussian, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace sgp::core
