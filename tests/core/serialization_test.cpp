#include "core/serialization.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "graph/generators.hpp"

namespace sgp::core {
namespace {

PublishedGraph sample_release(ProjectionKind kind = ProjectionKind::kGaussian) {
  random::Rng rng(1);
  const auto g = graph::erdos_renyi(60, 0.2, rng);
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 20;
  opt.params = {1.5, 1e-6};
  opt.projection = kind;
  opt.seed = 9;
  return RandomProjectionPublisher(opt).publish(g);
}

TEST(SerializationTest, RoundTripPreservesEverything) {
  const auto original = sample_release();
  std::stringstream buffer;
  save_published(original, buffer);
  const auto loaded = load_published(buffer);
  EXPECT_EQ(loaded.num_nodes, original.num_nodes);
  EXPECT_EQ(loaded.projection_dim, original.projection_dim);
  EXPECT_DOUBLE_EQ(loaded.params.epsilon, original.params.epsilon);
  EXPECT_DOUBLE_EQ(loaded.params.delta, original.params.delta);
  EXPECT_DOUBLE_EQ(loaded.calibration.sigma, original.calibration.sigma);
  EXPECT_DOUBLE_EQ(loaded.calibration.sensitivity,
                   original.calibration.sensitivity);
  EXPECT_EQ(loaded.projection, original.projection);
  EXPECT_EQ(loaded.data, original.data);  // bit-exact payload
}

TEST(SerializationTest, AchlioptasKindRoundTrips) {
  const auto original = sample_release(ProjectionKind::kAchlioptas);
  std::stringstream buffer;
  save_published(original, buffer);
  EXPECT_EQ(load_published(buffer).projection, ProjectionKind::kAchlioptas);
}

TEST(SerializationTest, FileRoundTrip) {
  const auto original = sample_release();
  const std::string path = testing::TempDir() + "/sgp_release_test.bin";
  save_published_file(original, path);
  const auto loaded = load_published_file(path);
  EXPECT_EQ(loaded.data, original.data);
  std::remove(path.c_str());
}

TEST(SerializationTest, BadMagicThrows) {
  std::stringstream buffer("not-a-release\n");
  EXPECT_THROW(load_published(buffer), std::runtime_error);
}

TEST(SerializationTest, TruncatedHeaderThrows) {
  std::stringstream buffer("sgp-published-graph v1\nnodes 10 dim 5\n");
  EXPECT_THROW(load_published(buffer), std::runtime_error);
}

TEST(SerializationTest, TruncatedPayloadThrows) {
  const auto original = sample_release();
  std::stringstream buffer;
  save_published(original, buffer);
  std::string content = buffer.str();
  content.resize(content.size() - 64);  // chop part of the payload
  std::stringstream chopped(content);
  EXPECT_THROW(load_published(chopped), std::runtime_error);
}

TEST(SerializationTest, UnknownProjectionKindThrows) {
  std::stringstream buffer(
      "sgp-published-graph v1\n"
      "nodes 1 dim 1\n"
      "epsilon 1 delta 1e-6 sigma 2 sensitivity 1\n"
      "projection quantum\n"
      "data\n");
  EXPECT_THROW(load_published(buffer), std::runtime_error);
}

TEST(SerializationTest, V2HeaderRecordsProjectionRng) {
  const auto original = sample_release();
  std::stringstream buffer;
  save_published(original, buffer);
  const std::string text = buffer.str();
  EXPECT_NE(text.find("sgp-published-graph v2\n"), std::string::npos);
  EXPECT_NE(text.find("projection_rng counter-v1\n"), std::string::npos);
  std::stringstream reread(text);
  EXPECT_EQ(load_published(reread).projection_rng,
            ProjectionRngKind::kCounterV1);
}

// A v1 file (written before the counter-RNG format bump) has no
// projection_rng line; it must keep loading, tagged sequential-v0 so
// reconstruction regenerates its P with the legacy sequential Rng.
TEST(SerializationTest, LegacyV1FileLoadsAsSequential) {
  std::string payload(2 * 8, '\0');  // 1 node × 2 dims of zero doubles
  std::stringstream buffer(
      "sgp-published-graph v1\n"
      "nodes 1 dim 2\n"
      "epsilon 1 delta 1e-6 sigma 2 sensitivity 1\n"
      "projection gaussian\n"
      "data\n" +
      payload);
  const auto loaded = load_published(buffer);
  EXPECT_EQ(loaded.projection_rng, ProjectionRngKind::kSequentialLegacy);
  EXPECT_EQ(loaded.num_nodes, 1u);
  EXPECT_EQ(loaded.projection_dim, 2u);
}

TEST(SerializationTest, SequentialTagRoundTripsThroughV2) {
  auto original = sample_release();
  original.projection_rng = ProjectionRngKind::kSequentialLegacy;
  std::stringstream buffer;
  save_published(original, buffer);
  EXPECT_NE(buffer.str().find("projection_rng sequential-v0\n"),
            std::string::npos);
  EXPECT_EQ(load_published(buffer).projection_rng,
            ProjectionRngKind::kSequentialLegacy);
}

TEST(SerializationTest, UnknownProjectionRngThrows) {
  std::stringstream buffer(
      "sgp-published-graph v2\n"
      "nodes 1 dim 1\n"
      "epsilon 1 delta 1e-6 sigma 2 sensitivity 1\n"
      "projection gaussian\n"
      "projection_rng quantum\n"
      "data\n");
  EXPECT_THROW(load_published(buffer), std::runtime_error);
}

TEST(SerializationTest, V2MissingProjectionRngLineThrows) {
  std::stringstream buffer(
      "sgp-published-graph v2\n"
      "nodes 1 dim 1\n"
      "epsilon 1 delta 1e-6 sigma 2 sensitivity 1\n"
      "projection gaussian\n"
      "data\n");
  EXPECT_THROW(load_published(buffer), std::runtime_error);
}

TEST(StreamingPublishTest, ByteIdenticalToInMemoryPublish) {
  random::Rng rng(3);
  const auto g = graph::erdos_renyi(120, 0.1, rng);
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 30;
  opt.params = {2.0, 1e-6};
  opt.seed = 21;

  std::stringstream reference;
  save_published(RandomProjectionPublisher(opt).publish(g), reference);
  std::stringstream streamed;
  publish_to_stream(g, opt, streamed);
  EXPECT_EQ(streamed.str(), reference.str());
}

TEST(StreamingPublishTest, AchlioptasAlsoIdentical) {
  random::Rng rng(4);
  const auto g = graph::erdos_renyi(80, 0.15, rng);
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 16;
  opt.projection = ProjectionKind::kAchlioptas;
  opt.seed = 33;

  std::stringstream reference;
  save_published(RandomProjectionPublisher(opt).publish(g), reference);
  std::stringstream streamed;
  publish_to_stream(g, opt, streamed);
  EXPECT_EQ(streamed.str(), reference.str());
}

TEST(StreamingPublishTest, LoadableRoundTrip) {
  random::Rng rng(5);
  const auto g = graph::erdos_renyi(60, 0.2, rng);
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 12;
  std::stringstream streamed;
  publish_to_stream(g, opt, streamed);
  const auto loaded = load_published(streamed);
  EXPECT_EQ(loaded.num_nodes, 60u);
  EXPECT_EQ(loaded.projection_dim, 12u);
}

TEST(StreamingPublishTest, InvalidDimThrows) {
  const auto g = graph::Graph::from_edges(5, {});
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 10;
  std::stringstream out;
  EXPECT_THROW(publish_to_stream(g, opt, out), std::invalid_argument);
}

TEST(SerializationTest, MissingFileThrows) {
  EXPECT_THROW(load_published_file("/nonexistent/release.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace sgp::core
