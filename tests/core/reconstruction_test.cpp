#include "core/reconstruction.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/generators.hpp"

namespace sgp::core {
namespace {

struct Setup {
  graph::Graph g;
  PublishedGraph pub;
  linalg::DenseMatrix projection;
  std::uint64_t seed = 13;
};

Setup make_setup(double epsilon, std::size_t m = 128) {
  Setup s;
  random::Rng rng(2);
  s.g = graph::erdos_renyi(400, 0.08, rng);
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = m;
  opt.params = {epsilon, 1e-6};
  opt.seed = s.seed;
  s.pub = RandomProjectionPublisher(opt).publish(s.g);
  s.projection = regenerate_projection(s.pub, s.seed);
  return s;
}

TEST(ReconstructionTest, RegeneratedProjectionMatchesShape) {
  const auto s = make_setup(4.0);
  EXPECT_EQ(s.projection.rows(), 400u);
  EXPECT_EQ(s.projection.cols(), 128u);
}

TEST(ReconstructionTest, CounterReleaseRegeneratesExactProjection) {
  // A counter-v1 release round-trips: regenerate_projection must return the
  // exact P the fused publisher consumed, which by definition equals the
  // materialized counter projection for (seed, kind, n, m).
  const auto s = make_setup(4.0);
  ASSERT_EQ(s.pub.projection_rng, ProjectionRngKind::kCounterV1);
  const auto expected = make_projection_counter(
      s.pub.num_nodes, s.pub.projection_dim, s.pub.projection, s.seed);
  EXPECT_EQ(s.projection, expected);
}

TEST(ReconstructionTest, LegacyReleaseUsesSequentialRng) {
  // Releases loaded from v1 files carry the sequential-v0 tag; their P must
  // come from the old sequential generator, not the counter one.
  auto s = make_setup(4.0);
  s.pub.projection_rng = ProjectionRngKind::kSequentialLegacy;
  const auto legacy = regenerate_projection(s.pub, s.seed);
  random::Rng rng(s.seed);
  const auto expected = make_projection(s.pub.num_nodes, s.pub.projection_dim,
                                        s.pub.projection, rng);
  EXPECT_EQ(legacy, expected);
  EXPECT_NE(legacy, s.projection);  // the two families genuinely differ
}

TEST(ReconstructionTest, EdgeScoresSeparateEdgesFromNonEdges) {
  const auto s = make_setup(16.0);
  // Average score over true edges should clearly exceed non-edges.
  double edge_sum = 0;
  int edge_count = 0;
  for (const auto& e : s.g.edges()) {
    edge_sum += edge_score(s.pub, s.projection, e.u, e.v);
    if (++edge_count == 500) break;
  }
  double non_edge_sum = 0;
  int non_edge_count = 0;
  random::Rng rng(5);
  while (non_edge_count < 500) {
    const auto u = rng.next_below(400);
    const auto v = rng.next_below(400);
    if (u == v || s.g.has_edge(u, v)) continue;
    non_edge_sum += edge_score(s.pub, s.projection, u, v);
    ++non_edge_count;
  }
  const double edge_mean = edge_sum / edge_count;
  const double non_edge_mean = non_edge_sum / non_edge_count;
  EXPECT_GT(edge_mean, non_edge_mean + 0.3);
  EXPECT_NEAR(non_edge_mean, 0.0, 0.3);
}

TEST(ReconstructionTest, EdgeScoresBatchMatchesSingle) {
  const auto s = make_setup(8.0);
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs{
      {0, 1}, {5, 9}, {100, 200}};
  const auto batch = edge_scores(s.pub, s.projection, pairs);
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], edge_score(s.pub, s.projection, pairs[i].first,
                                          pairs[i].second));
  }
}

TEST(ReconstructionTest, EdgeScoreValidation) {
  const auto s = make_setup(4.0);
  EXPECT_THROW((void)edge_score(s.pub, s.projection, 400, 0),
               std::invalid_argument);
  const linalg::DenseMatrix wrong(10, 10);
  EXPECT_THROW((void)edge_score(s.pub, wrong, 0, 1), std::invalid_argument);
}

TEST(ReconstructionTest, EdgeCountEstimateNearTruth) {
  const auto s = make_setup(8.0);
  const double estimate = estimate_edge_count(s.pub);
  const double truth = static_cast<double>(s.g.num_edges());
  // JL + noise variance: allow 15% relative error.
  EXPECT_NEAR(estimate, truth, 0.15 * truth);
}

TEST(ReconstructionTest, EdgeCountImprovesWithEpsilon) {
  // Average absolute error over seeds should not grow with epsilon; compare
  // a starving budget against a generous one.
  double err_low = 0, err_high = 0;
  for (std::uint64_t trial = 0; trial < 3; ++trial) {
    random::Rng rng(100 + trial);
    const auto g = graph::erdos_renyi(300, 0.1, rng);
    for (double eps : {0.2, 8.0}) {
      RandomProjectionPublisher::Options opt;
      opt.projection_dim = 100;
      opt.params = {eps, 1e-6};
      opt.seed = trial * 3 + 1;
      const auto pub = RandomProjectionPublisher(opt).publish(g);
      const double err = std::fabs(estimate_edge_count(pub) -
                                   static_cast<double>(g.num_edges()));
      (eps < 1.0 ? err_low : err_high) += err;
    }
  }
  EXPECT_GT(err_low, err_high);
}

TEST(ReconstructionTest, DegreeHistogramConcentratesAroundTrueDegrees) {
  const auto s = make_setup(16.0);
  // ER(400, 0.08): degrees ~ Binomial(399, 0.08), mean ≈ 32.
  const auto hist = estimate_degree_histogram(s.pub, 10.0, 10);
  std::size_t total = 0;
  for (std::size_t c : hist) total += c;
  EXPECT_EQ(total, 400u);
  // Most mass should be in bins [2,5] (degrees 20..50).
  const std::size_t central = hist[2] + hist[3] + hist[4];
  EXPECT_GT(central, 250u);
}

TEST(ReconstructionTest, DegreeHistogramValidation) {
  const auto s = make_setup(4.0);
  EXPECT_THROW((void)estimate_degree_histogram(s.pub, 0.0, 5),
               std::invalid_argument);
  EXPECT_THROW((void)estimate_degree_histogram(s.pub, 1.0, 0),
               std::invalid_argument);
}

TEST(PublishMatrixTest, WeightedMatrixScalesSensitivity) {
  random::Rng rng(7);
  const auto g = graph::erdos_renyi(100, 0.1, rng);
  // Weighted interaction matrix: each edge with weight 3.
  std::vector<linalg::Triplet> trips;
  for (const auto& e : g.edges()) {
    trips.push_back({e.u, e.v, 3.0});
    trips.push_back({e.v, e.u, 3.0});
  }
  const auto w = linalg::CsrMatrix::from_triplets(100, 100, trips);

  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 30;
  opt.params = {1.0, 1e-6};
  const RandomProjectionPublisher publisher(opt);
  const auto unit = publisher.publish(g);
  const auto weighted = publisher.publish_matrix(w, 3.0);
  EXPECT_NEAR(weighted.calibration.sigma, 3.0 * unit.calibration.sigma,
              1e-9);
  EXPECT_NEAR(weighted.calibration.sensitivity,
              3.0 * unit.calibration.sensitivity, 1e-9);
}

TEST(PublishMatrixTest, UnitAdjacencyMatchesGraphPublish) {
  random::Rng rng(8);
  const auto g = graph::erdos_renyi(80, 0.15, rng);
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 20;
  opt.seed = 3;
  const RandomProjectionPublisher publisher(opt);
  const auto via_graph = publisher.publish(g);
  const auto via_matrix = publisher.publish_matrix(g.adjacency_matrix(), 1.0);
  EXPECT_EQ(via_graph.data, via_matrix.data);
}

TEST(PublishMatrixTest, Validation) {
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 5;
  const RandomProjectionPublisher publisher(opt);
  const auto rect = linalg::CsrMatrix::from_triplets(4, 6, {});
  EXPECT_THROW((void)publisher.publish_matrix(rect, 1.0),
               std::invalid_argument);
  const auto square = linalg::CsrMatrix::from_triplets(6, 6, {});
  EXPECT_THROW((void)publisher.publish_matrix(square, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace sgp::core
