#include "core/stats_publisher.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace sgp::core {
namespace {

graph::Graph triangle_chain() {
  // Two triangles sharing node 2: 0-1-2 and 2-3-4.
  return graph::Graph::from_edges(
      5, std::vector<graph::Edge>{
             {0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}});
}

TEST(DpEdgeCountTest, CentersOnTruth) {
  random::Rng rng(1);
  const auto g = triangle_chain();
  double sum = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    sum += dp_edge_count(g, 1.0, rng).value;
  }
  EXPECT_NEAR(sum / trials, 6.0, 0.05);
}

TEST(DpEdgeCountTest, ScaleMatchesEpsilon) {
  random::Rng rng(2);
  const auto g = triangle_chain();
  EXPECT_DOUBLE_EQ(dp_edge_count(g, 0.5, rng).laplace_scale, 2.0);
  EXPECT_DOUBLE_EQ(dp_edge_count(g, 2.0, rng).laplace_scale, 0.5);
}

TEST(DpEdgeCountTest, NoiseVarianceMatchesLaplace) {
  random::Rng rng(3);
  const auto g = triangle_chain();
  const double eps = 1.0;
  double sum = 0, sum2 = 0;
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    const double v = dp_edge_count(g, eps, rng).value;
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / trials;
  const double var = sum2 / trials - mean * mean;
  EXPECT_NEAR(var, 2.0, 0.2);  // Var(Laplace(1)) = 2b² = 2
}

TEST(DpAverageDegreeTest, PostProcessesEdgeCount) {
  random::Rng rng(4);
  const auto g = triangle_chain();  // avg degree 12/5 = 2.4
  double sum = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    sum += dp_average_degree(g, 1.0, rng).value;
  }
  EXPECT_NEAR(sum / trials, 2.4, 0.05);
}

TEST(DpAverageDegreeTest, EmptyGraphThrows) {
  random::Rng rng(5);
  EXPECT_THROW((void)dp_average_degree(graph::Graph(), 1.0, rng),
               std::invalid_argument);
}

TEST(DpDegreeHistogramTest, CentersOnTruthPerBin) {
  random::Rng rng(6);
  const auto g = triangle_chain();  // degrees: 2,2,4,2,2
  std::vector<double> acc(5, 0.0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const auto h = dp_degree_histogram(g, 2.0, 4, rng);
    ASSERT_EQ(h.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) acc[i] += h[i];
  }
  EXPECT_NEAR(acc[2] / trials, 4.0, 0.2);
  EXPECT_NEAR(acc[4] / trials, 1.0, 0.2);
  EXPECT_NEAR(acc[0] / trials, 0.0, 0.2);
}

TEST(DpDegreeHistogramTest, TruncatesIntoLastBin) {
  random::Rng rng(7);
  const auto g = triangle_chain();  // node 2 has degree 4
  std::vector<double> acc(3, 0.0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const auto h = dp_degree_histogram(g, 2.0, 2, rng);  // bins 0,1,2+
    for (std::size_t i = 0; i < 3; ++i) acc[i] += h[i];
  }
  // Bin 2+ holds the four degree-2 nodes and the degree-4 node.
  EXPECT_NEAR(acc[2] / trials, 5.0, 0.2);
}

TEST(DpDegreeHistogramTest, InvalidEpsilonThrows) {
  random::Rng rng(8);
  EXPECT_THROW(dp_degree_histogram(triangle_chain(), 0.0, 4, rng),
               std::invalid_argument);
}

TEST(DpTriangleCountTest, CentersOnTruth) {
  random::Rng rng(9);
  const auto g = triangle_chain();  // 2 triangles
  double sum = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    sum += dp_triangle_count(g, 1.0, 4, rng).value;
  }
  EXPECT_NEAR(sum / trials, 2.0, 0.15);
}

TEST(DpTriangleCountTest, ScaleUsesDegreeBound) {
  random::Rng rng(10);
  const auto g = triangle_chain();
  EXPECT_DOUBLE_EQ(dp_triangle_count(g, 1.0, 4, rng).laplace_scale, 3.0);
  EXPECT_DOUBLE_EQ(dp_triangle_count(g, 3.0, 10, rng).laplace_scale, 3.0);
}

TEST(DpTriangleCountTest, ViolatedBoundThrows) {
  random::Rng rng(11);
  const auto g = triangle_chain();  // max degree 4
  EXPECT_THROW((void)dp_triangle_count(g, 1.0, 3, rng),
               std::invalid_argument);
  EXPECT_THROW((void)dp_triangle_count(g, 1.0, 1, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace sgp::core
