// BudgetLedger: durable round trips, and rejection of every corruption the
// write-ahead format is designed to detect (truncation, bit flips, version
// skew, reordering).
#include "core/ledger.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/errors.hpp"
#include "util/fault_injection.hpp"

namespace sgp::core {
namespace {

class LedgerTest : public testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/sgp_ledger_test_" +
            testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".ledger";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    util::disarm_all_faults();
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  std::string read_file() const {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }
  void write_file(const std::string& content) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << content;
  }

  std::string path_;
};

BudgetLedger::Record record(std::uint64_t index) {
  return {index, 0.25, 1e-7, 2.125 + static_cast<double>(index), 1.0};
}

TEST_F(LedgerTest, MissingFileIsEmptyLedger) {
  const BudgetLedger ledger(path_);
  EXPECT_EQ(ledger.size(), 0u);
}

TEST_F(LedgerTest, RoundTripPreservesRecordsExactly) {
  {
    BudgetLedger ledger(path_);
    for (std::uint64_t i = 1; i <= 3; ++i) ledger.append(record(i));
  }
  const BudgetLedger reloaded(path_);
  ASSERT_EQ(reloaded.size(), 3u);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    const auto& r = reloaded.records()[i - 1];
    EXPECT_EQ(r.index, i);
    EXPECT_DOUBLE_EQ(r.epsilon, 0.25);
    EXPECT_DOUBLE_EQ(r.delta, 1e-7);
    EXPECT_DOUBLE_EQ(r.sigma, 2.125 + static_cast<double>(i));
    EXPECT_DOUBLE_EQ(r.sensitivity, 1.0);
  }
}

TEST_F(LedgerTest, AppendSurvivesReopenBetweenEveryRecord) {
  for (std::uint64_t i = 1; i <= 4; ++i) {
    BudgetLedger ledger(path_);
    ASSERT_EQ(ledger.size(), i - 1);
    ledger.append(record(i));
  }
  EXPECT_EQ(BudgetLedger(path_).size(), 4u);
}

TEST_F(LedgerTest, TruncatedRecordRejected) {
  {
    BudgetLedger ledger(path_);
    ledger.append(record(1));
    ledger.append(record(2));
  }
  const std::string content = read_file();
  // Cut into the middle of the last record (simulating a torn write from a
  // non-atomic writer or a damaged disk).
  write_file(content.substr(0, content.size() - 12));
  EXPECT_THROW(BudgetLedger{path_}, util::LedgerCorruptError);
}

TEST_F(LedgerTest, BitFlipRejected) {
  {
    BudgetLedger ledger(path_);
    ledger.append(record(1));
  }
  std::string content = read_file();
  // Flip one digit inside the sigma value of the record line.
  const auto at = content.find("3.125");
  ASSERT_NE(at, std::string::npos);
  content[at] = '9';
  write_file(content);
  EXPECT_THROW(BudgetLedger{path_}, util::LedgerCorruptError);
}

TEST_F(LedgerTest, VersionMismatchRejected) {
  {
    BudgetLedger ledger(path_);
    ledger.append(record(1));
  }
  std::string content = read_file();
  const auto at = content.find("v1");
  ASSERT_NE(at, std::string::npos);
  content[at + 1] = '2';
  write_file(content);
  EXPECT_THROW(BudgetLedger{path_}, util::LedgerCorruptError);
}

TEST_F(LedgerTest, GarbageFileRejected) {
  write_file("not a ledger at all\n");
  EXPECT_THROW(BudgetLedger{path_}, util::LedgerCorruptError);
}

TEST_F(LedgerTest, EmptyFileRejected) {
  write_file("");
  EXPECT_THROW(BudgetLedger{path_}, util::LedgerCorruptError);
}

TEST_F(LedgerTest, DuplicatedRecordLineRejected) {
  {
    BudgetLedger ledger(path_);
    ledger.append(record(1));
  }
  std::string content = read_file();
  // Replay the (checksum-valid) record line: index sequence check must fire.
  const auto nl = content.find('\n');
  const std::string record_line = content.substr(nl + 1);
  write_file(content + record_line);
  EXPECT_THROW(BudgetLedger{path_}, util::LedgerCorruptError);
}

TEST_F(LedgerTest, OutOfOrderIndexRejectedOnAppend) {
  BudgetLedger ledger(path_);
  ledger.append(record(1));
  EXPECT_THROW(ledger.append(record(3)), std::invalid_argument);
}

TEST_F(LedgerTest, FailedAppendLeavesFileUntouched) {
  {
    BudgetLedger ledger(path_);
    ledger.append(record(1));
  }
  const std::string before = read_file();
  util::arm_fault("ledger.append");
  {
    BudgetLedger ledger(path_);
    EXPECT_THROW(ledger.append(record(2)), util::IoError);
    EXPECT_EQ(ledger.size(), 1u) << "failed append must not count in memory";
  }
  util::disarm_all_faults();
  EXPECT_EQ(read_file(), before);
  EXPECT_EQ(BudgetLedger(path_).size(), 1u);
}

}  // namespace
}  // namespace sgp::core
