// Deep statistical suite: the fast guardrails from
// tests/dp/noise_statistics_test.cpp re-run at ~50× the sample size, where
// the goodness-of-fit tests have real power against subtle distributional
// drift (a biased Box–Muller tail, a correlated counter stream). Runs under
// the `slow` ctest configuration only (`ctest -C slow -L slow`). All seeds
// are fixed, so the statistics are constants of the build and the critical
// values cannot flake.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "core/projection.hpp"
#include "core/serialization.hpp"
#include "graph/generators.hpp"
#include "random/counter_rng.hpp"
#include "random/counter_rng_simd.hpp"
#include "random/kernel_variant.hpp"
#include "random/rng.hpp"
#include "../dp/stat_utils.hpp"
#include "../scenario/test_axes.hpp"

namespace sgp::core {
namespace {

using namespace sgp::test_axes;  // NOLINT: axis accessors for SGP_PICK

// P[sqrt(n)·D > 1.95] ≈ 0.001 under H0 (Kolmogorov distribution).
constexpr double kKsCritical = 1.95;
// chi-square, 63 dof: P[X > 103.4] ≈ 0.001.
constexpr std::size_t kChiBins = 64;
constexpr double kChiCritical = 103.4;

TEST(DeepNoiseStatistics, MillionSampleStreamIsStandardNormal) {
  const std::size_t n = 1'000'000;
  const random::CounterRng noise = noise_counter_rng(/*seed=*/20260807);
  std::vector<double> samples(n);
  for (std::size_t t = 0; t < n; ++t) samples[t] = noise.normal(t);

  const double ks = test_stats::ks_statistic_normal(samples);
  EXPECT_LT(std::sqrt(static_cast<double>(n)) * ks, kKsCritical);
  EXPECT_LT(test_stats::chi_square_normal(samples, kChiBins), kChiCritical);

  const auto m = test_stats::moments(samples);
  EXPECT_NEAR(m.mean, 0.0, 0.004);
  EXPECT_NEAR(m.variance, 1.0, 0.006);
  EXPECT_NEAR(m.kurtosis, 3.0, 0.02);
}

TEST(DeepNoiseStatistics, DisjointCounterWindowsAreUncorrelated) {
  // Shard boundaries split the counter space into windows; any correlation
  // between windows would make shard-local noise distinguishable from the
  // in-memory stream's. Check lag correlations across a window boundary.
  const std::size_t n = 500'000;
  const random::CounterRng noise = noise_counter_rng(/*seed=*/5);
  std::uint64_t lag = 0;
  SGP_PICK(noise_lags, lag) {
    double corr = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      corr += noise.normal(t) * noise.normal(t + lag);
    }
    corr /= static_cast<double>(n);
    EXPECT_NEAR(corr, 0.0, 0.006) << "lag " << lag;
  }
}

TEST(DeepNoiseStatistics, MillionSamplePolynomialKernelIsStandardNormal) {
  // Same depth as the scalar million-sample test, but through the batch
  // polynomial kernel — the distribution of the vectorized normal mapping
  // must be indistinguishable from N(0,1) at a sample size where even a
  // 1e-3 CDF distortion (a sloppy polynomial, a biased tail) is fatal.
  const std::size_t n = 1'000'000;
  const random::CounterRng noise = noise_counter_rng(/*seed=*/20260807);
  random::KernelVariant kernel = random::KernelVariant::kGeneric;
  SGP_PICK(poly_kernel_variants, kernel) {
    if (!random::kernel_supported(kernel)) continue;
    std::vector<double> samples(n);
    random::normal_batch(noise, 0, n, samples.data(), kernel);

    const double ks = test_stats::ks_statistic_normal(samples);
    EXPECT_LT(std::sqrt(static_cast<double>(n)) * ks, kKsCritical)
        << "variant " << SGP_PICK_LABEL(kernel);
    EXPECT_LT(test_stats::chi_square_normal(samples, kChiBins), kChiCritical)
        << "variant " << SGP_PICK_LABEL(kernel);

    const auto m = test_stats::moments(samples);
    EXPECT_NEAR(m.mean, 0.0, 0.004) << "variant " << SGP_PICK_LABEL(kernel);
    EXPECT_NEAR(m.variance, 1.0, 0.006)
        << "variant " << SGP_PICK_LABEL(kernel);
    EXPECT_NEAR(m.kurtosis, 3.0, 0.02)
        << "variant " << SGP_PICK_LABEL(kernel);
  }
}

TEST(DeepNoiseStatistics, MillionSamplePolynomialTracksScalarElementwise) {
  // The |poly − libm| ≤ 1e-12 elementwise contract, at depth: a million
  // counters cover the polynomial's whole practical input range (uniforms
  // down to ~1e-6, angles across all quadrants).
  const std::size_t n = 1'000'000;
  const random::CounterRng noise = noise_counter_rng(/*seed=*/31337);
  std::vector<double> scalar(n);
  std::vector<double> poly(n);
  random::normal_batch(noise, 0, n, scalar.data(),
                       random::KernelVariant::kScalar);
  random::normal_batch(noise, 0, n, poly.data(),
                       random::KernelVariant::kGeneric);
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double abs_err = std::abs(poly[i] - scalar[i]);
    const double scale = std::max(std::abs(poly[i]), std::abs(scalar[i]));
    worst = std::max(worst, scale > 0.0 ? std::min(abs_err, abs_err / scale)
                                        : abs_err);
  }
  EXPECT_LT(worst, 1e-12);
}

TEST(DeepProjectionStatistics, GaussianTileMillionEntries) {
  const std::size_t rows = 5000, m = 200;
  const linalg::DenseMatrix p = make_projection_counter(
      rows, m, ProjectionKind::kGaussian, /*seed=*/13);
  std::vector<double> scaled;
  scaled.reserve(rows * m);
  const double root_m = std::sqrt(static_cast<double>(m));
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < m; ++j) scaled.push_back(p(i, j) * root_m);
  }
  const double ks = test_stats::ks_statistic_normal(scaled);
  EXPECT_LT(std::sqrt(static_cast<double>(scaled.size())) * ks, kKsCritical);
  EXPECT_LT(test_stats::chi_square_normal(scaled, kChiBins), kChiCritical);
  const auto mom = test_stats::moments(scaled);
  EXPECT_NEAR(mom.variance, 1.0, 0.01);
  EXPECT_NEAR(mom.kurtosis, 3.0, 0.02);
}

TEST(DeepProjectionStatistics, AchlioptasFrequenciesAtMillionEntries) {
  const std::size_t rows = 5000, m = 200;
  const linalg::DenseMatrix p = make_projection_counter(
      rows, m, ProjectionKind::kAchlioptas, /*seed=*/13);
  const double scale = std::sqrt(3.0 / static_cast<double>(m));
  std::size_t zero = 0, pos = 0, neg = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const double v = p(i, j);
      if (v == 0.0) {
        ++zero;
      } else if (v == scale) {
        ++pos;
      } else {
        ASSERT_EQ(v, -scale);
        ++neg;
      }
    }
  }
  const double total = static_cast<double>(rows * m);
  // 5σ bands at 1e6 samples: σ(2/3) ≈ 4.7e-4, σ(1/6) ≈ 3.7e-4.
  EXPECT_NEAR(static_cast<double>(zero) / total, 2.0 / 3.0, 0.0024);
  EXPECT_NEAR(static_cast<double>(pos) / total, 1.0 / 6.0, 0.0019);
  EXPECT_NEAR(static_cast<double>(neg) / total, 1.0 / 6.0, 0.0019);
}

TEST(DeepResidualStatistics, LargeReleaseResidualIsCalibratedNoise) {
  random::Rng rng(17);
  const graph::Graph g = graph::barabasi_albert(1200, 8, rng);
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = 96;
  opt.seed = 424242;

  std::ostringstream stream(std::ios::binary);
  publish_to_stream(g, opt, stream);
  std::istringstream in(stream.str(), std::ios::binary);
  const PublishedGraph pub = load_published(in);

  const linalg::DenseMatrix p = make_projection_counter(
      g.num_nodes(), opt.projection_dim, opt.projection, opt.seed);
  const linalg::DenseMatrix y = g.adjacency_matrix().multiply_dense(p);

  std::vector<double> residuals;
  residuals.reserve(g.num_nodes() * opt.projection_dim);
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    for (std::size_t j = 0; j < opt.projection_dim; ++j) {
      residuals.push_back((pub.data(i, j) - y(i, j)) / pub.calibration.sigma);
    }
  }
  const double ks = test_stats::ks_statistic_normal(residuals);
  EXPECT_LT(std::sqrt(static_cast<double>(residuals.size())) * ks,
            kKsCritical);
  EXPECT_LT(test_stats::chi_square_normal(residuals, kChiBins), kChiCritical);
}

}  // namespace
}  // namespace sgp::core
