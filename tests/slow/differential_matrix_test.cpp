// The full differential matrix from docs/scaling.md: sharded publishing is
// byte-identical to the in-memory publish_to_stream reference across shard
// heights {1, 7, 64, n} × thread counts {1, 2, 8}, on a graph big enough
// that every shard height produces multiple shards with ragged tails. Runs
// under the `slow` ctest configuration only (`ctest -C slow -L slow`);
// tests/core/sharded_publish_test.cpp keeps a fast slice in the default run.
//
// The matrix axes are SGP_PARAMETERIZE declarations shared through
// tests/scenario/test_axes.hpp; tests/scenario/migration_pin_test.cpp pins
// their cell counts to the hand-rolled loops this file replaced.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/distributed_publish.hpp"
#include "core/serialization.hpp"
#include "core/sharded_publish.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "random/kernel_variant.hpp"
#include "random/rng.hpp"

#include "../scenario/test_axes.hpp"

namespace sgp::core {
namespace {

using namespace sgp::test_axes;  // NOLINT: axis accessors for SGP_PICK

constexpr std::size_t kNodes = kDiffNodes;
constexpr std::size_t kDim = 48;

RandomProjectionPublisher::Options publish_options() {
  RandomProjectionPublisher::Options opt;
  opt.projection_dim = kDim;
  opt.seed = 20260807;
  return opt;
}

graph::Graph matrix_graph() {
  random::Rng rng(53);
  return graph::barabasi_albert(kNodes, 6, rng);
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// One shared graph + reference release for the whole shard×thread product:
// building them once keeps the 12-cell sweep at seconds instead of minutes.
TEST(DifferentialMatrix, ShardedBytesEqualInMemoryReference) {
  const std::string edges_path =
      testing::TempDir() + "/sgp_diff_matrix.edges";
  const graph::Graph g = matrix_graph();
  graph::write_edge_list_file(g, edges_path);
  std::ostringstream out(std::ios::binary);
  publish_to_stream(g, publish_options(), out);
  const std::string reference = out.str();

  std::size_t shard_rows = 0;
  std::size_t threads = 0;
  SGP_PICK(diff_shard_rows, shard_rows)
  SGP_PICK(diff_threads, threads) {
    const std::string out_path =
        testing::TempDir() + "/sgp_diff_s" + std::to_string(shard_rows) +
        "_t" + std::to_string(threads) + ".bin";
    graph::EdgeListShardReader reader(edges_path, graph::IdPolicy::kPreserve);
    ShardedPublishOptions opt;
    opt.publish = publish_options();
    opt.shard_rows = shard_rows;
    opt.threads = threads;
    const ShardedPublishResult result = publish_sharded(reader, opt, out_path);
    EXPECT_EQ(result.num_nodes, kNodes);
    EXPECT_FALSE(std::filesystem::exists(out_path + ".ckpt"));
    EXPECT_EQ(file_bytes(out_path), reference)
        << "byte drift at shard_rows=" << SGP_PICK_LABEL(shard_rows)
        << " threads=" << SGP_PICK_LABEL(threads);
    std::remove(out_path.c_str());
  }
  std::remove(edges_path.c_str());
}

// Process axis of the matrix: the distributed coordinator/worker path over
// {1, 2, 4} worker processes must stay byte-identical to the in-memory
// reference on the same graph. Worker processes are real sgp_publish
// children (SGP_PUBLISH_BIN), so this also exercises the lease protocol at
// a size where every worker owns many shards.
TEST(DifferentialMatrix, DistributedBytesEqualInMemoryReference) {
  const std::string edges_path =
      testing::TempDir() + "/sgp_diff_dist.edges";
  const graph::Graph g = matrix_graph();
  graph::write_edge_list_file(g, edges_path);
  std::ostringstream ref(std::ios::binary);
  publish_to_stream(g, publish_options(), ref);

  std::size_t workers = 0;
  SGP_PICK(diff_workers, workers) {
    const std::string out_path = testing::TempDir() + "/sgp_diff_dist_p" +
                                 std::to_string(workers) + ".bin";
    graph::EdgeListShardReader reader(edges_path, graph::IdPolicy::kPreserve);
    DistributedPublishOptions opt;
    opt.sharded.publish = publish_options();
    opt.sharded.shard_rows = 64;
    opt.sharded.threads = 2;
    opt.workers = workers;
    opt.worker_program = SGP_PUBLISH_BIN;
    opt.edges_path = edges_path;
    opt.id_policy = graph::IdPolicy::kPreserve;
    const DistributedPublishResult result =
        publish_distributed(reader, opt, out_path);
    EXPECT_EQ(result.num_nodes, kNodes);
    EXPECT_EQ(result.workers_lost, 0u);
    EXPECT_EQ(file_bytes(out_path), ref.str())
        << "byte drift at workers=" << SGP_PICK_LABEL(workers);
    std::remove(out_path.c_str());
  }
  std::remove(edges_path.c_str());
}

// Kernel axis of the matrix (docs/scaling.md): for each kernel variant, the
// sharded path across shard heights × thread counts must equal that
// variant's own in-memory streaming reference. Unsupported variants skip
// (the build/CPU may lack an ISA); scalar and generic always run.
TEST(DifferentialMatrix, ShardedBytesEqualStreamingReferencePerKernel) {
  const std::string edges_path =
      testing::TempDir() + "/sgp_diff_kernel.edges";
  const graph::Graph g = matrix_graph();
  graph::write_edge_list_file(g, edges_path);

  random::KernelVariant kernel = random::KernelVariant::kScalar;
  std::size_t shard_rows = 0;
  std::size_t threads = 0;
  SGP_PICK(kernel_variants, kernel)
  SGP_PICK(kernel_matrix_shard_rows, shard_rows)
  SGP_PICK(kernel_matrix_threads, threads) {
    if (!random::kernel_supported(kernel)) continue;
    RandomProjectionPublisher::Options popt = publish_options();
    popt.kernel = kernel;
    std::ostringstream ref(std::ios::binary);
    publish_to_stream(g, popt, ref);

    const std::string out_path =
        testing::TempDir() + "/sgp_diff_k" + SGP_PICK_LABEL(kernel) + "_s" +
        std::to_string(shard_rows) + "_t" + std::to_string(threads) + ".bin";
    graph::EdgeListShardReader reader(edges_path, graph::IdPolicy::kPreserve);
    ShardedPublishOptions opt;
    opt.publish = popt;
    opt.shard_rows = shard_rows;
    opt.threads = threads;
    publish_sharded(reader, opt, out_path);
    EXPECT_EQ(file_bytes(out_path), ref.str())
        << "byte drift at kernel=" << SGP_PICK_LABEL(kernel)
        << " shard_rows=" << SGP_PICK_LABEL(shard_rows)
        << " threads=" << SGP_PICK_LABEL(threads);
    std::remove(out_path.c_str());
  }
  std::remove(edges_path.c_str());
}

// The compact-id remap must survive the matrix too: shard loading under
// kCompact re-resolves ids through the persistent remap, so a sparse messy
// id space is where an ordering bug would surface.
TEST(DifferentialMatrix, SparseIdsByteIdenticalAcrossShardSizes) {
  const std::string edges =
      testing::TempDir() + "/sgp_diff_compact.edges";
  {
    std::ofstream out(edges);
    random::Rng rng(71);
    const graph::Graph g = graph::erdos_renyi(300, 0.03, rng);
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
      for (const auto v : g.neighbors(u)) {
        if (u < v) out << u * 13 + 5 << '\t' << v * 13 + 5 << '\n';
      }
    }
  }
  RandomProjectionPublisher::Options popt;
  popt.projection_dim = 24;
  popt.seed = 99;

  const graph::Graph g =
      graph::read_edge_list_file(edges, graph::IdPolicy::kCompact);
  std::ostringstream ref(std::ios::binary);
  publish_to_stream(g, popt, ref);

  graph::EdgeListShardReader reader(edges, graph::IdPolicy::kCompact);
  std::size_t shard_rows = 0;
  SGP_PICK(compact_shard_rows, shard_rows) {
    const std::string out_path = testing::TempDir() + "/sgp_diff_compact_" +
                                 std::to_string(shard_rows) + ".bin";
    ShardedPublishOptions opt;
    opt.publish = popt;
    opt.shard_rows = shard_rows;
    opt.threads = 4;
    publish_sharded(reader, opt, out_path);
    EXPECT_EQ(file_bytes(out_path), ref.str())
        << "shard_rows=" << SGP_PICK_LABEL(shard_rows);
    std::remove(out_path.c_str());
  }
  std::remove(edges.c_str());
}

}  // namespace
}  // namespace sgp::core
