// The full differential matrix from docs/scaling.md: sharded publishing is
// byte-identical to the in-memory publish_to_stream reference across shard
// heights {1, 7, 64, n} × thread counts {1, 2, 8}, on a graph big enough
// that every shard height produces multiple shards with ragged tails. Runs
// under the `slow` ctest configuration only (`ctest -C slow -L slow`);
// tests/core/sharded_publish_test.cpp keeps a fast slice in the default run.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>

#include "core/distributed_publish.hpp"
#include "core/serialization.hpp"
#include "core/sharded_publish.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "random/kernel_variant.hpp"
#include "random/rng.hpp"

namespace sgp::core {
namespace {

constexpr std::size_t kNodes = 700;
constexpr std::size_t kDim = 48;

// One shared graph + reference release for the whole matrix: building them
// once keeps the 12-cell sweep at seconds instead of minutes.
class DifferentialMatrixTest
    : public testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
 protected:
  static void SetUpTestSuite() {
    edges_path_ = new std::string(testing::TempDir() +
                                  "/sgp_diff_matrix.edges");
    random::Rng rng(53);
    const graph::Graph g = graph::barabasi_albert(kNodes, 6, rng);
    graph::write_edge_list_file(g, *edges_path_);

    std::ostringstream out(std::ios::binary);
    publish_to_stream(g, options(), out);
    reference_ = new std::string(out.str());
  }

  static void TearDownTestSuite() {
    std::remove(edges_path_->c_str());
    delete edges_path_;
    delete reference_;
    edges_path_ = nullptr;
    reference_ = nullptr;
  }

  static RandomProjectionPublisher::Options options() {
    RandomProjectionPublisher::Options opt;
    opt.projection_dim = kDim;
    opt.seed = 20260807;
    return opt;
  }

  static std::string* edges_path_;
  static std::string* reference_;
};

std::string* DifferentialMatrixTest::edges_path_ = nullptr;
std::string* DifferentialMatrixTest::reference_ = nullptr;

TEST_P(DifferentialMatrixTest, ShardedBytesEqualInMemoryReference) {
  const auto [shard_rows, threads] = GetParam();
  const std::string out_path =
      testing::TempDir() + "/sgp_diff_s" + std::to_string(shard_rows) + "_t" +
      std::to_string(threads) + ".bin";

  graph::EdgeListShardReader reader(*edges_path_, graph::IdPolicy::kPreserve);
  ShardedPublishOptions opt;
  opt.publish = options();
  opt.shard_rows = shard_rows;
  opt.threads = threads;
  const ShardedPublishResult result = publish_sharded(reader, opt, out_path);
  EXPECT_EQ(result.num_nodes, kNodes);
  EXPECT_FALSE(std::filesystem::exists(out_path + ".ckpt"));

  std::ifstream in(out_path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), *reference_)
      << "byte drift at shard_rows=" << shard_rows << " threads=" << threads;
  std::remove(out_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    FullMatrix, DifferentialMatrixTest,
    testing::Combine(
        // Shard heights from the issue's matrix: row-per-shard, ragged odd
        // size, a round block, and single-shard (= the whole graph).
        testing::Values(std::size_t{1}, std::size_t{7}, std::size_t{64},
                        kNodes),
        testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{8})),
    [](const auto& info) {
      return "shard" + std::to_string(std::get<0>(info.param)) + "_threads" +
             std::to_string(std::get<1>(info.param));
    });

// Process axis of the matrix: the distributed coordinator/worker path over
// {1, 2, 4} worker processes must stay byte-identical to the in-memory
// reference on the same graph. Worker processes are real sgp_publish
// children (SGP_PUBLISH_BIN), so this also exercises the lease protocol at
// a size where every worker owns many shards.
class DistributedMatrixTest : public testing::TestWithParam<std::size_t> {};

TEST_P(DistributedMatrixTest, DistributedBytesEqualInMemoryReference) {
  const std::size_t workers = GetParam();
  const std::string edges_path =
      testing::TempDir() + "/sgp_diff_dist.edges";
  random::Rng rng(53);
  const graph::Graph g = graph::barabasi_albert(kNodes, 6, rng);
  graph::write_edge_list_file(g, edges_path);
  std::ostringstream ref(std::ios::binary);
  {
    RandomProjectionPublisher::Options opt;
    opt.projection_dim = kDim;
    opt.seed = 20260807;
    publish_to_stream(g, opt, ref);
  }

  const std::string out_path = testing::TempDir() + "/sgp_diff_dist_p" +
                               std::to_string(workers) + ".bin";
  graph::EdgeListShardReader reader(edges_path, graph::IdPolicy::kPreserve);
  DistributedPublishOptions opt;
  opt.sharded.publish.projection_dim = kDim;
  opt.sharded.publish.seed = 20260807;
  opt.sharded.shard_rows = 64;
  opt.sharded.threads = 2;
  opt.workers = workers;
  opt.worker_program = SGP_PUBLISH_BIN;
  opt.edges_path = edges_path;
  opt.id_policy = graph::IdPolicy::kPreserve;
  const DistributedPublishResult result =
      publish_distributed(reader, opt, out_path);
  EXPECT_EQ(result.num_nodes, kNodes);
  EXPECT_EQ(result.workers_lost, 0u);

  std::ifstream in(out_path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), ref.str()) << "byte drift at workers=" << workers;
  std::remove(out_path.c_str());
  std::remove(edges_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(ProcessAxis, DistributedMatrixTest,
                         testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}),
                         [](const auto& info) {
                           return "workers" + std::to_string(info.param);
                         });

// Kernel axis of the matrix (docs/scaling.md): for each kernel variant, the
// sharded path across shard heights × thread counts must equal that
// variant's own in-memory streaming reference. Unsupported variants skip
// (the build/CPU may lack an ISA); scalar and generic always run.
class KernelMatrixTest
    : public testing::TestWithParam<
          std::tuple<random::KernelVariant, std::size_t, std::size_t>> {};

TEST_P(KernelMatrixTest, ShardedBytesEqualStreamingReferencePerKernel) {
  const auto [kernel, shard_rows, threads] = GetParam();
  if (!random::kernel_supported(kernel)) {
    GTEST_SKIP() << "variant " << random::to_string(kernel)
                 << " not supported on this machine";
  }
  const std::string edges_path =
      testing::TempDir() + "/sgp_diff_kernel.edges";
  random::Rng rng(53);
  const graph::Graph g = graph::barabasi_albert(kNodes, 6, rng);
  graph::write_edge_list_file(g, edges_path);

  RandomProjectionPublisher::Options popt;
  popt.projection_dim = kDim;
  popt.seed = 20260807;
  popt.kernel = kernel;
  std::ostringstream ref(std::ios::binary);
  publish_to_stream(g, popt, ref);

  const std::string out_path =
      testing::TempDir() + "/sgp_diff_k" +
      std::string(random::to_string(kernel)) + "_s" +
      std::to_string(shard_rows) + "_t" + std::to_string(threads) + ".bin";
  graph::EdgeListShardReader reader(edges_path, graph::IdPolicy::kPreserve);
  ShardedPublishOptions opt;
  opt.publish = popt;
  opt.shard_rows = shard_rows;
  opt.threads = threads;
  publish_sharded(reader, opt, out_path);

  std::ifstream in(out_path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), ref.str())
      << "byte drift at kernel=" << random::to_string(kernel)
      << " shard_rows=" << shard_rows << " threads=" << threads;
  std::remove(out_path.c_str());
  std::remove(edges_path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    KernelAxis, KernelMatrixTest,
    testing::Combine(testing::Values(random::KernelVariant::kScalar,
                                     random::KernelVariant::kGeneric,
                                     random::KernelVariant::kAvx2,
                                     random::KernelVariant::kAvx512),
                     testing::Values(std::size_t{7}, std::size_t{64}, kNodes),
                     testing::Values(std::size_t{1}, std::size_t{8})),
    [](const auto& info) {
      return std::string(random::to_string(std::get<0>(info.param))) +
             "_shard" + std::to_string(std::get<1>(info.param)) + "_threads" +
             std::to_string(std::get<2>(info.param));
    });

// The compact-id remap must survive the matrix too: shard loading under
// kCompact re-resolves ids through the persistent remap, so a sparse messy
// id space is where an ordering bug would surface.
TEST(DifferentialMatrixCompact, SparseIdsByteIdenticalAcrossShardSizes) {
  const std::string edges =
      testing::TempDir() + "/sgp_diff_compact.edges";
  {
    std::ofstream out(edges);
    random::Rng rng(71);
    const graph::Graph g = graph::erdos_renyi(300, 0.03, rng);
    for (std::size_t u = 0; u < g.num_nodes(); ++u) {
      for (const auto v : g.neighbors(u)) {
        if (u < v) out << u * 13 + 5 << '\t' << v * 13 + 5 << '\n';
      }
    }
  }
  RandomProjectionPublisher::Options popt;
  popt.projection_dim = 24;
  popt.seed = 99;

  const graph::Graph g =
      graph::read_edge_list_file(edges, graph::IdPolicy::kCompact);
  std::ostringstream ref(std::ios::binary);
  publish_to_stream(g, popt, ref);

  graph::EdgeListShardReader reader(edges, graph::IdPolicy::kCompact);
  for (const std::size_t shard_rows : {std::size_t{1}, std::size_t{17},
                                       std::size_t{300}}) {
    const std::string out_path = testing::TempDir() + "/sgp_diff_compact_" +
                                 std::to_string(shard_rows) + ".bin";
    ShardedPublishOptions opt;
    opt.publish = popt;
    opt.shard_rows = shard_rows;
    opt.threads = 4;
    publish_sharded(reader, opt, out_path);
    std::ifstream in(out_path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), ref.str()) << "shard_rows=" << shard_rows;
    std::remove(out_path.c_str());
  }
  std::remove(edges.c_str());
}

}  // namespace
}  // namespace sgp::core
