// sgp_bench_check — validates BENCH_*.json / --metrics-out files against the
// observability report schemas: "sgp-obs-report v1" (obs/report.hpp) and the
// merged cross-process "sgp-obs-report v2" (obs/aggregate.hpp), dispatched
// on each document's "schema" string.
//
//   sgp_bench_check BENCH_E2.json [BENCH_E7.json ...]
//
// Exit 0 when every file parses and validates, 3 on the first failure (the
// shared "data error" exit code; see tool_common.hpp). One status line per
// file goes to stderr, so CI logs name the offending report.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/aggregate.hpp"
#include "obs/report.hpp"
#include "tool_common.hpp"
#include "util/errors.hpp"
#include "util/json.hpp"

namespace {

// Per-experiment metadata contracts, beyond the generic schema: BENCH_E7
// carries the scalability configuration (projection_rng and thread count
// matter for interpreting the fused-vs-legacy numbers).
// The kernel-variant meta axis, shared by every benchmark that touches the
// publish pipeline: timings are only comparable within a variant, so each
// report must say which normal-mapping kernel generated its numbers.
void check_kernel_variant(const std::string& path, const std::string& id,
                          const sgp::util::JsonValue& meta) {
  const sgp::util::JsonValue* kernel = meta.find("kernel_variant");
  if (kernel == nullptr) {
    throw sgp::util::ParseError(path + ": " + id +
                                " meta missing 'kernel_variant'");
  }
  if (!kernel->is_string()) {
    throw sgp::util::ParseError(path + ": " + id +
                                " meta.kernel_variant must be a string");
  }
  const std::string& name = kernel->as_string();
  if (name != "scalar" && name != "generic" && name != "avx2" &&
      name != "avx512") {
    throw sgp::util::ParseError(path + ": " + id +
                                " meta.kernel_variant '" + name +
                                "' is not a known kernel variant");
  }
}

void check_e7_meta(const std::string& path, const sgp::util::JsonValue& doc) {
  const sgp::util::JsonValue* meta = doc.find("meta");
  for (const char* key :
       {"m", "epsilon", "delta", "max_nodes", "projection_rng", "threads"}) {
    if (meta->find(key) == nullptr) {
      throw sgp::util::ParseError(path + ": E7 meta missing '" +
                                  std::string(key) + "'");
    }
  }
  const sgp::util::JsonValue* rng = meta->find("projection_rng");
  if (!rng->is_string() || rng->as_string().empty()) {
    throw sgp::util::ParseError(path +
                                ": E7 meta.projection_rng must be a "
                                "non-empty string");
  }
  check_kernel_variant(path, "E7", *meta);
  const sgp::util::JsonValue* threads = meta->find("threads");
  if (!threads->is_number() || threads->as_number() < 1.0) {
    throw sgp::util::ParseError(path + ": E7 meta.threads must be >= 1");
  }
}

// BENCH_E13 records the out-of-core configuration: the shard height the
// memory claim is made for, the observed peak RSS, and the widest thread
// and worker-process counts the byte-identity sweeps covered. CI fails on
// any drift so the scaling docs always have trustworthy numbers to cite.
void check_e13_meta(const std::string& path, const sgp::util::JsonValue& doc) {
  const sgp::util::JsonValue* meta = doc.find("meta");
  for (const char* key :
       {"nodes", "m", "shard_rows", "peak_rss_mb", "threads", "processes"}) {
    if (meta->find(key) == nullptr) {
      throw sgp::util::ParseError(path + ": E13 meta missing '" +
                                  std::string(key) + "'");
    }
  }
  const sgp::util::JsonValue* shard_rows = meta->find("shard_rows");
  if (!shard_rows->is_number() || shard_rows->as_number() < 1.0) {
    throw sgp::util::ParseError(path + ": E13 meta.shard_rows must be >= 1");
  }
  const sgp::util::JsonValue* rss = meta->find("peak_rss_mb");
  if (!rss->is_number() || rss->as_number() < 0.0) {
    throw sgp::util::ParseError(path + ": E13 meta.peak_rss_mb must be a "
                                       "non-negative number");
  }
  const sgp::util::JsonValue* threads = meta->find("threads");
  if (!threads->is_number() || threads->as_number() < 1.0) {
    throw sgp::util::ParseError(path + ": E13 meta.threads must be >= 1");
  }
  const sgp::util::JsonValue* processes = meta->find("processes");
  if (!processes->is_number() || processes->as_number() < 1.0) {
    throw sgp::util::ParseError(path + ": E13 meta.processes must be >= 1");
  }
  // The distributed bench must say which observability schema its
  // per-process metrics were merged under, so consumers know whether
  // gauges carry the per-process "processes" map.
  const sgp::util::JsonValue* obs_schema = meta->find("obs_schema");
  if (obs_schema == nullptr) {
    throw sgp::util::ParseError(path + ": E13 meta missing 'obs_schema'");
  }
  if (!obs_schema->is_string() ||
      (obs_schema->as_string() != "sgp-obs-report v1" &&
       obs_schema->as_string() != "sgp-obs-report v2")) {
    throw sgp::util::ParseError(
        path + ": E13 meta.obs_schema must name a known report schema");
  }
  check_kernel_variant(path, "E13", *meta);
}

// BENCH_E14 records the mechanism-comparison grid: the axes (mechanisms,
// generators, epsilons, tasks) as comma-joined lists plus δ, and one
// "score.<generator>.<mechanism>.e<epsilon>.<task>" number in [0, 1] for
// every cell of their product — the contract sgp_analyze
// --compare-mechanisms renders from.
std::vector<std::string> split_csv(const std::string& spec) {
  std::vector<std::string> out;
  std::string item;
  for (const char c : spec) {
    if (c == ',') {
      out.push_back(item);
      item.clear();
    } else {
      item.push_back(c);
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

void check_e14_meta(const std::string& path, const sgp::util::JsonValue& doc) {
  const sgp::util::JsonValue* meta = doc.find("meta");
  for (const char* key : {"mechanisms", "generators", "epsilons", "tasks"}) {
    const sgp::util::JsonValue* axis = meta->find(key);
    if (axis == nullptr || !axis->is_string() || axis->as_string().empty()) {
      throw sgp::util::ParseError(path + ": E14 meta." + std::string(key) +
                                  " must be a non-empty comma-joined list");
    }
  }
  const sgp::util::JsonValue* delta = meta->find("delta");
  if (delta == nullptr || !delta->is_number() || delta->as_number() <= 0.0 ||
      delta->as_number() >= 1.0) {
    throw sgp::util::ParseError(path +
                                ": E14 meta.delta must be a number in (0,1)");
  }
  for (const std::string& gen : split_csv(meta->find("generators")->as_string())) {
    for (const std::string& mech :
         split_csv(meta->find("mechanisms")->as_string())) {
      for (const std::string& eps :
           split_csv(meta->find("epsilons")->as_string())) {
        for (const std::string& task :
             split_csv(meta->find("tasks")->as_string())) {
          const std::string key =
              "score." + gen + "." + mech + ".e" + eps + "." + task;
          const sgp::util::JsonValue* score = meta->find(key);
          if (score == nullptr) {
            throw sgp::util::ParseError(path + ": E14 meta missing '" + key +
                                        "' — the score grid must cover the "
                                        "full axis product");
          }
          if (!score->is_number() || score->as_number() < 0.0 ||
              score->as_number() > 1.0) {
            throw sgp::util::ParseError(path + ": E14 meta." + key +
                                        " must be a number in [0, 1]");
          }
        }
      }
    }
  }
}

// BENCH_MICRO carries the SIMD acceptance gate: when the machine has vector
// hardware (kernel_variant avx2/avx512), the hand-timed tile-fill and
// fused-SpMM speedups over the scalar kernel must both clear 1.5× — this is
// the check that keeps a regressed vector kernel from shipping silently. On
// scalar-only machines the speedups are reported as 1.0 and only sanity-
// checked, so CI stays green off x86.
void check_micro_meta(const std::string& path,
                      const sgp::util::JsonValue& doc) {
  const sgp::util::JsonValue* meta = doc.find("meta");
  check_kernel_variant(path, "MICRO", *meta);
  for (const char* key : {"tile_fill_speedup", "fused_spmm_speedup"}) {
    const sgp::util::JsonValue* speedup = meta->find(key);
    if (speedup == nullptr) {
      throw sgp::util::ParseError(path + ": MICRO meta missing '" +
                                  std::string(key) + "'");
    }
    if (!speedup->is_number() || speedup->as_number() <= 0.0) {
      throw sgp::util::ParseError(path + ": MICRO meta." + std::string(key) +
                                  " must be a positive number");
    }
  }
  const std::string& kernel = meta->find("kernel_variant")->as_string();
  if (kernel == "avx2" || kernel == "avx512") {
    for (const char* key : {"tile_fill_speedup", "fused_spmm_speedup"}) {
      const double speedup = meta->find(key)->as_number();
      if (speedup < 1.5) {
        throw sgp::util::ParseError(
            path + ": MICRO meta." + std::string(key) + " = " +
            std::to_string(speedup) + " under " + kernel +
            " — vector kernels must be >= 1.5x over scalar");
      }
    }
  }
}

void check_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw sgp::util::IoError("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const sgp::util::JsonValue doc = sgp::util::parse_json(buf.str());
  // Dispatch on the self-declared schema: v2 documents are the merged
  // cross-process reports; everything else takes the v1 validator (which
  // rejects unknown schema strings with a useful message).
  const sgp::util::JsonValue* schema = doc.find("schema");
  const bool v2 = schema != nullptr && schema->is_string() &&
                  schema->as_string() == sgp::obs::kReportV2Schema;
  if (v2) {
    if (const auto err = sgp::obs::validate_report_v2_json(doc)) {
      throw sgp::util::ParseError(path + ": " + *err);
    }
  } else if (const auto err = sgp::obs::validate_report_json(doc)) {
    throw sgp::util::ParseError(path + ": " + *err);
  }
  // Both validators guarantee a string "id" and object "meta".
  if (doc.find("id")->as_string() == "E7") {
    check_e7_meta(path, doc);
  }
  if (doc.find("id")->as_string() == "E13") {
    check_e13_meta(path, doc);
  }
  if (doc.find("id")->as_string() == "E14") {
    check_e14_meta(path, doc);
  }
  if (doc.find("id")->as_string() == "MICRO") {
    check_micro_meta(path, doc);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s report.json [report.json ...]\n", argv[0]);
    return sgp::tools::kExitUsage;
  }
  return sgp::tools::run_tool([&]() -> int {
    for (int i = 1; i < argc; ++i) {
      check_file(argv[i]);
      std::fprintf(stderr, "%s: ok\n", argv[i]);
    }
    return sgp::tools::kExitOk;
  });
}
