// sgp_stats — differentially private scalar/histogram statistics of a graph.
//
//   sgp_stats --edges graph.txt [--epsilon 1.0] [--max-degree 200]
//             [--degree-bound 0] [--seed 7]
//
// Splits ε evenly across the requested statistics (sequential composition;
// the exact split is printed). --degree-bound > 0 additionally releases a
// triangle count under that promised bound.
//
// Shares the observability flags of all sgp_* tools:
// [--metrics-out metrics.json [--metrics-format prometheus]] [--trace]
#include <cstdio>

#include "core/stats_publisher.hpp"
#include "dp/accountant.hpp"
#include "graph/io.hpp"
#include "obs/metric_names.hpp"
#include "obs/scoped_timer.hpp"
#include "tool_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const sgp::util::CliArgs args(argc, argv);
  const std::string edges_path = args.get_string("edges", "");
  if (edges_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s --edges graph.txt [--epsilon E] [--max-degree D] "
                 "[--degree-bound B] [--seed S] "
                 "[--metrics-out metrics.json] [--trace]\n",
                 args.program().c_str());
    return sgp::tools::kExitUsage;
  }
  const sgp::tools::ObsScope obs_scope(args, "sgp_stats");

  return sgp::tools::run_tool([&]() -> int {
    sgp::obs::ScopedTimer stats_timer(sgp::obs::names::kToolStats);
    const auto graph = sgp::graph::read_edge_list_file(edges_path);
    const double total_eps = args.get_double("epsilon", 1.0);
    const auto max_degree =
        static_cast<std::size_t>(args.get_int("max-degree", 200));
    const auto degree_bound =
        static_cast<std::size_t>(args.get_int("degree-bound", 0));
    sgp::random::Rng rng(
        static_cast<std::uint64_t>(args.get_int("seed", 7)));

    const int parts = degree_bound > 0 ? 3 : 2;
    const double eps_each = total_eps / parts;
    sgp::dp::PrivacyAccountant accountant;

    const auto edges = sgp::core::dp_edge_count(graph, eps_each, rng);
    accountant.record({eps_each, 0.0});
    std::printf("edges            %.1f   (laplace scale %.2f)\n", edges.value,
                edges.laplace_scale);
    std::printf("avg degree       %.3f  (post-processed, no extra budget)\n",
                2.0 * edges.value / static_cast<double>(graph.num_nodes()));

    const auto hist =
        sgp::core::dp_degree_histogram(graph, eps_each, max_degree, rng);
    accountant.record({eps_each, 0.0});
    double mass = 0;
    std::size_t mode = 0;
    for (std::size_t d = 0; d < hist.size(); ++d) {
      mass += hist[d];
      if (hist[d] > hist[mode]) mode = d;
    }
    std::printf("degree histogram %zu bins, noisy mass %.1f, mode bin %zu\n",
                hist.size(), mass, mode);

    if (degree_bound > 0) {
      const auto triangles =
          sgp::core::dp_triangle_count(graph, eps_each, degree_bound, rng);
      accountant.record({eps_each, 0.0});
      std::printf("triangles        %.1f   (bound %zu, laplace scale %.2f)\n",
                  triangles.value, degree_bound, triangles.laplace_scale);
    }

    const auto spent = accountant.basic_composition();
    std::fprintf(stderr, "total budget consumed: %s over %zu releases\n",
                 spent.to_string().c_str(), accountant.num_releases());
    return sgp::tools::kExitOk;
  });
}
