// sgp_trace — timeline inspection for merged observability reports.
//
//   sgp_trace --report merged-report.json [--chrome trace.json] [--summary]
//   sgp_trace --validate-chrome trace.json
//
// Reads an "sgp-obs-report v2" document — the merged cross-process report a
// distributed `sgp_publish --workers N --metrics-out` writes — validates it
// against the schema (obs/aggregate.hpp), and renders:
//
//   --chrome <path>   Chrome trace-event / Perfetto-compatible JSON: spans
//                     as complete ("X") events laned by pid/thread,
//                     lifecycle events as instants, resource samples as
//                     counter tracks. Load in chrome://tracing or
//                     ui.perfetto.dev.
//   --summary         human-readable timeline on stdout: per-process
//                     inventory, a per-shard Gantt chart, lease reclaim
//                     gaps (reclaim -> recommit), and the critical path
//                     through the span tree.
//
// With neither flag the report is validated and acknowledged — the
// schema-check mode CI uses. --validate-chrome structurally checks a Chrome
// trace file (the counterpart of sgp_bench_check for timeline exports) and
// shares its exit-code contract: 0 ok, 3 on the first invalid file.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/aggregate.hpp"
#include "tool_common.hpp"
#include "util/errors.hpp"
#include "util/json.hpp"

namespace {

sgp::util::JsonValue parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw sgp::util::IoError("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return sgp::util::parse_json(buf.str());
}

}  // namespace

int main(int argc, char** argv) {
  const sgp::util::CliArgs args(argc, argv);
  const std::string report_path = args.get_string("report", "");
  const std::string validate_chrome = args.get_string("validate-chrome", "");
  if (report_path.empty() && validate_chrome.empty()) {
    std::fprintf(stderr,
                 "usage: %s --report merged-report.json "
                 "[--chrome trace.json] [--summary]\n"
                 "       %s --validate-chrome trace.json\n",
                 args.program().c_str(), args.program().c_str());
    return sgp::tools::kExitUsage;
  }
  return sgp::tools::run_tool([&]() -> int {
    if (!validate_chrome.empty()) {
      const sgp::util::JsonValue doc = parse_file(validate_chrome);
      if (const auto err = sgp::obs::validate_chrome_trace_json(doc)) {
        throw sgp::util::ParseError(validate_chrome + ": " + *err);
      }
      std::fprintf(stderr, "%s: ok\n", validate_chrome.c_str());
      return sgp::tools::kExitOk;
    }

    const sgp::util::JsonValue report = parse_file(report_path);
    if (const auto err = sgp::obs::validate_report_v2_json(report)) {
      throw sgp::util::ParseError(report_path + ": " + *err);
    }

    const std::string chrome_path = args.get_string("chrome", "");
    if (!chrome_path.empty()) {
      std::ofstream out(chrome_path, std::ios::binary | std::ios::trunc);
      if (!out.good()) {
        throw sgp::util::IoError("cannot open " + chrome_path);
      }
      sgp::obs::write_chrome_trace(out, report);
      out.flush();
      if (!out.good()) {
        throw sgp::util::IoError("failed writing " + chrome_path);
      }
      std::fprintf(stderr, "chrome trace written to %s\n",
                   chrome_path.c_str());
    }
    if (args.get_bool("summary", false)) {
      sgp::obs::write_trace_summary(std::cout, report);
    }
    if (chrome_path.empty() && !args.get_bool("summary", false)) {
      std::fprintf(stderr, "%s: ok\n", report_path.c_str());
    }
    return sgp::tools::kExitOk;
  });
}
