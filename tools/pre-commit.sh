#!/usr/bin/env bash
# Git pre-commit hook: lint the tree before every commit.
#
# Install with:
#
#   ln -s ../../tools/pre-commit.sh .git/hooks/pre-commit
#
# The incremental cache (.lint-cache.json, gitignored) makes the repeat
# cost proportional to what changed — a warm run on an unchanged tree
# re-lints nothing, so the hook stays fast even though it always checks
# the whole tree (cross-file rules like R6 include-layering need the full
# file set anyway). Bypass a stuck hook with `git commit --no-verify`,
# then fix the findings.
set -euo pipefail

cd "$(git rev-parse --show-toplevel)"

if [[ ! -x build/tools/sgp_lint ]]; then
  echo "pre-commit: building sgp_lint..."
  cmake -B build -S . >/dev/null
  cmake --build build -j --target sgp_lint >/dev/null
fi

if ! ./build/tools/sgp_lint --root . --cache --threads 0; then
  echo
  echo "pre-commit: sgp-lint findings — fix them (each carries a fix: hint)"
  echo "            or see docs/static_analysis.md for the baseline workflow."
  exit 1
fi
