// sgp_analyze — analyst-side consumer of a DP release.
//
//   sgp_analyze --release release.bin --task cluster --clusters 8
//   sgp_analyze --release release.bin --task cluster            (auto k via
//                                       the eigengap of the release)
//   sgp_analyze --release release.bin --task rank [--top 100]
//   sgp_analyze --release release.bin --task stats               (edge count
//                                       + degree histogram estimates)
//   sgp_analyze --release release.bin --task info
//
// Output: one line per node on stdout (cluster id, or rank order), metadata
// on stderr. The original graph is never needed.
//
// Shares the observability flags of all sgp_* tools:
// [--metrics-out metrics.json [--metrics-format prometheus]] [--trace]
#include <cstdio>
#include <string>

#include "cluster/select_k.hpp"
#include "core/publisher.hpp"
#include "core/reconstruction.hpp"
#include "core/serialization.hpp"
#include "linalg/svd.hpp"
#include "obs/scoped_timer.hpp"
#include "ranking/metrics.hpp"
#include "tool_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const sgp::util::CliArgs args(argc, argv);
  const std::string release_path = args.get_string("release", "");
  const std::string task = args.get_string("task", "info");
  if (release_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s --release release.bin --task info|cluster|rank "
                 "[--clusters K] [--top N] [--seed S] "
                 "[--metrics-out metrics.json] [--trace]\n",
                 args.program().c_str());
    return sgp::tools::kExitUsage;
  }
  const sgp::tools::ObsScope obs_scope(args, "sgp_analyze");

  return sgp::tools::run_tool([&]() -> int {
    sgp::obs::ScopedTimer task_timer("tool." + task);
    const auto release = sgp::core::load_published_file(release_path);
    std::fprintf(stderr, "release: n=%zu m=%zu %s sigma=%.3f projection=%s\n",
                 release.num_nodes, release.projection_dim,
                 release.params.to_string().c_str(),
                 release.calibration.sigma,
                 sgp::core::to_string(release.projection).c_str());

    if (task == "info") {
      return 0;
    }
    if (task == "stats") {
      std::printf("estimated edges: %.1f\n",
                  sgp::core::estimate_edge_count(release));
      const auto hist =
          sgp::core::estimate_degree_histogram(release, 10.0, 30);
      std::printf("estimated degree histogram (bins of 10):\n");
      for (std::size_t b = 0; b < hist.size(); ++b) {
        if (hist[b] > 0) {
          std::printf("  [%3zu, %3zu): %zu\n", b * 10, (b + 1) * 10, hist[b]);
        }
      }
      return 0;
    }
    if (task == "cluster") {
      const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
      std::size_t k = static_cast<std::size_t>(args.get_int("clusters", 0));
      if (k == 0) {
        // Pick k from the eigengap of the release's singular values.
        const auto probe = std::min<std::size_t>(release.projection_dim, 24);
        const auto svd = sgp::linalg::svd_gram(release.data, probe);
        k = sgp::cluster::eigengap_k(svd.singular_values);
        std::fprintf(stderr, "eigengap heuristic chose k=%zu\n", k);
      }
      const auto result = sgp::core::cluster_published(release, k, seed);
      for (std::size_t u = 0; u < result.assignments.size(); ++u) {
        std::printf("%zu %u\n", u, result.assignments[u]);
      }
      std::fprintf(stderr, "clustered %zu nodes into %zu groups\n",
                   result.assignments.size(), k);
      return 0;
    }
    if (task == "rank") {
      const auto top = static_cast<std::size_t>(args.get_int("top", 100));
      const auto scores = sgp::core::degree_scores(release);
      const auto order = sgp::ranking::ranking_from_scores(scores);
      const std::size_t count = std::min(top, order.size());
      for (std::size_t i = 0; i < count; ++i) {
        std::printf("%zu %zu %.2f\n", i + 1, order[i], scores[order[i]]);
      }
      std::fprintf(stderr, "ranked top-%zu of %zu nodes by estimated degree\n",
                   count, order.size());
      return 0;
    }
    std::fprintf(stderr, "error: unknown task '%s'\n", task.c_str());
    return sgp::tools::kExitUsage;
  });
}
