// sgp_analyze — analyst-side consumer of a DP release.
//
//   sgp_analyze --release release.bin --task cluster --clusters 8
//   sgp_analyze --release release.bin --task cluster            (auto k via
//                                       the eigengap of the release)
//   sgp_analyze --release release.bin --task rank [--top 100]
//   sgp_analyze --release release.bin --task stats               (edge count
//                                       + degree histogram estimates)
//   sgp_analyze --release release.bin --task info
//   sgp_analyze --compare-mechanisms BENCH_E14.json
//                                      [--mechanism M] [--task T]
//
// --compare-mechanisms renders the E14 mechanism-comparison grid from a
// BENCH_E14.json report (bench/bench_e14_mechanisms.cpp): one row per
// generator × task × ε cell, one score column per mechanism. --mechanism
// (validated against the registered mechanism family) and --task narrow
// the table. No release file is needed in this mode.
//
// Unknown --task / --mechanism values are usage errors (exit 2) and the
// message lists the valid values, mirroring sgp_lint --rules.
//
// Output: one line per node on stdout (cluster id, or rank order), metadata
// on stderr. The original graph is never needed.
//
// Shares the observability flags of all sgp_* tools:
// [--metrics-out metrics.json [--metrics-format prometheus]] [--trace]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/select_k.hpp"
#include "core/mechanism.hpp"
#include "core/publisher.hpp"
#include "core/reconstruction.hpp"
#include "core/serialization.hpp"
#include "linalg/svd.hpp"
#include "obs/metric_names.hpp"
#include "obs/scoped_timer.hpp"
#include "ranking/metrics.hpp"
#include "tool_common.hpp"
#include "util/cli.hpp"
#include "util/errors.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

const std::vector<std::string> kReleaseTasks = {"info", "stats", "cluster",
                                                "rank"};

/// Usage-contract guard: an unrecognized value exits 2 with the valid set
/// spelled out (the same shape sgp_lint uses for unknown rule ids).
void require_one_of(const std::string& flag, const std::string& value,
                    const std::vector<std::string>& valid) {
  std::string listed;
  for (const std::string& v : valid) {
    if (v == value) return;
    if (!listed.empty()) listed += " ";
    listed += v;
  }
  throw sgp::util::PreconditionError("unknown " + flag + " '" + value +
                                     "' (valid: " + listed + ")");
}

std::vector<std::string> split_csv(const std::string& spec) {
  std::vector<std::string> out;
  std::string item;
  for (const char c : spec) {
    if (c == ',') {
      out.push_back(item);
      item.clear();
    } else {
      item.push_back(c);
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

/// Renders the E14 grid from a BENCH_E14.json report. The axis lists and
/// per-cell "score.<gen>.<mech>.e<eps>.<task>" keys are the contract
/// sgp_bench_check enforces, so a validated report always renders fully.
int compare_mechanisms(const std::string& path,
                       const std::string& mechanism_filter,
                       const std::string& task_filter) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw sgp::util::IoError("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const sgp::util::JsonValue doc = sgp::util::parse_json(buf.str());
  const sgp::util::JsonValue* id = doc.find("id");
  if (id == nullptr || !id->is_string() || id->as_string() != "E14") {
    throw sgp::util::ParseError(
        path + ": not an E14 mechanism-comparison report (run "
               "bench_e14_mechanisms to produce BENCH_E14.json)");
  }
  const sgp::util::JsonValue* meta = doc.find("meta");
  if (meta == nullptr) {
    throw sgp::util::ParseError(path + ": report has no meta object");
  }
  const auto axis = [&](const char* key) {
    const sgp::util::JsonValue* v = meta->find(key);
    if (v == nullptr || !v->is_string() || v->as_string().empty()) {
      throw sgp::util::ParseError(path + ": E14 meta." + std::string(key) +
                                  " is missing");
    }
    return split_csv(v->as_string());
  };
  const auto mechanisms = axis("mechanisms");
  const auto generators = axis("generators");
  const auto epsilons = axis("epsilons");
  const auto tasks = axis("tasks");
  if (!task_filter.empty()) require_one_of("task", task_filter, tasks);

  std::vector<std::string> shown_mechanisms;
  for (const std::string& mech : mechanisms) {
    if (mechanism_filter.empty() || mech == mechanism_filter) {
      shown_mechanisms.push_back(mech);
    }
  }
  if (shown_mechanisms.empty()) {
    throw sgp::util::ParseError(path + ": report carries no mechanism '" +
                                mechanism_filter + "'");
  }

  std::vector<std::string> header = {"generator", "task", "epsilon"};
  header.insert(header.end(), shown_mechanisms.begin(),
                shown_mechanisms.end());
  sgp::util::TextTable table(header);
  std::size_t rows = 0;
  for (const std::string& gen : generators) {
    for (const std::string& task : tasks) {
      if (!task_filter.empty() && task != task_filter) continue;
      for (const std::string& eps : epsilons) {
        table.new_row().add(gen).add(task).add(eps);
        for (const std::string& mech : shown_mechanisms) {
          const std::string key =
              "score." + gen + "." + mech + ".e" + eps + "." + task;
          const sgp::util::JsonValue* score = meta->find(key);
          if (score == nullptr || !score->is_number()) {
            throw sgp::util::ParseError(path + ": meta missing '" + key +
                                        "'");
          }
          table.add(score->as_number(), 3);
        }
        ++rows;
      }
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::fprintf(stderr, "compared %zu mechanism(s) over %zu grid row(s)\n",
               shown_mechanisms.size(), rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const sgp::util::CliArgs args(argc, argv);
  const std::string release_path = args.get_string("release", "");
  const std::string compare_path = args.get_string("compare-mechanisms", "");
  const std::string mechanism = args.get_string("mechanism", "");
  if (release_path.empty() && compare_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s --release release.bin --task info|stats|cluster|"
                 "rank [--clusters K] [--top N] [--seed S]\n"
                 "       %s --compare-mechanisms BENCH_E14.json "
                 "[--mechanism M] [--task T]\n"
                 "common: [--metrics-out metrics.json] [--trace]\n",
                 args.program().c_str(), args.program().c_str());
    return sgp::tools::kExitUsage;
  }
  const sgp::tools::ObsScope obs_scope(args, "sgp_analyze");

  return sgp::tools::run_tool([&]() -> int {
    // The mechanism family is the registry's to validate: analysts get the
    // same names the grid and bench use.
    if (!mechanism.empty()) {
      require_one_of("mechanism", mechanism,
                     sgp::core::known_mechanism_names());
    }
    if (!compare_path.empty()) {
      sgp::obs::ScopedTimer task_timer(
          std::string(sgp::obs::names::kToolCompareMechanisms));
      return compare_mechanisms(compare_path, mechanism,
                                args.get_string("task", ""));
    }

    const std::string task = args.get_string("task", "info");
    require_one_of("task", task, kReleaseTasks);
    sgp::obs::ScopedTimer task_timer("tool." + task);
    const auto release = sgp::core::load_published_file(release_path);
    std::fprintf(stderr, "release: n=%zu m=%zu %s sigma=%.3f projection=%s\n",
                 release.num_nodes, release.projection_dim,
                 release.params.to_string().c_str(),
                 release.calibration.sigma,
                 sgp::core::to_string(release.projection).c_str());

    if (task == "info") {
      return 0;
    }
    if (task == "stats") {
      std::printf("estimated edges: %.1f\n",
                  sgp::core::estimate_edge_count(release));
      const auto hist =
          sgp::core::estimate_degree_histogram(release, 10.0, 30);
      std::printf("estimated degree histogram (bins of 10):\n");
      for (std::size_t b = 0; b < hist.size(); ++b) {
        if (hist[b] > 0) {
          std::printf("  [%3zu, %3zu): %zu\n", b * 10, (b + 1) * 10, hist[b]);
        }
      }
      return 0;
    }
    if (task == "cluster") {
      const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
      std::size_t k = static_cast<std::size_t>(args.get_int("clusters", 0));
      if (k == 0) {
        // Pick k from the eigengap of the release's singular values.
        const auto probe = std::min<std::size_t>(release.projection_dim, 24);
        const auto svd = sgp::linalg::svd_gram(release.data, probe);
        k = sgp::cluster::eigengap_k(svd.singular_values);
        std::fprintf(stderr, "eigengap heuristic chose k=%zu\n", k);
      }
      const auto result = sgp::core::cluster_published(release, k, seed);
      for (std::size_t u = 0; u < result.assignments.size(); ++u) {
        std::printf("%zu %u\n", u, result.assignments[u]);
      }
      std::fprintf(stderr, "clustered %zu nodes into %zu groups\n",
                   result.assignments.size(), k);
      return 0;
    }
    // rank — the only task left after require_one_of.
    const auto top = static_cast<std::size_t>(args.get_int("top", 100));
    const auto scores = sgp::core::degree_scores(release);
    const auto order = sgp::ranking::ranking_from_scores(scores);
    const std::size_t count = std::min(top, order.size());
    for (std::size_t i = 0; i < count; ++i) {
      std::printf("%zu %zu %.2f\n", i + 1, order[i], scores[order[i]]);
    }
    std::fprintf(stderr, "ranked top-%zu of %zu nodes by estimated degree\n",
                 count, order.size());
    return 0;
  });
}
