// Shared top-level error handling for the sgp_* CLI tools.
//
// Every tool wraps its body in run_tool(), which maps the sgp error
// taxonomy (util/errors.hpp) onto documented, scriptable exit codes —
// instead of each tool improvising (or worse, letting an exception escape
// main into std::terminate):
//
//   0  success
//   2  usage error (bad flags, missing required arguments)
//   3  data error (unreadable/corrupt input, IO failure, corrupt ledger)
//   4  privacy budget exhausted (nothing was released)
//   5  internal error (solver non-convergence, allocation failure, bugs)
//
// The codes are part of the CLI contract; see docs/robustness.md.
#pragma once

#include <cstdio>
#include <exception>
#include <new>
#include <stdexcept>

#include "util/errors.hpp"

namespace sgp::tools {

inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitData = 3;
inline constexpr int kExitBudget = 4;
inline constexpr int kExitInternal = 5;

template <typename Fn>
int run_tool(Fn&& body) {
  try {
    return body();
  } catch (const util::BudgetExhaustedError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitBudget;
  } catch (const util::ParseError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitData;
  } catch (const util::IoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitData;
  } catch (const util::LedgerCorruptError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitData;
  } catch (const std::invalid_argument& e) {
    // util::require / CliArgs: the caller passed something malformed.
    std::fprintf(stderr, "usage error: %s\n", e.what());
    return kExitUsage;
  } catch (const std::bad_alloc&) {
    std::fprintf(stderr, "internal error: out of memory\n");
    return kExitInternal;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return kExitInternal;
  }
}

}  // namespace sgp::tools
