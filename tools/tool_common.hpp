// Shared top-level error handling for the sgp_* CLI tools.
//
// Every tool wraps its body in run_tool(), which maps the sgp error
// taxonomy (util/errors.hpp) onto documented, scriptable exit codes —
// instead of each tool improvising (or worse, letting an exception escape
// main into std::terminate):
//
//   0  success
//   2  usage error (bad flags, missing required arguments)
//   3  data error (unreadable/corrupt input, IO failure, corrupt ledger)
//   4  privacy budget exhausted (nothing was released)
//   5  internal error (solver non-convergence, allocation failure, bugs)
//
// The codes are part of the CLI contract; see docs/robustness.md.
// Observability flags shared by every tool (see docs/observability.md):
//
//   --metrics-out <path>   enable metrics and write an obs::Report JSON
//                          (counters, histograms, phases, spans) on exit —
//                          also on error exits, so failed runs are
//                          diagnosable
//   --metrics-format prometheus   write the Prometheus text format instead
//   --trace                enable trace spans; a human-readable span tree
//                          is printed to stderr on exit
#pragma once

#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <new>
#include <stdexcept>
#include <string>

#include "obs/aggregate.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/resource_sampler.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/errors.hpp"

namespace sgp::tools {

inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitData = 3;
inline constexpr int kExitBudget = 4;
inline constexpr int kExitInternal = 5;

/// Parses the shared observability flags, enables the subsystems they ask
/// for, and emits the outputs from its destructor — so the report is
/// written whether the tool body succeeds, fails, or throws.
class ObsScope {
 public:
  ObsScope(const util::CliArgs& args, std::string tool_name)
      : tool_name_(std::move(tool_name)),
        metrics_path_(args.get_string("metrics-out", "")),
        prometheus_(args.get_string("metrics-format", "json") == "prometheus"),
        trace_(args.get_bool("trace", false)) {
    if (!metrics_path_.empty()) obs::set_metrics_enabled(true);
    if (trace_) {
      obs::set_metrics_enabled(true);
      obs::set_trace_enabled(true);
    }
    if (!metrics_path_.empty() || trace_) {
      // Pre-register the pipeline's headline metrics (Prometheus-style
      // up-front declaration) so every report carries them, zero-valued
      // when the corresponding stage did not run. Names come from the
      // canonical registry (obs/metric_names.hpp) — sgp-lint rule R3
      // rejects strings that are not in it.
      for (std::string_view name :
           {obs::names::kPublishReleases, obs::names::kPublishEmbeds,
            obs::names::kPublishShards, obs::names::kPublishShardsResumed,
            obs::names::kPublishLeasesReclaimed, obs::names::kRetryAttempts,
            obs::names::kLedgerAppends, obs::names::kLedgerAppendAttempts,
            obs::names::kLedgerRecoveries, obs::names::kLedgerCrcFailures,
            obs::names::kFaultTrips, obs::names::kObsEvents,
            obs::names::kProcSamples}) {
        obs::counter(name);
      }
      for (std::string_view base :
           {obs::names::kPublishProject, obs::names::kPublishPerturb,
            obs::names::kPublishEmbed, obs::names::kPublishShard,
            obs::names::kPublishDistributed}) {
        obs::histogram(std::string(base) + ".seconds");
      }
      obs::histogram(obs::names::kLedgerAppendSeconds);
      for (std::string_view name :
           {obs::names::kPublishWorkers, obs::names::kProcRssMb,
            obs::names::kProcPeakRssMb, obs::names::kProcUtimeSeconds,
            obs::names::kProcStimeSeconds, obs::names::kProcOpenFds}) {
        obs::gauge(name);
      }
      sampler_.start();
    }
  }

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

  /// Whether the shared observability flags enabled metrics collection.
  [[nodiscard]] bool metrics_on() const {
    return !metrics_path_.empty() || trace_;
  }

  /// Switches the destructor from the single-process v1 report to the
  /// merged cross-process "sgp-obs-report v2": live coordinator state plus
  /// every worker sidecar under `sidecar_prefix` (obs/aggregate.hpp).
  /// JSON format only; --metrics-format prometheus keeps the local
  /// registry view.
  void set_distributed_merge(std::string sidecar_prefix,
                             std::string trace_id) {
    merge_prefix_ = std::move(sidecar_prefix);
    merge_trace_id_ = std::move(trace_id);
  }

  ~ObsScope() {
    sampler_.stop();
    if (trace_) {
      std::fprintf(stderr, "--- trace (%s) ---\n", tool_name_.c_str());
      obs::write_trace_text(std::cerr);
    }
    if (metrics_path_.empty()) {
      obs::close_sidecar();
      return;
    }
    try {
      if (prometheus_) {
        std::ofstream out(metrics_path_, std::ios::binary | std::ios::trunc);
        if (!out.good()) {
          throw util::IoError("cannot open " + metrics_path_);
        }
        obs::write_metrics_prometheus(out);
        out.flush();
        if (!out.good()) {
          throw util::IoError("failed writing " + metrics_path_);
        }
        obs::close_sidecar();
      } else if (!merge_prefix_.empty()) {
        // The sidecar must be closed (final flush) before the merge reads
        // live state and deletes the consumed files.
        obs::close_sidecar();
        obs::write_merged_report_file(metrics_path_, tool_name_,
                                      merge_prefix_, merge_trace_id_);
      } else {
        obs::close_sidecar();
        obs::Report(tool_name_).write_file(metrics_path_);
      }
      std::fprintf(stderr, "metrics written to %s\n", metrics_path_.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "warning: failed writing metrics: %s\n", e.what());
    }
  }

 private:
  std::string tool_name_;
  std::string metrics_path_;
  bool prometheus_;
  bool trace_;
  std::string merge_prefix_;
  std::string merge_trace_id_;
  obs::ResourceSampler sampler_;
};

template <typename Fn>
int run_tool(Fn&& body) {
  try {
    return body();
  } catch (const util::SgpError& e) {
    // One switch over the taxonomy keeps new kinds from silently falling
    // into the generic handler below with the wrong exit code.
    switch (e.kind()) {
      case util::ErrorKind::kBudgetExhausted:
        std::fprintf(stderr, "error: %s\n", e.what());
        return kExitBudget;
      case util::ErrorKind::kParse:
      case util::ErrorKind::kIo:
      case util::ErrorKind::kLedgerCorrupt:
        std::fprintf(stderr, "error: %s\n", e.what());
        return kExitData;
      case util::ErrorKind::kConvergence:
      case util::ErrorKind::kResource:
      case util::ErrorKind::kInternal:
        std::fprintf(stderr, "internal error: %s\n", e.what());
        return kExitInternal;
    }
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return kExitInternal;
  } catch (const std::invalid_argument& e) {
    // util::require / CliArgs: the caller passed something malformed.
    std::fprintf(stderr, "usage error: %s\n", e.what());
    return kExitUsage;
  } catch (const std::bad_alloc&) {
    std::fprintf(stderr, "internal error: out of memory\n");
    return kExitInternal;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return kExitInternal;
  }
}

}  // namespace sgp::tools
