// sgp_publish — command-line publisher: edge list in, DP release out.
//
//   sgp_publish --edges graph.txt --out release.bin
//               [--epsilon 1.0] [--delta 1e-6] [--dim 100]
//               [--projection gaussian|achlioptas] [--seed 7] [--streaming]
//               [--kernel auto|scalar|generic|avx2|avx512]
//               [--shard-rows R | --max-memory-mb MB] [--threads T]
//               [--no-resume]
//               [--ledger budget.ledger --budget-epsilon 10 --budget-delta 1e-5]
//               [--metrics-out metrics.json [--metrics-format prometheus]]
//               [--trace]
//
// With --streaming the release is computed row by row (≈half the peak
// memory); output bytes are identical either way.
//
// --kernel selects the value-generation kernel (docs/scaling.md). The
// default ("auto") honours SGP_FORCE_KERNEL and otherwise stays on the
// byte-stable scalar path; "avx2"/"avx512"/"generic" opt a gaussian
// release into the vectorized polynomial mapping, which is recorded in
// the release header ("counter-v1-simd") so reconstruction regenerates
// the same projection on any machine.
//
// With --shard-rows (or --max-memory-mb, which derives a shard height from
// a memory budget — docs/scaling.md) the release is produced out of core:
// the graph is never materialized, row shards stream from the edge list and
// append to the release file one by one, still byte-identical to the other
// paths. A crash mid-shard leaves a `<out>.ckpt` checkpoint; rerunning the
// same command resumes at the last complete shard (--no-resume starts
// over). Combined with --ledger, a resumed run finishes the already-charged
// release instead of charging a new one.
//
// With --ledger the release is charged against a crash-safe budget ledger:
// repeated invocations against the same ledger accumulate spent (ε, δ), and
// once the total cap (--budget-epsilon/--budget-delta) would be exceeded the
// tool refuses with exit code 4 and publishes nothing. See
// docs/robustness.md for the ledger format and recovery semantics.
//
// With --workers N the out-of-core publication is distributed over N worker
// *processes* coordinated through a durable lease file — workers that
// crash, are killed, or go silent are reclaimed and their shards reassigned
// (or computed in-process as the last resort), and the release is still
// byte-identical to every other path. --lease-timeout bounds how long a
// silent worker is trusted; --worker-fault-spec arms an SGP_FAULT_SPEC in
// worker slot 0 only (the chaos hook — docs/robustness.md). The hidden
// --worker flag is the child-process entry point and not for interactive
// use. Architecture and lease format: docs/scaling.md.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>

#include "core/distributed_publish.hpp"
#include "core/serialization.hpp"
#include "core/session.hpp"
#include "core/sharded_publish.hpp"
#include "graph/io.hpp"
#include "graph/shard_loader.hpp"
#include "obs/metric_names.hpp"
#include "obs/scoped_timer.hpp"
#include "random/kernel_variant.hpp"
#include "tool_common.hpp"
#include "util/cli.hpp"
#include "util/errors.hpp"

namespace {

/// Path of the running binary, for re-invoking ourselves as workers.
/// /proc/self/exe survives $PATH lookups and directory changes; argv[0] is
/// the fallback where procfs is unavailable.
std::string self_program(const sgp::util::CliArgs& args) {
  std::error_code ec;
  const auto exe = std::filesystem::read_symlink("/proc/self/exe", ec);
  return ec ? args.program() : exe.string();
}

}  // namespace

int main(int argc, char** argv) {
  const sgp::util::CliArgs args(argc, argv);
  const std::string edges_path = args.get_string("edges", "");
  const std::string out_path = args.get_string("out", "release.bin");
  if (edges_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s --edges graph.txt --out release.bin "
                 "[--epsilon E] [--delta D] [--dim M] "
                 "[--projection gaussian|achlioptas] [--seed S] "
                 "[--kernel auto|scalar|generic|avx2|avx512] "
                 "[--streaming] [--shard-rows R | --max-memory-mb MB] "
                 "[--threads T] [--no-resume] "
                 "[--workers N [--lease-timeout S] [--worker-fault-spec F]] "
                 "[--io-attempts K] [--ledger budget.ledger "
                 "--budget-epsilon E --budget-delta D] "
                 "[--metrics-out metrics.json] [--trace]\n",
                 args.program().c_str());
    return sgp::tools::kExitUsage;
  }
  sgp::tools::ObsScope obs_scope(args, "sgp_publish");

  // Hidden child-process mode: the distributed coordinator re-invokes this
  // binary with --worker plus its shard assignment (docs/scaling.md).
  if (args.get_bool("worker", false)) {
    return sgp::tools::run_tool(
        [&]() -> int { return sgp::core::run_publish_worker(args); });
  }

  return sgp::tools::run_tool([&]() -> int {
    const auto policy = args.get_bool("preserve-ids", false)
                            ? sgp::graph::IdPolicy::kPreserve
                            : sgp::graph::IdPolicy::kCompact;

    sgp::core::RandomProjectionPublisher::Options opt;
    opt.projection_dim = static_cast<std::size_t>(args.get_int("dim", 100));
    opt.params = {args.get_double("epsilon", 1.0),
                  args.get_double("delta", 1e-6)};
    opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    if (args.get_string("projection", "gaussian") == "achlioptas") {
      opt.projection = sgp::core::ProjectionKind::kAchlioptas;
    }
    opt.kernel =
        sgp::random::parse_kernel_variant(args.get_string("kernel", "auto"));
    const std::string ledger_path = args.get_string("ledger", "");
    // The cap is the point of the ledger — refuse to default it silently.
    if (!ledger_path.empty() &&
        args.get_string("budget-epsilon", "").empty()) {
      throw sgp::util::PreconditionError("--ledger requires --budget-epsilon");
    }

    const auto shard_rows_flag =
        static_cast<std::size_t>(args.get_int("shard-rows", 0));
    const auto max_memory_mb =
        static_cast<std::size_t>(args.get_int("max-memory-mb", 0));
    const auto workers_flag =
        static_cast<std::size_t>(args.get_int("workers", 0));
    if (shard_rows_flag > 0 || max_memory_mb > 0 || workers_flag > 0) {
      // Out-of-core path: the graph is never materialized — the reader
      // scans the file once for shape, then streams one row shard at a
      // time through publish_sharded (or hands shards to worker processes
      // under --workers).
      sgp::obs::ScopedTimer scan_timer(sgp::obs::names::kToolLoadGraph);
      sgp::graph::EdgeListShardReader reader(edges_path, policy);
      std::fprintf(stderr, "scanned %zu nodes / %zu edge records in %.2fs\n",
                   reader.num_nodes(), reader.edge_records(),
                   scan_timer.stop());

      sgp::obs::ScopedTimer publish_timer(sgp::obs::names::kToolPublish);
      sgp::core::ShardedPublishOptions shard_opt;
      shard_opt.publish = opt;
      if (shard_rows_flag > 0) {
        shard_opt.shard_rows = shard_rows_flag;
      } else if (max_memory_mb > 0) {
        shard_opt.shard_rows = sgp::core::shard_rows_for_memory(
            max_memory_mb, opt.projection_dim);
      } else {
        // --workers alone: ~4 shards per worker keeps the reassignment
        // granularity fine enough that losing a worker loses little work.
        shard_opt.shard_rows = std::max<std::size_t>(
            1, (reader.num_nodes() + 4 * workers_flag - 1) /
                   (4 * workers_flag));
      }
      shard_opt.threads =
          static_cast<std::size_t>(args.get_int("threads", 0));
      shard_opt.resume = !args.get_bool("no-resume", false);
      // Distributed runs default to riding out transient shard-IO
      // failures; the single-process path stays fail-fast unless asked.
      shard_opt.io_retry.max_attempts = static_cast<std::size_t>(
          args.get_int("io-attempts", workers_flag > 0 ? 3 : 1));

      // A leftover checkpoint or lease file means the last charged release
      // never finished: finish it under its original (already-paid)
      // options instead of charging the budget a second time.
      const bool unfinished =
          std::filesystem::exists(out_path + ".ckpt") ||
          std::filesystem::exists(out_path + ".lease");
      std::optional<sgp::core::PublishingSession> session;
      if (!ledger_path.empty()) {
        sgp::core::PublishingSession::Options sopt;
        sopt.publisher = opt;
        sopt.total_budget = {args.get_double("budget-epsilon", 10.0),
                             args.get_double("budget-delta", 1e-5)};
        session.emplace(sopt, ledger_path);
        const bool finish_last =
            shard_opt.resume && session->num_releases() > 0 && unfinished;
        shard_opt.publish =
            finish_last ? session->release_options(session->num_releases())
                        : session->begin_release();
      }

      if (workers_flag > 0) {
        sgp::core::DistributedPublishOptions dopt;
        dopt.sharded = shard_opt;
        dopt.workers = workers_flag;
        dopt.worker_program = self_program(args);
        dopt.edges_path = edges_path;
        dopt.id_policy = policy;
        dopt.lease_timeout_seconds = args.get_double("lease-timeout", 30.0);
        const std::string worker_spec =
            args.get_string("worker-fault-spec", "");
        if (!worker_spec.empty()) {
          dopt.worker_env[0] = {{"SGP_FAULT_SPEC", worker_spec}};
        }
        if (obs_scope.metrics_on()) {
          // Cross-process plane: per-process sidecars under this prefix,
          // merged into one "sgp-obs-report v2" when obs_scope closes.
          dopt.obs_sidecar_prefix = out_path + ".obs.";
        }
        const auto result =
            sgp::core::publish_distributed(reader, dopt, out_path);
        if (!result.trace_id.empty()) {
          obs_scope.set_distributed_merge(dopt.obs_sidecar_prefix,
                                          result.trace_id);
        }
        std::fprintf(
            stderr,
            "published %s: %zu shards over %zu workers spawned (%zu lost, "
            "%zu leases reclaimed, %zu in-process, %zu resumed) in %.2fs\n",
            out_path.c_str(), result.shards_total, result.workers_spawned,
            result.workers_lost, result.leases_reclaimed,
            result.shards_inprocess, result.shards_resumed,
            publish_timer.stop());
        if (session) {
          std::fprintf(stderr, "session now at %s (%.3f epsilon left)\n",
                       session->spent().to_string().c_str(),
                       session->remaining_epsilon());
        }
        return sgp::tools::kExitOk;
      }

      const auto result =
          sgp::core::publish_sharded(reader, shard_opt, out_path);
      if (session) {
        std::fprintf(stderr,
                     "published %s: %zu shards (%zu resumed); session now at "
                     "%s (%.3f epsilon left)\n",
                     out_path.c_str(), result.shards_total,
                     result.shards_resumed,
                     session->spent().to_string().c_str(),
                     session->remaining_epsilon());
        return sgp::tools::kExitOk;
      }
      std::fprintf(stderr,
                   "published %s: %zu shards of %zu rows (%zu resumed) under "
                   "%s in %.2fs\n",
                   out_path.c_str(), result.shards_total, shard_opt.shard_rows,
                   result.shards_resumed, opt.params.to_string().c_str(),
                   publish_timer.stop());
      return sgp::tools::kExitOk;
    }

    sgp::obs::ScopedTimer load_timer(sgp::obs::names::kToolLoadGraph);
    const auto graph = sgp::graph::read_edge_list_file(edges_path, policy);
    std::fprintf(stderr, "loaded %zu nodes / %zu edges in %.2fs\n",
                 graph.num_nodes(), graph.num_edges(), load_timer.stop());

    sgp::obs::ScopedTimer publish_timer(sgp::obs::names::kToolPublish);
    if (!ledger_path.empty()) {
      sgp::core::PublishingSession::Options sopt;
      sopt.publisher = opt;
      sopt.total_budget = {args.get_double("budget-epsilon", 10.0),
                           args.get_double("budget-delta", 1e-5)};
      sgp::core::PublishingSession session(sopt, ledger_path);
      std::fprintf(stderr, "ledger %s: %zu prior releases, spent %s\n",
                   ledger_path.c_str(), session.num_releases(),
                   session.spent().to_string().c_str());
      const auto release = session.publish(graph);
      sgp::core::save_published_file(release, out_path);
      std::fprintf(stderr,
                   "published %s; session now at %s (%.3f epsilon left)\n",
                   out_path.c_str(), session.spent().to_string().c_str(),
                   session.remaining_epsilon());
      return sgp::tools::kExitOk;
    }
    if (args.get_bool("streaming", false)) {
      std::ofstream out(out_path, std::ios::binary);
      if (!out.good()) {
        throw sgp::util::IoError("cannot open " + out_path);
      }
      sgp::core::publish_to_stream(graph, opt, out);
    } else {
      const auto release =
          sgp::core::RandomProjectionPublisher(opt).publish(graph);
      sgp::core::save_published_file(release, out_path);
    }
    std::fprintf(stderr, "published %s under %s in %.2fs\n", out_path.c_str(),
                 opt.params.to_string().c_str(), publish_timer.stop());
    return sgp::tools::kExitOk;
  });
}
