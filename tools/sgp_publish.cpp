// sgp_publish — command-line publisher: edge list in, DP release out.
//
//   sgp_publish --edges graph.txt --out release.bin
//               [--epsilon 1.0] [--delta 1e-6] [--dim 100]
//               [--projection gaussian|achlioptas] [--seed 7] [--streaming]
//
// With --streaming the release is computed row by row (≈half the peak
// memory); output bytes are identical either way.
#include <cstdio>
#include <fstream>

#include "core/serialization.hpp"
#include "graph/io.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const sgp::util::CliArgs args(argc, argv);
  const std::string edges_path = args.get_string("edges", "");
  const std::string out_path = args.get_string("out", "release.bin");
  if (edges_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s --edges graph.txt --out release.bin "
                 "[--epsilon E] [--delta D] [--dim M] "
                 "[--projection gaussian|achlioptas] [--seed S] "
                 "[--streaming]\n",
                 args.program().c_str());
    return 2;
  }

  try {
    sgp::util::WallTimer timer;
    const auto policy = args.get_bool("preserve-ids", false)
                            ? sgp::graph::IdPolicy::kPreserve
                            : sgp::graph::IdPolicy::kCompact;
    const auto graph = sgp::graph::read_edge_list_file(edges_path, policy);
    std::fprintf(stderr, "loaded %zu nodes / %zu edges in %.2fs\n",
                 graph.num_nodes(), graph.num_edges(), timer.seconds());

    sgp::core::RandomProjectionPublisher::Options opt;
    opt.projection_dim = static_cast<std::size_t>(args.get_int("dim", 100));
    opt.params = {args.get_double("epsilon", 1.0),
                  args.get_double("delta", 1e-6)};
    opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    if (args.get_string("projection", "gaussian") == "achlioptas") {
      opt.projection = sgp::core::ProjectionKind::kAchlioptas;
    }

    timer.reset();
    if (args.get_bool("streaming", false)) {
      std::ofstream out(out_path, std::ios::binary);
      if (!out.good()) {
        std::fprintf(stderr, "error: cannot open %s\n", out_path.c_str());
        return 1;
      }
      sgp::core::publish_to_stream(graph, opt, out);
    } else {
      const auto release =
          sgp::core::RandomProjectionPublisher(opt).publish(graph);
      sgp::core::save_published_file(release, out_path);
    }
    std::fprintf(stderr, "published %s under %s in %.2fs\n", out_path.c_str(),
                 opt.params.to_string().c_str(), timer.seconds());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
