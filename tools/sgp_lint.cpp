// sgp_lint — repo-invariant static analysis (see docs/static_analysis.md).
//
//   sgp_lint --root . [--format text|json|sarif] [--out report.json]
//            [--rules R1,R3] [--baseline .lint-baseline.json]
//            [--no-baseline] [--write-baseline]
//            [--threads N] [--cache] [--cache-path .lint-cache.json]
//
// Exit codes extend the shared tool contract with the conventional linter
// "findings" code:
//
//   0  clean (or all findings baselined)
//   1  findings reported
//   2  usage error
//   3  IO / malformed baseline
//
// With no --baseline flag, <root>/.lint-baseline.json is applied when it
// exists. --write-baseline rewrites that file so the current findings
// become the grandfathered set (and exits 0).
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "analysis/sarif.hpp"
#include "tool_common.hpp"
#include "util/cli.hpp"
#include "util/errors.hpp"

namespace {

std::vector<std::string> split_rules(const std::string& spec) {
  std::vector<std::string> out;
  std::istringstream in(spec);
  std::string id;
  while (std::getline(in, id, ',')) {
    if (!id.empty()) out.push_back(id);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const sgp::util::CliArgs args(argc, argv);
  return sgp::tools::run_tool([&]() -> int {
    sgp::analysis::LintOptions options;
    options.root = args.get_string("root", ".");
    options.rules = split_rules(args.get_string("rules", ""));
    for (const std::string& id : options.rules) {
      bool known = false;
      for (std::string_view all : sgp::analysis::kAllRuleIds) {
        known = known || id == all;
      }
      if (!known) {
        std::string valid;
        for (std::string_view all : sgp::analysis::kAllRuleIds) {
          if (!valid.empty()) valid += " ";
          valid += all;
        }
        throw sgp::util::PreconditionError("unknown rule id: " + id +
                                           " (valid: " + valid + ")");
      }
    }
    const std::string format = args.get_string("format", "text");
    if (format != "text" && format != "json" && format != "sarif") {
      throw sgp::util::PreconditionError(
          "--format must be 'text', 'json', or 'sarif', got '" + format +
          "'");
    }
    options.threads =
        static_cast<std::size_t>(args.get_int("threads", 0));
    options.use_cache = args.get_bool("cache", false);
    options.cache_path = args.get_string(
        "cache-path",
        (std::filesystem::path(options.root) / ".lint-cache.json")
            .string());

    sgp::analysis::LintResult result = sgp::analysis::run_lint(options);
    // Cache accounting goes to stderr only, so reports stay byte-identical
    // warm vs. cold (the property the cache tests pin).
    std::fprintf(stderr,
                 "sgp_lint: %zu file(s) scanned, %zu re-linted, %zu from "
                 "cache\n",
                 result.files_scanned, result.files_relinted,
                 result.cache_hits);

    const std::string default_baseline =
        (std::filesystem::path(options.root) / ".lint-baseline.json")
            .string();
    std::string baseline_path = args.get_string("baseline", "");
    const bool explicit_baseline = !baseline_path.empty();
    if (baseline_path.empty()) baseline_path = default_baseline;

    if (args.get_bool("write-baseline", false)) {
      sgp::analysis::Baseline::from_findings(result.findings)
          .save(baseline_path);
      std::fprintf(stderr, "baseline with %zu finding(s) written to %s\n",
                   result.findings.size(), baseline_path.c_str());
      return sgp::tools::kExitOk;
    }

    if (!args.get_bool("no-baseline", false) &&
        (explicit_baseline || std::filesystem::exists(baseline_path))) {
      const auto baseline = sgp::analysis::Baseline::load(baseline_path);
      result.suppressed = baseline.apply(result.findings);
    }

    const std::string out_path = args.get_string("out", "");
    auto render = [&](std::ostream& os) {
      if (format == "json") {
        sgp::analysis::write_lint_report_json(result, options, os);
      } else if (format == "sarif") {
        sgp::analysis::write_lint_report_sarif(result, options, os);
      } else {
        sgp::analysis::write_lint_report_text(result, os);
      }
    };
    if (out_path.empty()) {
      render(std::cout);
    } else {
      std::ofstream os(out_path, std::ios::binary | std::ios::trunc);
      if (!os.good()) {
        throw sgp::util::IoError("cannot open " + out_path);
      }
      render(os);
      os.flush();
      if (!os.good()) {
        throw sgp::util::IoError("failed writing " + out_path);
      }
    }
    return result.findings.empty() ? sgp::tools::kExitOk : 1;
  });
}
