// sgp_lint — repo-invariant static analysis (see docs/static_analysis.md).
//
//   sgp_lint --root . [--format text|json] [--out report.json]
//            [--rules R1,R3] [--baseline .lint-baseline.json]
//            [--no-baseline] [--write-baseline]
//
// Exit codes extend the shared tool contract with the conventional linter
// "findings" code:
//
//   0  clean (or all findings baselined)
//   1  findings reported
//   2  usage error
//   3  IO / malformed baseline
//
// With no --baseline flag, <root>/.lint-baseline.json is applied when it
// exists. --write-baseline rewrites that file so the current findings
// become the grandfathered set (and exits 0).
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "tool_common.hpp"
#include "util/cli.hpp"
#include "util/errors.hpp"

namespace {

std::vector<std::string> split_rules(const std::string& spec) {
  std::vector<std::string> out;
  std::istringstream in(spec);
  std::string id;
  while (std::getline(in, id, ',')) {
    if (!id.empty()) out.push_back(id);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const sgp::util::CliArgs args(argc, argv);
  return sgp::tools::run_tool([&]() -> int {
    sgp::analysis::LintOptions options;
    options.root = args.get_string("root", ".");
    options.rules = split_rules(args.get_string("rules", ""));
    for (const std::string& id : options.rules) {
      bool known = false;
      for (std::string_view all : sgp::analysis::kAllRuleIds) {
        known = known || id == all;
      }
      if (!known) {
        throw sgp::util::PreconditionError("unknown rule id: " + id);
      }
    }
    const std::string format = args.get_string("format", "text");
    if (format != "text" && format != "json") {
      throw sgp::util::PreconditionError(
          "--format must be 'text' or 'json', got '" + format + "'");
    }

    sgp::analysis::LintResult result = sgp::analysis::run_lint(options);

    const std::string default_baseline =
        (std::filesystem::path(options.root) / ".lint-baseline.json")
            .string();
    std::string baseline_path = args.get_string("baseline", "");
    const bool explicit_baseline = !baseline_path.empty();
    if (baseline_path.empty()) baseline_path = default_baseline;

    if (args.get_bool("write-baseline", false)) {
      sgp::analysis::Baseline::from_findings(result.findings)
          .save(baseline_path);
      std::fprintf(stderr, "baseline with %zu finding(s) written to %s\n",
                   result.findings.size(), baseline_path.c_str());
      return sgp::tools::kExitOk;
    }

    if (!args.get_bool("no-baseline", false) &&
        (explicit_baseline || std::filesystem::exists(baseline_path))) {
      const auto baseline = sgp::analysis::Baseline::load(baseline_path);
      result.suppressed = baseline.apply(result.findings);
    }

    const std::string out_path = args.get_string("out", "");
    auto render = [&](std::ostream& os) {
      if (format == "json") {
        sgp::analysis::write_lint_report_json(result, options, os);
      } else {
        sgp::analysis::write_lint_report_text(result, os);
      }
    };
    if (out_path.empty()) {
      render(std::cout);
    } else {
      std::ofstream os(out_path, std::ios::binary | std::ios::trunc);
      if (!os.good()) {
        throw sgp::util::IoError("cannot open " + out_path);
      }
      render(os);
      os.flush();
      if (!os.good()) {
        throw sgp::util::IoError("failed writing " + out_path);
      }
    }
    return result.findings.empty() ? sgp::tools::kExitOk : 1;
  });
}
