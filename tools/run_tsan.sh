#!/usr/bin/env bash
# Thread-sanitizer job: build with -DSGP_SANITIZE=thread and run the suites
# labeled `tsan` — the ones exercising the thread pool (nested parallel_for),
# the fused publish kernel, and the counter-RNG determinism-across-threads
# tests. Intended for CI and for local use after touching threading code:
#
#   tools/run_tsan.sh [build-dir]           # default build dir: build-tsan
#
# Exits non-zero on any data race or test failure.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSGP_SANITIZE=thread
cmake --build "${BUILD_DIR}" -j --target util_test linalg_test core_test \
  kernel_differential_test
ctest --test-dir "${BUILD_DIR}" -L tsan --output-on-failure -j "$(nproc)"
