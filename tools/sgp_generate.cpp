// sgp_generate — synthesize benchmark graphs as edge lists, so the whole
// tool pipeline (generate → publish → analyze/stats) runs without any
// external data.
//
//   sgp_generate --model sbm --communities 8 --size 500 --p-in 0.2
//                --p-out 0.004 --out graph.txt [--seed 7]
//   sgp_generate --model ba --nodes 4000 --attach 22 --out graph.txt
//   sgp_generate --model er --nodes 1000 --p 0.01 --out graph.txt
//   sgp_generate --model ws --nodes 1000 --k 10 --beta 0.1 --out graph.txt
//
// For --model sbm the planted community labels are written next to the
// edge list as <out>.labels (one "node community" pair per line).
//
// Shares the observability flags of all sgp_* tools:
// [--metrics-out metrics.json [--metrics-format prometheus]] [--trace]
#include <cstdio>
#include <fstream>
#include <string>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/metrics.hpp"
#include "obs/metric_names.hpp"
#include "obs/scoped_timer.hpp"
#include "tool_common.hpp"
#include "util/cli.hpp"
#include "util/errors.hpp"

namespace {

void write_labels(const std::vector<std::uint32_t>& labels,
                  const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    throw sgp::util::IoError("cannot open " + path);
  }
  out << "# node community\n";
  for (std::size_t u = 0; u < labels.size(); ++u) {
    out << u << ' ' << labels[u] << '\n';
  }
  out.flush();
  if (!out.good()) {
    throw sgp::util::IoError("failed writing labels to " + path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const sgp::util::CliArgs args(argc, argv);
  const std::string model = args.get_string("model", "");
  const std::string out_path = args.get_string("out", "graph.txt");
  if (model.empty()) {
    std::fprintf(stderr,
                 "usage: %s --model sbm|ba|er|ws --out graph.txt [model "
                 "params; see header comment] "
                 "[--metrics-out metrics.json] [--trace]\n",
                 args.program().c_str());
    return sgp::tools::kExitUsage;
  }
  const sgp::tools::ObsScope obs_scope(args, "sgp_generate");

  return sgp::tools::run_tool([&]() -> int {
    sgp::obs::ScopedTimer generate_timer(sgp::obs::names::kToolGenerate);
    generate_timer.attr("model", model);
    sgp::random::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));
    sgp::graph::Graph graph;

    if (model == "sbm") {
      const auto communities =
          static_cast<std::size_t>(args.get_int("communities", 8));
      const auto size = static_cast<std::size_t>(args.get_int("size", 500));
      const auto planted = sgp::graph::stochastic_block_model(
          std::vector<std::size_t>(communities, size),
          args.get_double("p-in", 0.2), args.get_double("p-out", 0.004), rng);
      graph = planted.graph;
      write_labels(planted.labels, out_path + ".labels");
    } else if (model == "ba") {
      graph = sgp::graph::barabasi_albert(
          static_cast<std::size_t>(args.get_int("nodes", 4000)),
          static_cast<std::size_t>(args.get_int("attach", 5)), rng);
    } else if (model == "er") {
      graph = sgp::graph::erdos_renyi(
          static_cast<std::size_t>(args.get_int("nodes", 1000)),
          args.get_double("p", 0.01), rng);
    } else if (model == "ws") {
      graph = sgp::graph::watts_strogatz(
          static_cast<std::size_t>(args.get_int("nodes", 1000)),
          static_cast<std::size_t>(args.get_int("k", 10)),
          args.get_double("beta", 0.1), rng);
    } else {
      std::fprintf(stderr, "error: unknown model '%s'\n", model.c_str());
      return sgp::tools::kExitUsage;
    }

    sgp::graph::write_edge_list_file(graph, out_path);
    const auto stats = sgp::graph::degree_stats(graph);
    std::fprintf(stderr,
                 "wrote %s: %zu nodes, %zu edges, avg deg %.1f, max deg %zu\n",
                 out_path.c_str(), graph.num_nodes(), graph.num_edges(),
                 stats.mean, stats.max);
    return sgp::tools::kExitOk;
  });
}
