#!/usr/bin/env bash
# Full static-analysis and sanitizer matrix (docs/static_analysis.md):
#
#   1. sgp-lint        repo-invariant rules R1-R10 against the tree,
#                      modulo the checked-in .lint-baseline.json; emits
#                      the machine-readable build/lint.sarif artifact and
#                      gates on a warm-vs-cold cache byte-diff
#   2. strict warnings -Wall -Wextra -Wconversion -Werror (SGP_WERROR)
#   3. clang-tidy      AST-level checks (.clang-tidy) — skipped with a
#                      notice when the toolchain does not ship clang-tidy
#   4. ASan + UBSan    full ctest suite under address+undefined sanitizers
#                      (suppressions in tools/suppressions/)
#   5. TSan            thread-labeled suites via tools/run_tsan.sh
#   6. chaos suites    `ctest -L chaos`: process-level fault injection —
#                      worker kills, lease reclaim, ledger exactly-once
#                      (docs/robustness.md); also part of the default run,
#                      repeated here as its own gate
#   7. slow suites     `ctest -C slow -L slow`: the full shard×thread×
#                      process differential matrix and deep statistical
#                      tests (docs/scaling.md) that the default ctest run
#                      skips
#   8. obs plane       a distributed publish with --metrics-out, then the
#                      merged v2 report through sgp_bench_check and
#                      sgp_trace (--chrome / --validate-chrome / --summary)
#                      end to end (docs/observability.md)
#   9. kernel diff     scalar-vs-vectorized differential: the simd-labeled
#                      suites (per-variant byte equality across publish
#                      paths) plus an end-to-end SGP_FORCE_KERNEL sweep of
#                      sgp_publish, asserting each vector variant's bytes
#                      match its forced re-run and the scalar bytes stay
#                      distinct under the counter-v1 tag (DESIGN.md)
#  10. scenario grid   `ctest -L scenario`: the PARAMETERIZE/PICK engine,
#                      the full mechanism × generator × (ε, δ) × task
#                      structural grid, the migration coverage pins, and
#                      the BENCH_E14.json emit/validate fixture pair
#                      (docs/mechanisms.md)
#
#   tools/run_static_analysis.sh [--fast]
#
# --fast runs layers 1-2 only (the ones a pre-commit hook wants). Exits
# non-zero if any layer fails; skipped layers are reported but don't fail
# the run.
set -euo pipefail

cd "$(dirname "$0")/.."
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

fail=0
note() { printf '\n=== %s ===\n' "$*"; }

# --- 1. sgp-lint ------------------------------------------------------------
note "sgp-lint (rules R1-R10)"
cmake -B build -S . >/dev/null
cmake --build build -j --target sgp_lint >/dev/null
if ./build/tools/sgp_lint --root .; then
  echo "sgp-lint: clean"
else
  echo "sgp-lint: FINDINGS (see above)"
  fail=1
fi
# Machine-readable artifact for CI ingestion, emitted findings or not
# (the exit code above is the gate).
./build/tools/sgp_lint --root . --format sarif --out build/lint.sarif || true
echo "sgp-lint: SARIF artifact at build/lint.sarif"

# Warm-vs-cold cache diff: an incremental run must report byte-identically
# to a from-scratch one, and a warm run on an unchanged tree must re-lint
# nothing (docs/static_analysis.md, "Parallel walk and the incremental
# cache").
lint_cache_dir="$(mktemp -d)"
./build/tools/sgp_lint --root . --no-baseline --format json \
  --cache --cache-path "${lint_cache_dir}/cache.json" \
  --out "${lint_cache_dir}/cold.json" 2>/dev/null || true
./build/tools/sgp_lint --root . --no-baseline --format json \
  --cache --cache-path "${lint_cache_dir}/cache.json" \
  --out "${lint_cache_dir}/warm.json" 2> "${lint_cache_dir}/warm.stats" || true
if cmp -s "${lint_cache_dir}/cold.json" "${lint_cache_dir}/warm.json" &&
   grep -q ", 0 re-linted," "${lint_cache_dir}/warm.stats"; then
  echo "sgp-lint cache: warm run byte-identical, 0 files re-linted"
else
  echo "sgp-lint cache: warm/cold DIVERGED"
  fail=1
fi
rm -rf "${lint_cache_dir}"

# --- 2. strict warnings -----------------------------------------------------
note "strict warnings (-Wall -Wextra -Wconversion -Werror)"
cmake -B build-werror -S . -DSGP_WERROR=ON >/dev/null
if cmake --build build-werror -j >/dev/null; then
  echo "warnings: clean"
else
  echo "warnings: FAILED"
  fail=1
fi

# --- 3. clang-tidy ----------------------------------------------------------
note "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  # compile_commands.json comes from the werror build above.
  mapfile -t tidy_sources < <(git ls-files 'src/*.cpp' 'tools/*.cpp')
  if clang-tidy -p build-werror --quiet "${tidy_sources[@]}"; then
    echo "clang-tidy: clean"
  else
    echo "clang-tidy: FINDINGS"
    fail=1
  fi
else
  echo "clang-tidy: not installed in this toolchain — skipped"
fi

if [[ "${FAST}" == "1" ]]; then
  [[ "${fail}" == "0" ]] && echo && echo "fast matrix: PASS"
  exit "${fail}"
fi

# --- 4. ASan + UBSan --------------------------------------------------------
note "AddressSanitizer + UndefinedBehaviorSanitizer"
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSGP_SANITIZE="address;undefined" >/dev/null
cmake --build build-asan -j >/dev/null
export ASAN_OPTIONS="detect_leaks=1:suppressions=$(pwd)/tools/suppressions/asan.supp"
export LSAN_OPTIONS="suppressions=$(pwd)/tools/suppressions/lsan.supp"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1:suppressions=$(pwd)/tools/suppressions/ubsan.supp"
if ctest --test-dir build-asan --output-on-failure -j "$(nproc)"; then
  echo "asan+ubsan: clean"
else
  echo "asan+ubsan: FAILED"
  fail=1
fi

# --- 5. TSan ----------------------------------------------------------------
note "ThreadSanitizer (tsan-labeled suites)"
export TSAN_OPTIONS="suppressions=$(pwd)/tools/suppressions/tsan.supp"
if tools/run_tsan.sh; then
  echo "tsan: clean"
else
  echo "tsan: FAILED"
  fail=1
fi

# --- 6. chaos suites --------------------------------------------------------
note "chaos suites (ctest -L chaos)"
cmake --build build -j >/dev/null
if ctest --test-dir build -L chaos --output-on-failure; then
  echo "chaos suites: clean"
else
  echo "chaos suites: FAILED"
  fail=1
fi

# --- 7. slow suites ---------------------------------------------------------
note "slow suites (ctest -C slow -L slow)"
if ctest --test-dir build -C slow -L slow --output-on-failure -j "$(nproc)"; then
  echo "slow suites: clean"
else
  echo "slow suites: FAILED"
  fail=1
fi

# --- 8. obs plane -----------------------------------------------------------
note "observability plane (merged v2 report + sgp_trace)"
cmake --build build -j --target sgp_publish sgp_trace sgp_bench_check \
  sgp_generate >/dev/null
obs_dir="$(mktemp -d)"
trap 'rm -rf "${obs_dir}"' EXIT
obs_ok=1
./build/tools/sgp_generate --model ba --nodes 200 --out "${obs_dir}/g.edges" \
  >/dev/null 2>&1 || obs_ok=0
./build/tools/sgp_publish --edges "${obs_dir}/g.edges" --out "${obs_dir}/r.bin" \
  --dim 16 --seed 7 --shard-rows 32 --workers 2 \
  --metrics-out "${obs_dir}/merged.json" >/dev/null 2>&1 || obs_ok=0
./build/tools/sgp_bench_check "${obs_dir}/merged.json" || obs_ok=0
./build/tools/sgp_trace --report "${obs_dir}/merged.json" \
  --chrome "${obs_dir}/chrome.json" --summary >/dev/null || obs_ok=0
./build/tools/sgp_trace --validate-chrome "${obs_dir}/chrome.json" || obs_ok=0
if [[ "${obs_ok}" == "1" ]]; then
  echo "obs plane: clean"
else
  echo "obs plane: FAILED"
  fail=1
fi

# --- 9. kernel differential -------------------------------------------------
note "kernel differential (scalar vs vectorized)"
kd_ok=1
# The simd-labeled ctest suites: per-variant byte equality across in-memory /
# streaming / sharded paths, and the MICRO speedup gate.
ctest --test-dir build -L simd --output-on-failure || kd_ok=0
# End-to-end via the CLI env override: publishing twice under the same forced
# kernel must be byte-stable, and the vectorized release must differ from
# scalar (it carries the counter-v1-simd tag).
kd_dir="$(mktemp -d)"
./build/tools/sgp_generate --model ba --nodes 150 --out "${kd_dir}/g.edges" \
  >/dev/null 2>&1 || kd_ok=0
for variant in scalar generic avx2 avx512; do
  if ! SGP_FORCE_KERNEL="${variant}" ./build/tools/sgp_publish \
      --edges "${kd_dir}/g.edges" --out "${kd_dir}/${variant}.bin" \
      --dim 16 --seed 7 >/dev/null 2>&1; then
    if [[ "${variant}" == "scalar" || "${variant}" == "generic" ]]; then
      echo "kernel diff: forced ${variant} publish failed"; kd_ok=0
    else
      echo "kernel diff: ${variant} unsupported on this machine — skipped"
    fi
    continue
  fi
  SGP_FORCE_KERNEL="${variant}" ./build/tools/sgp_publish \
    --edges "${kd_dir}/g.edges" --out "${kd_dir}/${variant}.rerun.bin" \
    --dim 16 --seed 7 >/dev/null 2>&1 || kd_ok=0
  cmp -s "${kd_dir}/${variant}.bin" "${kd_dir}/${variant}.rerun.bin" || {
    echo "kernel diff: ${variant} re-run bytes differ"; kd_ok=0; }
  if [[ "${variant}" != "scalar" && -f "${kd_dir}/scalar.bin" ]]; then
    cmp -s "${kd_dir}/${variant}.bin" "${kd_dir}/generic.bin" || {
      echo "kernel diff: ${variant} disagrees with generic"; kd_ok=0; }
    cmp -s "${kd_dir}/${variant}.bin" "${kd_dir}/scalar.bin" && {
      echo "kernel diff: ${variant} aliases the scalar mapping"; kd_ok=0; }
  fi
done
rm -rf "${kd_dir}"
if [[ "${kd_ok}" == "1" ]]; then
  echo "kernel differential: clean"
else
  echo "kernel differential: FAILED"
  fail=1
fi

# --- 10. scenario grid --------------------------------------------------------
note "scenario grid (ctest -L scenario)"
cmake --build build -j --target scenario_test bench_e14_mechanisms \
  sgp_bench_check >/dev/null
if ctest --test-dir build -L scenario --output-on-failure -j "$(nproc)"; then
  echo "scenario grid: clean"
else
  echo "scenario grid: FAILED"
  fail=1
fi

echo
if [[ "${fail}" == "0" ]]; then
  echo "static-analysis matrix: PASS"
else
  echo "static-analysis matrix: FAIL"
fi
exit "${fail}"
