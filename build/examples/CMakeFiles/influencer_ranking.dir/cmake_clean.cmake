file(REMOVE_RECURSE
  "CMakeFiles/influencer_ranking.dir/influencer_ranking.cpp.o"
  "CMakeFiles/influencer_ranking.dir/influencer_ranking.cpp.o.d"
  "influencer_ranking"
  "influencer_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/influencer_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
