# Empty compiler generated dependencies file for influencer_ranking.
# This may be replaced when dependencies are built.
