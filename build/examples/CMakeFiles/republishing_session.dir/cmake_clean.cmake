file(REMOVE_RECURSE
  "CMakeFiles/republishing_session.dir/republishing_session.cpp.o"
  "CMakeFiles/republishing_session.dir/republishing_session.cpp.o.d"
  "republishing_session"
  "republishing_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/republishing_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
