# Empty compiler generated dependencies file for republishing_session.
# This may be replaced when dependencies are built.
