# Empty compiler generated dependencies file for privacy_budget_planner.
# This may be replaced when dependencies are built.
