file(REMOVE_RECURSE
  "CMakeFiles/privacy_budget_planner.dir/privacy_budget_planner.cpp.o"
  "CMakeFiles/privacy_budget_planner.dir/privacy_budget_planner.cpp.o.d"
  "privacy_budget_planner"
  "privacy_budget_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_budget_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
