# Empty dependencies file for bench_e7_scalability.
# This may be replaced when dependencies are built.
