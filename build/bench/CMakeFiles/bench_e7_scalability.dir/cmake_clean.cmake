file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_scalability.dir/bench_e7_scalability.cpp.o"
  "CMakeFiles/bench_e7_scalability.dir/bench_e7_scalability.cpp.o.d"
  "bench_e7_scalability"
  "bench_e7_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
