# Empty compiler generated dependencies file for bench_e5_ranking_eps.
# This may be replaced when dependencies are built.
