file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_ranking_eps.dir/bench_e5_ranking_eps.cpp.o"
  "CMakeFiles/bench_e5_ranking_eps.dir/bench_e5_ranking_eps.cpp.o.d"
  "bench_e5_ranking_eps"
  "bench_e5_ranking_eps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_ranking_eps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
