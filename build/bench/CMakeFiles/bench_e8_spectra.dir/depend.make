# Empty dependencies file for bench_e8_spectra.
# This may be replaced when dependencies are built.
