file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_spectra.dir/bench_e8_spectra.cpp.o"
  "CMakeFiles/bench_e8_spectra.dir/bench_e8_spectra.cpp.o.d"
  "bench_e8_spectra"
  "bench_e8_spectra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_spectra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
