file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_datasets.dir/bench_e1_datasets.cpp.o"
  "CMakeFiles/bench_e1_datasets.dir/bench_e1_datasets.cpp.o.d"
  "bench_e1_datasets"
  "bench_e1_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
