# Empty compiler generated dependencies file for bench_e12_degree_distribution.
# This may be replaced when dependencies are built.
