file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_surrogate.dir/bench_e11_surrogate.cpp.o"
  "CMakeFiles/bench_e11_surrogate.dir/bench_e11_surrogate.cpp.o.d"
  "bench_e11_surrogate"
  "bench_e11_surrogate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_surrogate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
