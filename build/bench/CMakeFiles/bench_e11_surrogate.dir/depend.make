# Empty dependencies file for bench_e11_surrogate.
# This may be replaced when dependencies are built.
