# Empty dependencies file for bench_e10_link_probing.
# This may be replaced when dependencies are built.
