file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_link_probing.dir/bench_e10_link_probing.cpp.o"
  "CMakeFiles/bench_e10_link_probing.dir/bench_e10_link_probing.cpp.o.d"
  "bench_e10_link_probing"
  "bench_e10_link_probing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_link_probing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
