# Empty dependencies file for bench_e3_clustering_eps.
# This may be replaced when dependencies are built.
