# Empty dependencies file for bench_e6_ranking_depth.
# This may be replaced when dependencies are built.
