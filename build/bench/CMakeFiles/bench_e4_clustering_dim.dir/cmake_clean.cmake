file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_clustering_dim.dir/bench_e4_clustering_dim.cpp.o"
  "CMakeFiles/bench_e4_clustering_dim.dir/bench_e4_clustering_dim.cpp.o.d"
  "bench_e4_clustering_dim"
  "bench_e4_clustering_dim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_clustering_dim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
