# Empty compiler generated dependencies file for bench_e4_clustering_dim.
# This may be replaced when dependencies are built.
