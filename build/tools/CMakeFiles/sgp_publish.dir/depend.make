# Empty dependencies file for sgp_publish.
# This may be replaced when dependencies are built.
