file(REMOVE_RECURSE
  "CMakeFiles/sgp_publish.dir/sgp_publish.cpp.o"
  "CMakeFiles/sgp_publish.dir/sgp_publish.cpp.o.d"
  "sgp_publish"
  "sgp_publish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgp_publish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
