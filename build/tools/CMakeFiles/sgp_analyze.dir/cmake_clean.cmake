file(REMOVE_RECURSE
  "CMakeFiles/sgp_analyze.dir/sgp_analyze.cpp.o"
  "CMakeFiles/sgp_analyze.dir/sgp_analyze.cpp.o.d"
  "sgp_analyze"
  "sgp_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgp_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
