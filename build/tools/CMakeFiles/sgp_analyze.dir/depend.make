# Empty dependencies file for sgp_analyze.
# This may be replaced when dependencies are built.
