file(REMOVE_RECURSE
  "CMakeFiles/sgp_generate.dir/sgp_generate.cpp.o"
  "CMakeFiles/sgp_generate.dir/sgp_generate.cpp.o.d"
  "sgp_generate"
  "sgp_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgp_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
