# Empty compiler generated dependencies file for sgp_generate.
# This may be replaced when dependencies are built.
