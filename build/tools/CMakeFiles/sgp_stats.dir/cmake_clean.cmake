file(REMOVE_RECURSE
  "CMakeFiles/sgp_stats.dir/sgp_stats.cpp.o"
  "CMakeFiles/sgp_stats.dir/sgp_stats.cpp.o.d"
  "sgp_stats"
  "sgp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
