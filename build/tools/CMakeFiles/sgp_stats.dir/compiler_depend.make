# Empty compiler generated dependencies file for sgp_stats.
# This may be replaced when dependencies are built.
