
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/kmeans.cpp" "src/CMakeFiles/sgp.dir/cluster/kmeans.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/cluster/kmeans.cpp.o.d"
  "/root/repo/src/cluster/louvain.cpp" "src/CMakeFiles/sgp.dir/cluster/louvain.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/cluster/louvain.cpp.o.d"
  "/root/repo/src/cluster/metrics.cpp" "src/CMakeFiles/sgp.dir/cluster/metrics.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/cluster/metrics.cpp.o.d"
  "/root/repo/src/cluster/select_k.cpp" "src/CMakeFiles/sgp.dir/cluster/select_k.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/cluster/select_k.cpp.o.d"
  "/root/repo/src/cluster/silhouette.cpp" "src/CMakeFiles/sgp.dir/cluster/silhouette.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/cluster/silhouette.cpp.o.d"
  "/root/repo/src/cluster/spectral.cpp" "src/CMakeFiles/sgp.dir/cluster/spectral.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/cluster/spectral.cpp.o.d"
  "/root/repo/src/core/baselines.cpp" "src/CMakeFiles/sgp.dir/core/baselines.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/core/baselines.cpp.o.d"
  "/root/repo/src/core/projection.cpp" "src/CMakeFiles/sgp.dir/core/projection.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/core/projection.cpp.o.d"
  "/root/repo/src/core/publisher.cpp" "src/CMakeFiles/sgp.dir/core/publisher.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/core/publisher.cpp.o.d"
  "/root/repo/src/core/reconstruction.cpp" "src/CMakeFiles/sgp.dir/core/reconstruction.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/core/reconstruction.cpp.o.d"
  "/root/repo/src/core/serialization.cpp" "src/CMakeFiles/sgp.dir/core/serialization.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/core/serialization.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/CMakeFiles/sgp.dir/core/session.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/core/session.cpp.o.d"
  "/root/repo/src/core/stats_publisher.cpp" "src/CMakeFiles/sgp.dir/core/stats_publisher.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/core/stats_publisher.cpp.o.d"
  "/root/repo/src/core/surrogate.cpp" "src/CMakeFiles/sgp.dir/core/surrogate.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/core/surrogate.cpp.o.d"
  "/root/repo/src/core/theory.cpp" "src/CMakeFiles/sgp.dir/core/theory.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/core/theory.cpp.o.d"
  "/root/repo/src/dp/accountant.cpp" "src/CMakeFiles/sgp.dir/dp/accountant.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/dp/accountant.cpp.o.d"
  "/root/repo/src/dp/mechanisms.cpp" "src/CMakeFiles/sgp.dir/dp/mechanisms.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/dp/mechanisms.cpp.o.d"
  "/root/repo/src/dp/postprocess.cpp" "src/CMakeFiles/sgp.dir/dp/postprocess.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/dp/postprocess.cpp.o.d"
  "/root/repo/src/dp/privacy.cpp" "src/CMakeFiles/sgp.dir/dp/privacy.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/dp/privacy.cpp.o.d"
  "/root/repo/src/dp/rdp_accountant.cpp" "src/CMakeFiles/sgp.dir/dp/rdp_accountant.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/dp/rdp_accountant.cpp.o.d"
  "/root/repo/src/graph/datasets.cpp" "src/CMakeFiles/sgp.dir/graph/datasets.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/graph/datasets.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/sgp.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/sgp.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/sgp.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/kcore.cpp" "src/CMakeFiles/sgp.dir/graph/kcore.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/graph/kcore.cpp.o.d"
  "/root/repo/src/graph/laplacian.cpp" "src/CMakeFiles/sgp.dir/graph/laplacian.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/graph/laplacian.cpp.o.d"
  "/root/repo/src/graph/metrics.cpp" "src/CMakeFiles/sgp.dir/graph/metrics.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/graph/metrics.cpp.o.d"
  "/root/repo/src/graph/sampling.cpp" "src/CMakeFiles/sgp.dir/graph/sampling.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/graph/sampling.cpp.o.d"
  "/root/repo/src/linalg/dense_matrix.cpp" "src/CMakeFiles/sgp.dir/linalg/dense_matrix.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/linalg/dense_matrix.cpp.o.d"
  "/root/repo/src/linalg/eigen_sym.cpp" "src/CMakeFiles/sgp.dir/linalg/eigen_sym.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/linalg/eigen_sym.cpp.o.d"
  "/root/repo/src/linalg/lanczos.cpp" "src/CMakeFiles/sgp.dir/linalg/lanczos.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/linalg/lanczos.cpp.o.d"
  "/root/repo/src/linalg/power_iteration.cpp" "src/CMakeFiles/sgp.dir/linalg/power_iteration.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/linalg/power_iteration.cpp.o.d"
  "/root/repo/src/linalg/qr.cpp" "src/CMakeFiles/sgp.dir/linalg/qr.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/linalg/qr.cpp.o.d"
  "/root/repo/src/linalg/sparse_matrix.cpp" "src/CMakeFiles/sgp.dir/linalg/sparse_matrix.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/linalg/sparse_matrix.cpp.o.d"
  "/root/repo/src/linalg/svd.cpp" "src/CMakeFiles/sgp.dir/linalg/svd.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/linalg/svd.cpp.o.d"
  "/root/repo/src/linalg/vector_ops.cpp" "src/CMakeFiles/sgp.dir/linalg/vector_ops.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/linalg/vector_ops.cpp.o.d"
  "/root/repo/src/random/distributions.cpp" "src/CMakeFiles/sgp.dir/random/distributions.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/random/distributions.cpp.o.d"
  "/root/repo/src/random/rng.cpp" "src/CMakeFiles/sgp.dir/random/rng.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/random/rng.cpp.o.d"
  "/root/repo/src/ranking/betweenness.cpp" "src/CMakeFiles/sgp.dir/ranking/betweenness.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/ranking/betweenness.cpp.o.d"
  "/root/repo/src/ranking/centrality.cpp" "src/CMakeFiles/sgp.dir/ranking/centrality.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/ranking/centrality.cpp.o.d"
  "/root/repo/src/ranking/metrics.cpp" "src/CMakeFiles/sgp.dir/ranking/metrics.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/ranking/metrics.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/sgp.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/sgp.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/sgp.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/sgp.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/sgp.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
