file(REMOVE_RECURSE
  "libsgp.a"
)
