# Empty compiler generated dependencies file for sgp.
# This may be replaced when dependencies are built.
