
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/datasets_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/datasets_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/datasets_test.cpp.o.d"
  "/root/repo/tests/graph/generators_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/generators_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/generators_test.cpp.o.d"
  "/root/repo/tests/graph/graph_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/graph_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/graph_test.cpp.o.d"
  "/root/repo/tests/graph/io_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/io_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/io_test.cpp.o.d"
  "/root/repo/tests/graph/kcore_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/kcore_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/kcore_test.cpp.o.d"
  "/root/repo/tests/graph/laplacian_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/laplacian_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/laplacian_test.cpp.o.d"
  "/root/repo/tests/graph/metrics_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/metrics_test.cpp.o.d"
  "/root/repo/tests/graph/modularity_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/modularity_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/modularity_test.cpp.o.d"
  "/root/repo/tests/graph/sampling_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/sampling_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/sampling_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sgp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
