file(REMOVE_RECURSE
  "CMakeFiles/graph_test.dir/graph/datasets_test.cpp.o"
  "CMakeFiles/graph_test.dir/graph/datasets_test.cpp.o.d"
  "CMakeFiles/graph_test.dir/graph/generators_test.cpp.o"
  "CMakeFiles/graph_test.dir/graph/generators_test.cpp.o.d"
  "CMakeFiles/graph_test.dir/graph/graph_test.cpp.o"
  "CMakeFiles/graph_test.dir/graph/graph_test.cpp.o.d"
  "CMakeFiles/graph_test.dir/graph/io_test.cpp.o"
  "CMakeFiles/graph_test.dir/graph/io_test.cpp.o.d"
  "CMakeFiles/graph_test.dir/graph/kcore_test.cpp.o"
  "CMakeFiles/graph_test.dir/graph/kcore_test.cpp.o.d"
  "CMakeFiles/graph_test.dir/graph/laplacian_test.cpp.o"
  "CMakeFiles/graph_test.dir/graph/laplacian_test.cpp.o.d"
  "CMakeFiles/graph_test.dir/graph/metrics_test.cpp.o"
  "CMakeFiles/graph_test.dir/graph/metrics_test.cpp.o.d"
  "CMakeFiles/graph_test.dir/graph/modularity_test.cpp.o"
  "CMakeFiles/graph_test.dir/graph/modularity_test.cpp.o.d"
  "CMakeFiles/graph_test.dir/graph/sampling_test.cpp.o"
  "CMakeFiles/graph_test.dir/graph/sampling_test.cpp.o.d"
  "graph_test"
  "graph_test.pdb"
  "graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
