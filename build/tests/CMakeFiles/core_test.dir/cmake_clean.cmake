file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/baselines_test.cpp.o"
  "CMakeFiles/core_test.dir/core/baselines_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/degree_sequence_test.cpp.o"
  "CMakeFiles/core_test.dir/core/degree_sequence_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/projection_test.cpp.o"
  "CMakeFiles/core_test.dir/core/projection_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/publisher_test.cpp.o"
  "CMakeFiles/core_test.dir/core/publisher_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/reconstruction_test.cpp.o"
  "CMakeFiles/core_test.dir/core/reconstruction_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/serialization_test.cpp.o"
  "CMakeFiles/core_test.dir/core/serialization_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/session_test.cpp.o"
  "CMakeFiles/core_test.dir/core/session_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/stats_publisher_test.cpp.o"
  "CMakeFiles/core_test.dir/core/stats_publisher_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/surrogate_test.cpp.o"
  "CMakeFiles/core_test.dir/core/surrogate_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/theory_test.cpp.o"
  "CMakeFiles/core_test.dir/core/theory_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
