
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/baselines_test.cpp" "tests/CMakeFiles/core_test.dir/core/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/baselines_test.cpp.o.d"
  "/root/repo/tests/core/degree_sequence_test.cpp" "tests/CMakeFiles/core_test.dir/core/degree_sequence_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/degree_sequence_test.cpp.o.d"
  "/root/repo/tests/core/projection_test.cpp" "tests/CMakeFiles/core_test.dir/core/projection_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/projection_test.cpp.o.d"
  "/root/repo/tests/core/publisher_test.cpp" "tests/CMakeFiles/core_test.dir/core/publisher_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/publisher_test.cpp.o.d"
  "/root/repo/tests/core/reconstruction_test.cpp" "tests/CMakeFiles/core_test.dir/core/reconstruction_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/reconstruction_test.cpp.o.d"
  "/root/repo/tests/core/serialization_test.cpp" "tests/CMakeFiles/core_test.dir/core/serialization_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/serialization_test.cpp.o.d"
  "/root/repo/tests/core/session_test.cpp" "tests/CMakeFiles/core_test.dir/core/session_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/session_test.cpp.o.d"
  "/root/repo/tests/core/stats_publisher_test.cpp" "tests/CMakeFiles/core_test.dir/core/stats_publisher_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/stats_publisher_test.cpp.o.d"
  "/root/repo/tests/core/surrogate_test.cpp" "tests/CMakeFiles/core_test.dir/core/surrogate_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/surrogate_test.cpp.o.d"
  "/root/repo/tests/core/theory_test.cpp" "tests/CMakeFiles/core_test.dir/core/theory_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/theory_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sgp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
