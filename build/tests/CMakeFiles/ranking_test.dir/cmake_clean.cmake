file(REMOVE_RECURSE
  "CMakeFiles/ranking_test.dir/ranking/betweenness_test.cpp.o"
  "CMakeFiles/ranking_test.dir/ranking/betweenness_test.cpp.o.d"
  "CMakeFiles/ranking_test.dir/ranking/centrality_test.cpp.o"
  "CMakeFiles/ranking_test.dir/ranking/centrality_test.cpp.o.d"
  "CMakeFiles/ranking_test.dir/ranking/closeness_test.cpp.o"
  "CMakeFiles/ranking_test.dir/ranking/closeness_test.cpp.o.d"
  "CMakeFiles/ranking_test.dir/ranking/metrics_test.cpp.o"
  "CMakeFiles/ranking_test.dir/ranking/metrics_test.cpp.o.d"
  "ranking_test"
  "ranking_test.pdb"
  "ranking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
