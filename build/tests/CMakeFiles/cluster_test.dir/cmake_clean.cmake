file(REMOVE_RECURSE
  "CMakeFiles/cluster_test.dir/cluster/kmeans_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster/kmeans_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster/louvain_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster/louvain_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster/metrics_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster/metrics_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster/select_k_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster/select_k_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster/silhouette_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster/silhouette_test.cpp.o.d"
  "CMakeFiles/cluster_test.dir/cluster/spectral_test.cpp.o"
  "CMakeFiles/cluster_test.dir/cluster/spectral_test.cpp.o.d"
  "cluster_test"
  "cluster_test.pdb"
  "cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
