
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster/kmeans_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster/kmeans_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/kmeans_test.cpp.o.d"
  "/root/repo/tests/cluster/louvain_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster/louvain_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/louvain_test.cpp.o.d"
  "/root/repo/tests/cluster/metrics_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/metrics_test.cpp.o.d"
  "/root/repo/tests/cluster/select_k_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster/select_k_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/select_k_test.cpp.o.d"
  "/root/repo/tests/cluster/silhouette_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster/silhouette_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/silhouette_test.cpp.o.d"
  "/root/repo/tests/cluster/spectral_test.cpp" "tests/CMakeFiles/cluster_test.dir/cluster/spectral_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/spectral_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sgp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
