
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dp/accountant_test.cpp" "tests/CMakeFiles/dp_test.dir/dp/accountant_test.cpp.o" "gcc" "tests/CMakeFiles/dp_test.dir/dp/accountant_test.cpp.o.d"
  "/root/repo/tests/dp/mechanisms_test.cpp" "tests/CMakeFiles/dp_test.dir/dp/mechanisms_test.cpp.o" "gcc" "tests/CMakeFiles/dp_test.dir/dp/mechanisms_test.cpp.o.d"
  "/root/repo/tests/dp/postprocess_test.cpp" "tests/CMakeFiles/dp_test.dir/dp/postprocess_test.cpp.o" "gcc" "tests/CMakeFiles/dp_test.dir/dp/postprocess_test.cpp.o.d"
  "/root/repo/tests/dp/rdp_accountant_test.cpp" "tests/CMakeFiles/dp_test.dir/dp/rdp_accountant_test.cpp.o" "gcc" "tests/CMakeFiles/dp_test.dir/dp/rdp_accountant_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sgp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
