
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/linalg/dense_matrix_test.cpp" "tests/CMakeFiles/linalg_test.dir/linalg/dense_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_test.dir/linalg/dense_matrix_test.cpp.o.d"
  "/root/repo/tests/linalg/eigen_sym_test.cpp" "tests/CMakeFiles/linalg_test.dir/linalg/eigen_sym_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_test.dir/linalg/eigen_sym_test.cpp.o.d"
  "/root/repo/tests/linalg/lanczos_test.cpp" "tests/CMakeFiles/linalg_test.dir/linalg/lanczos_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_test.dir/linalg/lanczos_test.cpp.o.d"
  "/root/repo/tests/linalg/power_iteration_test.cpp" "tests/CMakeFiles/linalg_test.dir/linalg/power_iteration_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_test.dir/linalg/power_iteration_test.cpp.o.d"
  "/root/repo/tests/linalg/qr_test.cpp" "tests/CMakeFiles/linalg_test.dir/linalg/qr_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_test.dir/linalg/qr_test.cpp.o.d"
  "/root/repo/tests/linalg/sparse_matrix_test.cpp" "tests/CMakeFiles/linalg_test.dir/linalg/sparse_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_test.dir/linalg/sparse_matrix_test.cpp.o.d"
  "/root/repo/tests/linalg/svd_test.cpp" "tests/CMakeFiles/linalg_test.dir/linalg/svd_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_test.dir/linalg/svd_test.cpp.o.d"
  "/root/repo/tests/linalg/vector_ops_test.cpp" "tests/CMakeFiles/linalg_test.dir/linalg/vector_ops_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_test.dir/linalg/vector_ops_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sgp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
