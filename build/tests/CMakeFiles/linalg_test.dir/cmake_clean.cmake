file(REMOVE_RECURSE
  "CMakeFiles/linalg_test.dir/linalg/dense_matrix_test.cpp.o"
  "CMakeFiles/linalg_test.dir/linalg/dense_matrix_test.cpp.o.d"
  "CMakeFiles/linalg_test.dir/linalg/eigen_sym_test.cpp.o"
  "CMakeFiles/linalg_test.dir/linalg/eigen_sym_test.cpp.o.d"
  "CMakeFiles/linalg_test.dir/linalg/lanczos_test.cpp.o"
  "CMakeFiles/linalg_test.dir/linalg/lanczos_test.cpp.o.d"
  "CMakeFiles/linalg_test.dir/linalg/power_iteration_test.cpp.o"
  "CMakeFiles/linalg_test.dir/linalg/power_iteration_test.cpp.o.d"
  "CMakeFiles/linalg_test.dir/linalg/qr_test.cpp.o"
  "CMakeFiles/linalg_test.dir/linalg/qr_test.cpp.o.d"
  "CMakeFiles/linalg_test.dir/linalg/sparse_matrix_test.cpp.o"
  "CMakeFiles/linalg_test.dir/linalg/sparse_matrix_test.cpp.o.d"
  "CMakeFiles/linalg_test.dir/linalg/svd_test.cpp.o"
  "CMakeFiles/linalg_test.dir/linalg/svd_test.cpp.o.d"
  "CMakeFiles/linalg_test.dir/linalg/vector_ops_test.cpp.o"
  "CMakeFiles/linalg_test.dir/linalg/vector_ops_test.cpp.o.d"
  "linalg_test"
  "linalg_test.pdb"
  "linalg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
